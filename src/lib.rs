//! # gridadmm
//!
//! Umbrella crate of the GridADMM workspace — a Rust reproduction of
//! *"Accelerated Computation and Tracking of AC Optimal Power Flow Solutions
//! Using GPUs"* (Kim & Kim, ICPP 2022).
//!
//! The individual subsystems are re-exported here so applications can depend
//! on a single crate:
//!
//! * [`grid`] — power-grid data model, MATPOWER parsing, synthetic cases,
//!   load profiles,
//! * [`sparse`] — sparse LDLᵀ linear algebra used by the baseline,
//! * [`batch`] — the simulated GPU batch-execution device,
//! * [`engine`] — the solver-agnostic scenario execution engine (device
//!   sharding, lane caps, streaming admission),
//! * [`store`] — the warm-start solution store (similarity-keyed
//!   nearest-neighbor solve reuse across fleets),
//! * [`tron`] — the batch bound-constrained trust-region solver (ExaTron
//!   substitute),
//! * [`acopf`] — the shared ACOPF model (flows, violations, starts),
//! * [`ipm`] — the centralized interior-point baseline (Ipopt substitute),
//!   plus its scenario fleet driver on the engine,
//! * [`admm`] — the paper's component-based two-level ADMM solver,
//! * [`screen`] — the hierarchical N−k contingency-screening funnel
//!   (cheap-pass ADMM ranking, warm-seeded full-tier graduation).
//!
//! See `examples/quickstart.rs` for a complete end-to-end walkthrough.

pub use gridsim_acopf as acopf;
pub use gridsim_admm as admm;
pub use gridsim_batch as batch;
pub use gridsim_engine as engine;
pub use gridsim_grid as grid;
pub use gridsim_ipm as ipm;
pub use gridsim_screen as screen;
pub use gridsim_sparse as sparse;
pub use gridsim_store as store;
pub use gridsim_tron as tron;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use gridsim_acopf::{OpfSolution, SolutionQuality};
    pub use gridsim_admm::{
        AdmmParams, AdmmResult, AdmmSolver, ScenarioBatch, ScenarioBatchResult, ScenarioProblem,
        ScenarioResult, ScenarioScheduler, TrackingConfig, WarmState,
    };
    pub use gridsim_batch::{Device, DevicePool, ExecutionMode};
    pub use gridsim_engine::{Engine, LaneSolver};
    pub use gridsim_grid::{
        Case, ContingencySpec, LoadProfile, Network, Scenario, ScenarioFingerprint, ScenarioSet,
        SyntheticSpec, TableICase,
    };
    pub use gridsim_ipm::{
        AcopfNlp, FleetReport, IpmFleetSolver, IpmOptions, IpmSolver, IpmWarmStart, KktCache,
        KktStrategy,
    };
    pub use gridsim_screen::{
        Band, ContingencyFunnel, FullResults, FullTier, FunnelConfig, FunnelReport,
    };
    pub use gridsim_store::{SolutionStore, StoreConfig, StoreRunStats, StoreView};
}
