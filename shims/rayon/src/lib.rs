//! Offline stand-in for the `rayon` crate.
//!
//! Implements the data-parallel iterator subset used by the workspace
//! (`par_iter`, `par_iter_mut`, `enumerate`, `zip`, `map`, `for_each`,
//! `reduce`, `sum`, `with_min_len`) on top of a persistent work-stealing
//! thread pool (see `pool`) instead of real rayon's.
//!
//! Two guarantees that real rayon does **not** make:
//!
//! 1. **Deterministic reductions.** `map(..).sum()` and `map(..).reduce(..)`
//!    materialize mapped values in index order (the map runs in parallel)
//!    and combine them sequentially, so parallel results are bit-identical
//!    to sequential ones regardless of thread count or scheduling.
//! 2. **Deterministic coverage.** A parallel iteration applies its closure
//!    to each index exactly once over disjoint chunk ranges; only the
//!    thread assignment varies between runs.
//!
//! The ADMM solver's Parallel-vs-Sequential agreement tests rely on (1).
//!
//! Scheduling: inputs shorter than the default `min_len` (1024) run inline —
//! pool dispatch costs more than tiny kernels — and `with_min_len(n)`
//! overrides that floor, exactly like real rayon's
//! `IndexedParallelIterator::with_min_len`. Heavy per-element workloads
//! (e.g. one trust-region solve per element) use `with_min_len(1)` to fan
//! out even tiny batches.

mod pool;

/// Inputs below this length run on the calling thread unless a smaller
/// `with_min_len` is requested: pool dispatch overhead dominates for tiny
/// kernels, and results are identical either way.
const PARALLEL_THRESHOLD: usize = 1024;

/// Number of threads the global pool schedules across (mirrors
/// `rayon::current_num_threads`). Respects `GRIDSIM_POOL_THREADS`.
pub fn current_num_threads() -> usize {
    pool::global().workers()
}

/// Shareable raw pointer for handing disjoint `&mut` ranges to pool chunks.
/// (Accessed through [`SendPtr::get`] so closures capture the whole wrapper,
/// not the raw-pointer field — 2021-edition closures capture per field.)
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

/// `rayon::prelude` equivalent: brings the `par_iter*` extension trait and
/// adapter types into scope.
pub mod prelude {
    pub use crate::{
        EnumeratedParIter, EnumeratedParIterMut, EnumeratedParZipMut, MappedParIter, ParIter,
        ParIterMut, ParZipMut, ParallelSlice,
    };
}

/// Extension trait adding `par_iter` / `par_iter_mut` to slices.
pub trait ParallelSlice<T> {
    /// Shared parallel iterator over the elements.
    fn par_iter(&self) -> ParIter<'_, T>;
    /// Exclusive parallel iterator over the elements.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter {
            data: self,
            min_len: PARALLEL_THRESHOLD,
        }
    }
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut {
            data: self,
            min_len: PARALLEL_THRESHOLD,
        }
    }
}

/// Shared parallel iterator over a slice.
pub struct ParIter<'a, T> {
    data: &'a [T],
    min_len: usize,
}

impl<'a, T> ParIter<'a, T> {
    /// Lower bound on the indices each parallel chunk receives (like real
    /// rayon's `with_min_len`). Values below the default threshold opt tiny
    /// inputs into parallel execution — worthwhile only when each element is
    /// expensive.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Pair each element with its index.
    pub fn enumerate(self) -> EnumeratedParIter<'a, T> {
        EnumeratedParIter {
            data: self.data,
            min_len: self.min_len,
        }
    }
}

/// Index-annotated shared parallel iterator.
pub struct EnumeratedParIter<'a, T> {
    data: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync> EnumeratedParIter<'a, T> {
    /// See [`ParIter::with_min_len`].
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Map each `(index, &element)` pair through `f`.
    pub fn map<R, F>(self, f: F) -> MappedParIter<'a, T, F, R>
    where
        F: Fn((usize, &T)) -> R + Sync,
        R: Send,
    {
        MappedParIter {
            data: self.data,
            min_len: self.min_len,
            f,
            _marker: std::marker::PhantomData,
        }
    }

    /// Apply `f` to every `(index, &element)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &T)) + Sync,
    {
        let data = self.data;
        pool::global().run(data.len(), self.min_len, &|start, end| {
            for (i, x) in data[start..end].iter().enumerate() {
                f((start + i, x));
            }
        });
    }
}

/// Result of mapping an enumerated shared iterator.
pub struct MappedParIter<'a, T, F, R> {
    data: &'a [T],
    min_len: usize,
    f: F,
    _marker: std::marker::PhantomData<R>,
}

impl<'a, T: Sync, F, R> MappedParIter<'a, T, F, R>
where
    F: Fn((usize, &T)) -> R + Sync,
    R: Send,
{
    /// Evaluate the map in parallel, preserving index order: chunk `i`
    /// writes results straight into slots `[start, end)` of the output, so
    /// the materialized vector is identical to a sequential map regardless
    /// of which thread ran which chunk.
    fn materialize(self) -> Vec<R> {
        let len = self.data.len();
        let mut out: Vec<R> = Vec::with_capacity(len);
        {
            let data = self.data;
            let f = &self.f;
            let out_ptr = SendPtr(out.as_mut_ptr());
            pool::global().run(len, self.min_len, &|start, end| {
                let base = out_ptr.get();
                for (i, x) in data[start..end].iter().enumerate() {
                    // SAFETY: chunks own disjoint [start, end) ranges within
                    // the vector's allocated capacity; `set_len` below runs
                    // only after every chunk finished.
                    unsafe { base.add(start + i).write(f((start + i, x))) };
                }
            });
        }
        // SAFETY: the pool call returned, so all `len` slots are initialized.
        // (If a chunk panicked, the pool rethrows before this line; `out`
        // then drops with len 0 and elements other chunks already wrote are
        // leaked, not double-dropped — the safe choice on the panic path.)
        unsafe { out.set_len(len) };
        out
    }

    /// Collect the mapped values in index order (like real rayon's
    /// `collect` on an indexed parallel iterator).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        self.materialize().into_iter().collect()
    }

    /// Sum the mapped values. The sum itself is sequential and in index
    /// order, so the result is deterministic and backend-independent.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        self.materialize().into_iter().sum()
    }

    /// Fold the mapped values with `op`, starting from `identity()`. The
    /// fold is sequential and in index order (deterministic), unlike real
    /// rayon's tree reduction.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        self.materialize().into_iter().fold(identity(), op)
    }
}

/// Exclusive parallel iterator over a slice.
pub struct ParIterMut<'a, T> {
    data: &'a mut [T],
    min_len: usize,
}

impl<'a, T> ParIterMut<'a, T> {
    /// See [`ParIter::with_min_len`].
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Pair each element with its index.
    pub fn enumerate(self) -> EnumeratedParIterMut<'a, T> {
        EnumeratedParIterMut {
            data: self.data,
            min_len: self.min_len,
        }
    }

    /// Walk two equal-length slices in lockstep.
    pub fn zip<'b, B>(self, other: ParIterMut<'b, B>) -> ParZipMut<'a, 'b, T, B> {
        assert_eq!(
            self.data.len(),
            other.data.len(),
            "zip requires equal lengths"
        );
        ParZipMut {
            a: self.data,
            b: other.data,
            min_len: self.min_len,
        }
    }
}

/// Index-annotated exclusive parallel iterator.
pub struct EnumeratedParIterMut<'a, T> {
    data: &'a mut [T],
    min_len: usize,
}

impl<'a, T: Send> EnumeratedParIterMut<'a, T> {
    /// See [`ParIter::with_min_len`].
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Apply `f` to every `(index, &mut element)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let len = self.data.len();
        let ptr = SendPtr(self.data.as_mut_ptr());
        pool::global().run(len, self.min_len, &|start, end| {
            let base = ptr.get();
            for i in start..end {
                // SAFETY: concurrent chunks cover disjoint index ranges, so
                // each element's `&mut` is exclusive.
                f((i, unsafe { &mut *base.add(i) }));
            }
        });
    }
}

/// Lockstep exclusive parallel iterator over two slices.
pub struct ParZipMut<'a, 'b, A, B> {
    a: &'a mut [A],
    b: &'b mut [B],
    min_len: usize,
}

impl<'a, 'b, A, B> ParZipMut<'a, 'b, A, B> {
    /// Pair each element pair with its index.
    pub fn enumerate(self) -> EnumeratedParZipMut<'a, 'b, A, B> {
        EnumeratedParZipMut {
            a: self.a,
            b: self.b,
            min_len: self.min_len,
        }
    }
}

/// Index-annotated lockstep exclusive parallel iterator.
pub struct EnumeratedParZipMut<'a, 'b, A, B> {
    a: &'a mut [A],
    b: &'b mut [B],
    min_len: usize,
}

impl<'a, 'b, A: Send, B: Send> EnumeratedParZipMut<'a, 'b, A, B> {
    /// See [`ParIter::with_min_len`].
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Apply `f` to every `(index, (&mut a, &mut b))` triple.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, (&mut A, &mut B))) + Sync,
    {
        let len = self.a.len();
        let pa = SendPtr(self.a.as_mut_ptr());
        let pb = SendPtr(self.b.as_mut_ptr());
        pool::global().run(len, self.min_len, &|start, end| {
            let (base_a, base_b) = (pa.get(), pb.get());
            for i in start..end {
                // SAFETY: disjoint chunk ranges; lengths were asserted equal
                // when the zip was built.
                let ax = unsafe { &mut *base_a.add(i) };
                let bx = unsafe { &mut *base_b.add(i) };
                f((i, (ax, bx)));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_for_each_mut_covers_all_indices() {
        for n in [0usize, 1, 7, 5000] {
            let mut v = vec![0usize; n];
            v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i + 1);
            assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
        }
    }

    #[test]
    fn par_zip_covers_all_indices() {
        let n = 4096;
        let mut a = vec![0usize; n];
        let mut b = vec![0usize; n];
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .for_each(|(i, (x, y))| {
                *x = i;
                *y = 2 * i;
            });
        assert!(a.iter().enumerate().all(|(i, &x)| x == i));
        assert!(b.iter().enumerate().all(|(i, &y)| y == 2 * i));
    }

    #[test]
    fn parallel_sum_is_bit_identical_to_sequential() {
        let v: Vec<f64> = (0..10_000).map(|i| (i as f64).sin() * 1e-3).collect();
        let seq: f64 = v.iter().sum();
        let par: f64 = v.par_iter().enumerate().map(|(_, x)| *x).sum();
        assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    fn parallel_reduce_matches_fold() {
        let v: Vec<f64> = (0..5000).map(|i| ((i * 31) % 97) as f64 - 48.0).collect();
        let par = v
            .par_iter()
            .enumerate()
            .map(|(_, x)| x.abs())
            .reduce(|| f64::NEG_INFINITY, f64::max);
        let seq = v.iter().map(|x| x.abs()).fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(par, seq);
    }

    #[test]
    fn with_min_len_parallelizes_tiny_inputs() {
        // 9 elements is far below the default threshold; with_min_len(1)
        // must still visit every index exactly once and preserve order in
        // collect.
        let v: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let doubled: Vec<f64> = v
            .par_iter()
            .with_min_len(1)
            .enumerate()
            .map(|(i, x)| x * 2.0 + i as f64)
            .collect();
        let expect: Vec<f64> = v
            .iter()
            .enumerate()
            .map(|(i, x)| x * 2.0 + i as f64)
            .collect();
        assert_eq!(doubled, expect);

        let mut w = [0usize; 9];
        w.par_iter_mut()
            .with_min_len(1)
            .enumerate()
            .for_each(|(i, x)| *x = i * i);
        assert!(w.iter().enumerate().all(|(i, &x)| x == i * i));
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
