//! Offline stand-in for the `rayon` crate.
//!
//! Implements the data-parallel iterator subset used by the workspace
//! (`par_iter`, `par_iter_mut`, `enumerate`, `zip`, `map`, `for_each`,
//! `reduce`, `sum`) on top of `std::thread::scope`.
//!
//! Two guarantees that real rayon does **not** make:
//!
//! 1. **Deterministic reductions.** `map(..).sum()` and `map(..).reduce(..)`
//!    materialize mapped values in index order (the map runs in parallel)
//!    and combine them sequentially, so parallel results are bit-identical
//!    to sequential ones regardless of thread count or scheduling.
//! 2. **Stable chunking.** Work is split into contiguous chunks of a size
//!    that depends only on the input length and thread count.
//!
//! The ADMM solver's Parallel-vs-Sequential agreement tests rely on (1).

use std::num::NonZeroUsize;

/// Inputs below this length run sequentially: thread spawn overhead
/// dominates for tiny kernels, and results are identical either way.
const PARALLEL_THRESHOLD: usize = 1024;

fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn chunk_size(len: usize) -> usize {
    len.div_ceil(worker_count()).max(1)
}

/// `rayon::prelude` equivalent: brings the `par_iter*` extension trait and
/// adapter types into scope.
pub mod prelude {
    pub use crate::{
        EnumeratedParIter, EnumeratedParIterMut, EnumeratedParZipMut, MappedParIter, ParIter,
        ParIterMut, ParZipMut, ParallelSlice,
    };
}

/// Extension trait adding `par_iter` / `par_iter_mut` to slices.
pub trait ParallelSlice<T> {
    /// Shared parallel iterator over the elements.
    fn par_iter(&self) -> ParIter<'_, T>;
    /// Exclusive parallel iterator over the elements.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { data: self }
    }
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { data: self }
    }
}

/// Shared parallel iterator over a slice.
pub struct ParIter<'a, T> {
    data: &'a [T],
}

impl<'a, T> ParIter<'a, T> {
    /// Pair each element with its index.
    pub fn enumerate(self) -> EnumeratedParIter<'a, T> {
        EnumeratedParIter { data: self.data }
    }
}

/// Index-annotated shared parallel iterator.
pub struct EnumeratedParIter<'a, T> {
    data: &'a [T],
}

impl<'a, T: Sync> EnumeratedParIter<'a, T> {
    /// Map each `(index, &element)` pair through `f`.
    pub fn map<R, F>(self, f: F) -> MappedParIter<'a, T, F, R>
    where
        F: Fn((usize, &T)) -> R + Sync,
        R: Send,
    {
        MappedParIter {
            data: self.data,
            f,
            _marker: std::marker::PhantomData,
        }
    }

    /// Apply `f` to every `(index, &element)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &T)) + Sync,
    {
        if self.data.len() < PARALLEL_THRESHOLD {
            for pair in self.data.iter().enumerate() {
                f(pair);
            }
            return;
        }
        let size = chunk_size(self.data.len());
        std::thread::scope(|scope| {
            for (ci, chunk) in self.data.chunks(size).enumerate() {
                let f = &f;
                scope.spawn(move || {
                    for (j, x) in chunk.iter().enumerate() {
                        f((ci * size + j, x));
                    }
                });
            }
        });
    }
}

/// Result of mapping an enumerated shared iterator.
pub struct MappedParIter<'a, T, F, R> {
    data: &'a [T],
    f: F,
    _marker: std::marker::PhantomData<R>,
}

impl<'a, T: Sync, F, R> MappedParIter<'a, T, F, R>
where
    F: Fn((usize, &T)) -> R + Sync,
    R: Send,
{
    /// Evaluate the map in parallel, preserving index order.
    fn materialize(self) -> Vec<R> {
        if self.data.len() < PARALLEL_THRESHOLD {
            return self.data.iter().enumerate().map(self.f).collect();
        }
        let size = chunk_size(self.data.len());
        let mut out = Vec::with_capacity(self.data.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .data
                .chunks(size)
                .enumerate()
                .map(|(ci, chunk)| {
                    let f = &self.f;
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .enumerate()
                            .map(|(j, x)| f((ci * size + j, x)))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("rayon shim worker panicked"));
            }
        });
        out
    }

    /// Collect the mapped values in index order (like real rayon's
    /// `collect` on an indexed parallel iterator).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        self.materialize().into_iter().collect()
    }

    /// Sum the mapped values. The sum itself is sequential and in index
    /// order, so the result is deterministic and backend-independent.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        self.materialize().into_iter().sum()
    }

    /// Fold the mapped values with `op`, starting from `identity()`. The
    /// fold is sequential and in index order (deterministic), unlike real
    /// rayon's tree reduction.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        self.materialize().into_iter().fold(identity(), op)
    }
}

/// Exclusive parallel iterator over a slice.
pub struct ParIterMut<'a, T> {
    data: &'a mut [T],
}

impl<'a, T> ParIterMut<'a, T> {
    /// Pair each element with its index.
    pub fn enumerate(self) -> EnumeratedParIterMut<'a, T> {
        EnumeratedParIterMut { data: self.data }
    }

    /// Walk two equal-length slices in lockstep.
    pub fn zip<'b, B>(self, other: ParIterMut<'b, B>) -> ParZipMut<'a, 'b, T, B> {
        assert_eq!(
            self.data.len(),
            other.data.len(),
            "zip requires equal lengths"
        );
        ParZipMut {
            a: self.data,
            b: other.data,
        }
    }
}

/// Index-annotated exclusive parallel iterator.
pub struct EnumeratedParIterMut<'a, T> {
    data: &'a mut [T],
}

impl<'a, T: Send> EnumeratedParIterMut<'a, T> {
    /// Apply `f` to every `(index, &mut element)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        if self.data.len() < PARALLEL_THRESHOLD {
            for pair in self.data.iter_mut().enumerate() {
                f(pair);
            }
            return;
        }
        let size = chunk_size(self.data.len());
        std::thread::scope(|scope| {
            for (ci, chunk) in self.data.chunks_mut(size).enumerate() {
                let f = &f;
                scope.spawn(move || {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        f((ci * size + j, x));
                    }
                });
            }
        });
    }
}

/// Lockstep exclusive parallel iterator over two slices.
pub struct ParZipMut<'a, 'b, A, B> {
    a: &'a mut [A],
    b: &'b mut [B],
}

impl<'a, 'b, A, B> ParZipMut<'a, 'b, A, B> {
    /// Pair each element pair with its index.
    pub fn enumerate(self) -> EnumeratedParZipMut<'a, 'b, A, B> {
        EnumeratedParZipMut {
            a: self.a,
            b: self.b,
        }
    }
}

/// Index-annotated lockstep exclusive parallel iterator.
pub struct EnumeratedParZipMut<'a, 'b, A, B> {
    a: &'a mut [A],
    b: &'b mut [B],
}

impl<'a, 'b, A: Send, B: Send> EnumeratedParZipMut<'a, 'b, A, B> {
    /// Apply `f` to every `(index, (&mut a, &mut b))` triple.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, (&mut A, &mut B))) + Sync,
    {
        if self.a.len() < PARALLEL_THRESHOLD {
            for (i, pair) in self.a.iter_mut().zip(self.b.iter_mut()).enumerate() {
                f((i, pair));
            }
            return;
        }
        let size = chunk_size(self.a.len());
        std::thread::scope(|scope| {
            for (ci, (ca, cb)) in self
                .a
                .chunks_mut(size)
                .zip(self.b.chunks_mut(size))
                .enumerate()
            {
                let f = &f;
                scope.spawn(move || {
                    for (j, pair) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                        f((ci * size + j, pair));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_for_each_mut_covers_all_indices() {
        for n in [0usize, 1, 7, 5000] {
            let mut v = vec![0usize; n];
            v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i + 1);
            assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
        }
    }

    #[test]
    fn par_zip_covers_all_indices() {
        let n = 4096;
        let mut a = vec![0usize; n];
        let mut b = vec![0usize; n];
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .for_each(|(i, (x, y))| {
                *x = i;
                *y = 2 * i;
            });
        assert!(a.iter().enumerate().all(|(i, &x)| x == i));
        assert!(b.iter().enumerate().all(|(i, &y)| y == 2 * i));
    }

    #[test]
    fn parallel_sum_is_bit_identical_to_sequential() {
        let v: Vec<f64> = (0..10_000).map(|i| (i as f64).sin() * 1e-3).collect();
        let seq: f64 = v.iter().sum();
        let par: f64 = v.par_iter().enumerate().map(|(_, x)| *x).sum();
        assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    fn parallel_reduce_matches_fold() {
        let v: Vec<f64> = (0..5000).map(|i| ((i * 31) % 97) as f64 - 48.0).collect();
        let par = v
            .par_iter()
            .enumerate()
            .map(|(_, x)| x.abs())
            .reduce(|| f64::NEG_INFINITY, f64::max);
        let seq = v.iter().map(|x| x.abs()).fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(par, seq);
    }
}
