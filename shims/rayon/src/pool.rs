//! A persistent work-stealing thread pool.
//!
//! Workers are spawned once per process and live for its lifetime. Each
//! worker owns a chunk deque: the owner pops newest-first (LIFO, cache-warm),
//! idle workers steal oldest-first (FIFO) from victims — the classic
//! work-stealing discipline. A parallel-for call splits its index range into
//! more chunks than workers, scatters them round-robin over the deques, and
//! then *helps*: the submitting thread runs chunks itself until its job
//! completes, so submission can never deadlock and single-job latency is the
//! critical path of the slowest chunk, not of the slowest worker.
//!
//! Determinism: the pool schedules *which thread* runs a chunk, never *what*
//! a chunk computes — chunks own disjoint index ranges and callers combine
//! per-index results in index order — so results are bit-identical across
//! worker counts, steal patterns, and repeated runs.
//!
//! On a single-core host (or under `GRIDSIM_POOL_THREADS=1`) no worker
//! threads exist and every parallel-for runs inline on the caller, which is
//! strictly cheaper than the scoped-thread-per-call design this pool
//! replaces.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Chunks created per worker for one job. More than one so early-finishing
/// workers can steal leftover chunks instead of idling (load balancing);
/// bounded so per-chunk bookkeeping stays negligible.
const CHUNKS_PER_WORKER: usize = 4;

/// Type-erased range runner of one job. The raw pointer is only dereferenced
/// while the submitting [`Pool::run`] call is blocked, which keeps the
/// underlying closure borrow alive (see the safety comment in `run`).
struct RawFunc(*const (dyn Fn(usize, usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are safe) and the pointer is
// only dereferenced during the lifetime of the `Pool::run` call that created
// it (enforced by the pending-chunk count `run` waits on).
unsafe impl Send for RawFunc {}
unsafe impl Sync for RawFunc {}

/// One parallel-for submission: `[0, len)` split into `pending` chunks.
struct Job {
    func: RawFunc,
    /// Chunks not yet finished; the last finisher flips `done`.
    pending: AtomicUsize,
    /// First panic payload captured from a chunk, re-thrown by the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

/// A contiguous index range of one job.
struct Chunk {
    job: Arc<Job>,
    start: usize,
    end: usize,
}

struct Shared {
    /// One deque per worker; the owner pops from the back, thieves from the
    /// front.
    queues: Vec<Mutex<VecDeque<Chunk>>>,
    /// Bumped (under the lock) after every enqueue so idle workers can wait
    /// without lost wakeups: a pusher enqueues first, then bumps + notifies,
    /// so a worker that scans empty under this lock either sees the chunk or
    /// sees the bump.
    epoch: Mutex<u64>,
    work_cv: Condvar,
}

pub(crate) struct Pool {
    shared: Arc<Shared>,
    workers: usize,
    /// Round-robin scatter cursor so consecutive jobs start on different
    /// deques.
    cursor: AtomicUsize,
}

fn run_chunk(chunk: &Chunk) {
    // SAFETY: see `RawFunc` — the submitter is still inside `Pool::run`.
    let f = unsafe { &*chunk.job.func.0 };
    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(chunk.start, chunk.end))) {
        let mut slot = chunk.job.panic.lock().unwrap_or_else(|e| e.into_inner());
        slot.get_or_insert(payload);
    }
    if chunk.job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
        let mut done = chunk.job.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        chunk.job.done_cv.notify_all();
    }
}

/// Pop from our own deque (LIFO), else steal from a victim (FIFO).
fn find_work(shared: &Shared, own: usize) -> Option<Chunk> {
    let n = shared.queues.len();
    if let Some(c) = shared.queues[own % n].lock().unwrap().pop_back() {
        return Some(c);
    }
    for i in 1..n {
        let victim = (own + i) % n;
        if let Some(c) = shared.queues[victim].lock().unwrap().pop_front() {
            return Some(c);
        }
    }
    None
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    loop {
        if let Some(chunk) = find_work(&shared, index) {
            run_chunk(&chunk);
            continue;
        }
        let mut epoch = shared.epoch.lock().unwrap();
        loop {
            // Re-scan under the epoch lock; pushers bump the epoch after
            // enqueueing, so finding nothing here means the wait below will
            // be woken by any concurrent push.
            if let Some(chunk) = find_work(&shared, index) {
                drop(epoch);
                run_chunk(&chunk);
                break;
            }
            epoch = shared.work_cv.wait(epoch).unwrap();
        }
    }
}

impl Pool {
    /// Spawn a pool with `workers` worker threads. A pool of one worker
    /// spawns no threads at all: every `run` call executes inline.
    pub(crate) fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            epoch: Mutex::new(0),
            work_cv: Condvar::new(),
        });
        if workers > 1 {
            for i in 0..workers {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gridsim-pool-{i}"))
                    .spawn(move || worker_loop(s, i))
                    .expect("spawn pool worker");
            }
        }
        Pool {
            shared,
            workers,
            cursor: AtomicUsize::new(0),
        }
    }

    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f` over every index in `[0, len)`, in parallel chunks of at
    /// least `min_len` indices each. `f(start, end)` must handle the
    /// half-open range `[start, end)`; ranges of concurrent calls are
    /// disjoint and together cover `[0, len)` exactly once.
    pub(crate) fn run(&self, len: usize, min_len: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        let n_chunks = (len / min_len.max(1)).min(self.workers * CHUNKS_PER_WORKER);
        if self.workers <= 1 || n_chunks <= 1 {
            if len > 0 {
                f(0, len);
            }
            return;
        }
        // SAFETY (lifetime erasure): `f` outlives this call, and the
        // pending-count wait below guarantees no chunk dereferences the
        // pointer after this function returns.
        let func = unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, usize) + Sync),
                *const (dyn Fn(usize, usize) + Sync),
            >(f)
        };
        let job = Arc::new(Job {
            func: RawFunc(func),
            pending: AtomicUsize::new(n_chunks),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        let first = self.cursor.fetch_add(1, Ordering::Relaxed);
        for i in 0..n_chunks {
            let chunk = Chunk {
                job: Arc::clone(&job),
                start: i * len / n_chunks,
                end: (i + 1) * len / n_chunks,
            };
            let q = (first + i) % self.shared.queues.len();
            self.shared.queues[q].lock().unwrap().push_back(chunk);
        }
        {
            let mut epoch = self.shared.epoch.lock().unwrap();
            *epoch = epoch.wrapping_add(1);
        }
        self.shared.work_cv.notify_all();

        // Help until our job completes: run any available chunk (ours or a
        // concurrent submitter's — chunks never block, so this cannot
        // deadlock), and only sleep when every queued chunk is claimed.
        while job.pending.load(Ordering::Acquire) > 0 {
            if let Some(chunk) = find_work(&self.shared, first) {
                run_chunk(&chunk);
            } else {
                let mut done = job.done.lock().unwrap_or_else(|e| e.into_inner());
                while !*done {
                    done = job.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
                }
                break;
            }
        }
        let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }
}

fn configured_workers() -> usize {
    if let Ok(v) = std::env::var("GRIDSIM_POOL_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The process-wide pool, sized from `GRIDSIM_POOL_THREADS` or the host's
/// available parallelism.
pub(crate) fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(configured_workers()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        let pool = Pool::new(4);
        for len in [0usize, 1, 7, 1000, 4096, 100_000] {
            let hits: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
            pool.run(len, 1, &|start, end| {
                for h in &hits[start..end] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "len {len}: some index not covered exactly once"
            );
        }
    }

    #[test]
    fn min_len_bounds_chunk_sizes() {
        let pool = Pool::new(4);
        let smallest = Mutex::new(usize::MAX);
        let chunks = AtomicU64::new(0);
        pool.run(10_000, 512, &|start, end| {
            chunks.fetch_add(1, Ordering::Relaxed);
            let mut s = smallest.lock().unwrap();
            *s = (*s).min(end - start);
        });
        assert!(chunks.load(Ordering::Relaxed) > 1, "should have split");
        assert!(
            *smallest.lock().unwrap() >= 512,
            "chunk below min_len: {}",
            smallest.lock().unwrap()
        );
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let pool = Arc::new(Pool::new(4));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for round in 0..20u64 {
                        let n = 3000;
                        let sum = AtomicU64::new(0);
                        pool.run(n, 1, &|start, end| {
                            let local: u64 = (start as u64..end as u64).sum();
                            sum.fetch_add(local, Ordering::Relaxed);
                        });
                        let expect = (n as u64 - 1) * n as u64 / 2;
                        assert_eq!(
                            sum.load(Ordering::Relaxed),
                            expect,
                            "submitter {t} round {round}"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn panics_propagate_to_the_submitter_and_pool_survives() {
        let pool = Pool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(10_000, 1, &|start, _end| {
                if start == 0 {
                    panic!("boom from chunk");
                }
            });
        }));
        assert!(result.is_err(), "panic must reach the submitter");
        // The pool keeps working after a job panicked.
        let count = AtomicU64::new(0);
        pool.run(5_000, 1, &|start, end| {
            count.fetch_add((end - start) as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5_000);
    }

    #[test]
    fn single_worker_pool_runs_inline() {
        let pool = Pool::new(1);
        let tid = std::thread::current().id();
        pool.run(50_000, 1, &|_s, _e| {
            assert_eq!(std::thread::current().id(), tid, "must run on the caller");
        });
    }
}
