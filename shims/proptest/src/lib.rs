//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset used by this workspace: the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, range strategies over numeric
//! types, `prop::collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! regression files; generation is **deterministic** (seeded from the test
//! name), so a failure reproduces identically on every run.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!` family macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-test RNG: seeded from an FNV-1a hash of the test name,
/// so each property sees a stable but distinct input stream.
pub fn test_rng(test_name: &str) -> SmallRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(hash)
}

/// Namespace mirror of `proptest::prop` (`prop::collection::vec`).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// The usual glob import for tests.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
}

/// Define property tests. Each function body runs once per generated case;
/// use `prop_assert!`-family macros (not `assert!`) so failures report the
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(cfg = ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(cfg = ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                // Captured before the body runs: the body may consume the
                // inputs, but a failure must still be able to report them.
                let inputs = format!(
                    concat!($("\n    ", stringify!($arg), " = {:?}"),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property '{}' failed on case {}/{}: {}\n  inputs:{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_impl!(cfg = ($cfg); $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Skip the current case when a precondition does not hold. The shim simply
/// treats the case as passing (no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}
