//! Value-generation strategies for the proptest shim.

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Something that can generate values of `Self::Value` from an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Constant strategy: always yields a clone of the value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Length specification for [`vec()`]: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec strategy: empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose elements come from `element` and whose length is
/// drawn from `size` (a fixed `usize` or a `usize` range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
