//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API shape the
//! workspace uses: `lock()` / `read()` / `write()` return guards directly
//! (no `Result`), and a poisoned lock is recovered rather than propagated.

use std::fmt;

/// A mutual-exclusion primitive with the `parking_lot::Mutex` API shape.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Unlike `std`, a
    /// poisoned lock is recovered instead of returning an error — matching
    /// `parking_lot`, which has no lock poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API shape.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
