//! Offline stand-in for `serde_json`: renders and parses JSON text over the
//! serde shim's [`Value`] tree.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error {
            message: e.to_string(),
        }
    }
}

/// Lower any serializable type to a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to human-readable JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            write_delimited(items.iter(), indent, depth, out, '[', ']', |item, d, o| {
                write_value(item, indent, d, o)
            })
        }
        Value::Map(entries) => write_delimited(
            entries.iter(),
            indent,
            depth,
            out,
            '{',
            '}',
            |(key, val), d, o| {
                write_string(key, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(val, indent, d, o);
            },
        ),
    }
}

fn write_delimited<I, F>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, usize, &mut String),
{
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(item, depth + 1, out);
    }
    if !empty {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(close);
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is serde_json's lossy default too.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // `n as i64` would erase the sign of -0.0; keep it so parsing
        // round-trips bit-exactly.
        if n == 0.0 && n.is_sign_negative() {
            out.push_str("-0");
        } else {
            out.push_str(&format!("{}", n as i64));
        }
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error {
            message: format!("{message} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Value::Null),
            Some(b't') => self.eat_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected JSON value")),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_collections() {
        let v: Vec<f64> = vec![1.0, -2.5, 3e-4];
        let json = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(v, back);

        let s = String::from("line1\n\"quoted\" \\ tab\t");
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("case9".into())),
            (
                "sizes".into(),
                Value::Seq(vec![Value::Num(9.0), Value::Num(14.0)]),
            ),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
        assert!(pretty.contains("\n  \"name\": \"case9\""));
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
    }

    #[test]
    fn non_finite_floats_roundtrip_bitwise() {
        let v: Vec<f64> = vec![f64::INFINITY, f64::NEG_INFINITY, f64::NAN, -0.0, 1.5];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"["inf","-inf","nan",-0,1.5]"#);
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(v.len(), back.len());
        for (a, b) in v.iter().zip(&back) {
            // NaN payload is canonicalized; sign/class and finite bits must hold.
            if a.is_nan() {
                assert!(b.is_nan());
            } else {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn fixed_arrays_and_durations_roundtrip() {
        let arrays: Vec<[f64; 3]> = vec![[1.0, -2.0, 0.25], [1e-17, 3.0, -0.0]];
        let back: Vec<[f64; 3]> = from_str(&to_string(&arrays).unwrap()).unwrap();
        for (a, b) in arrays.iter().zip(&back) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let short: Result<[f64; 3], _> = from_str("[1,2]");
        assert!(short.is_err());

        let d = std::time::Duration::new(7, 123_456_789);
        let back: std::time::Duration = from_str(&to_string(&d).unwrap()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn options_and_tuples() {
        let v: (usize, String) = (3, "x".into());
        let back: (usize, String) = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
        let none: Option<f64> = from_str("null").unwrap();
        assert_eq!(none, None);
    }
}
