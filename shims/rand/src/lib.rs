//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides a deterministic SplitMix64-based [`rngs::SmallRng`] plus the
//! [`Rng`] / [`SeedableRng`] traits with `gen`, `gen_range`, and `gen_bool`.
//! Determinism is the point: every consumer in this workspace seeds
//! explicitly, and reproducibility across runs and platforms is a tested
//! invariant.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from the unit interval / full domain.
pub trait Standard: Sized {
    /// Draw one value from the "standard" distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs that can be constructed from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic small-state RNG (SplitMix64). Not cryptographic —
    /// mirrors the role of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    /// Alias: the workspace never needs a distinct "standard" RNG.
    pub type StdRng = SmallRng;
}

/// `rand::prelude` equivalent.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-0.01..0.01);
            assert!((-0.01..0.01).contains(&x));
            let n: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&n));
            let m: usize = rng.gen_range(1..=5);
            assert!((1..=5).contains(&m));
            let s: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
