//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's zero-copy visitor architecture, this shim serializes
//! through an owned [`Value`] tree (the miniserde approach): `Serialize`
//! lowers a type to a `Value`, `Deserialize` raises it back. `serde_json`
//! (the sibling shim) renders and parses that tree as JSON text. The derive
//! macros re-exported here are hand-rolled in `serde_derive` and cover
//! named-field structs and unit-variant enums — exactly what this workspace
//! derives.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any number (JSON does not distinguish integer widths).
    Num(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered string-keyed map (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Look up a field in a `Map`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Build an error carrying `message`.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Lower to the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be raised back from a [`Value`].
pub trait Deserialize: Sized {
    /// Raise from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived code: extract and deserialize map field `name`.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    let fv = v
        .get(name)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))?;
    T::from_value(fv).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_num()
                    .map(|n| n as $t)
                    .ok_or_else(|| DeError::custom(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Floats are serialized by value except for the three non-finite classes,
// which JSON cannot represent as numbers; those round-trip as marker strings.
macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self;
                if x.is_finite() {
                    Value::Num(x as f64)
                } else if x.is_nan() {
                    Value::Str("nan".to_string())
                } else if x > 0.0 {
                    Value::Str("inf".to_string())
                } else {
                    Value::Str("-inf".to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    Value::Str(s) => match s.as_str() {
                        "nan" => Ok(<$t>::NAN),
                        "inf" => Ok(<$t>::INFINITY),
                        "-inf" => Ok(<$t>::NEG_INFINITY),
                        _ => Err(DeError::custom(concat!(
                            "expected number for ",
                            stringify!($t)
                        ))),
                    },
                    _ => Err(DeError::custom(concat!(
                        "expected number for ",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f64, f32);

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            Value::Num(self.as_secs() as f64),
            Value::Num(self.subsec_nanos() as f64),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                let secs = u64::from_value(&items[0])?;
                let nanos = u32::from_value(&items[1])?;
                Ok(std::time::Duration::new(secs, nanos))
            }
            _ => Err(DeError::custom("expected [secs, nanos] for Duration")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                parsed
                    .try_into()
                    .map_err(|_| DeError::custom("array length mismatch"))
            }
            _ => Err(DeError::custom(format!("expected sequence of length {N}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(DeError::custom("expected 2-tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(DeError::custom("expected 3-tuple")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
