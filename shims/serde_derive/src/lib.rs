//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde shim. `syn`/`quote` are unavailable (no network), so the
//! derive input is parsed directly from the `proc_macro` token stream.
//!
//! Supported shapes — exactly what this workspace derives:
//!
//! * structs with named fields (no generics),
//! * enums with unit variants only.
//!
//! Anything else panics at compile time with a clear message rather than
//! generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The derive target, reduced to what code generation needs.
enum Target {
    /// Struct name + field names.
    Struct(String, Vec<String>),
    /// Enum name + unit variant names.
    Enum(String, Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_target(input) {
        Target::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Target::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated code must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_target(input) {
        Target::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(value, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Target::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some(\"{v}\") => \
                             ::std::result::Result::Ok({name}::{v}),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match value.as_str() {{\n\
                             {arms}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::custom(\n\
                                 format!(\"invalid variant for {name}: {{value:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated code must parse")
}

/// Parse `[attrs] [vis] (struct|enum) Name { ... }` down to [`Target`].
fn parse_target(input: TokenStream) -> Target {
    let mut tokens = input.into_iter().peekable();
    skip_attributes_and_vis(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple structs are not supported (type `{name}`)")
            }
            Some(_) => continue,
            None => panic!("serde_derive: type `{name}` has no braced body"),
        }
    };

    match kind.as_str() {
        "struct" => Target::Struct(name, parse_struct_fields(body)),
        "enum" => Target::Enum(name, parse_enum_variants(body)),
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Skip leading `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attributes_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

/// Collect the field names of a named-field struct body.
fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes_and_vis(&mut tokens);
        let field = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected field name, got {other:?}"),
            None => break,
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde_derive: expected `:` after field `{field}`, got {other:?} \
                 (tuple/unit structs are not supported)"
            ),
        }
        fields.push(field);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        // Parens/brackets/braces arrive as atomic groups; only `<`/`>`
        // need explicit depth tracking.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Collect the variant names of a unit-variant enum body.
fn parse_enum_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes_and_vis(&mut tokens);
        let variant = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected variant name, got {other:?}"),
            None => break,
        };
        match tokens.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(other) => panic!(
                "serde_derive shim: enum variant `{variant}` has payload {other:?}; \
                 only unit variants are supported"
            ),
        }
    }
    variants
}
