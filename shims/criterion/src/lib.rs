//! Offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark a fixed number of timed iterations and prints
//! mean/min wall-clock times. No statistics, no plots — just enough to keep
//! `cargo build --benches` and `cargo bench` meaningful without network
//! access. The API mirrors the subset the workspace's benches use.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 10, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmark `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        timings: Vec::new(),
    };
    f(&mut bencher);
    if bencher.timings.is_empty() {
        eprintln!("  {label}: no iterations recorded");
        return;
    }
    let total: Duration = bencher.timings.iter().sum();
    let mean = total / bencher.timings.len() as u32;
    let min = bencher.timings.iter().min().copied().unwrap_or_default();
    eprintln!(
        "  {label}: mean {mean:?}, min {min:?} over {} samples",
        bencher.timings.len()
    );
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Time `samples` calls of `f`, recording each duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = f();
            self.timings.push(start.elapsed());
            std::hint::black_box(&out);
        }
    }
}

/// Identifier of a single benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identify a benchmark by parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Prevent the optimizer from eliding a value (re-export parity).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
