//! Contingency-screening funnel invariants.
//!
//! Debug-tier properties: spec expansion is deterministic and injective,
//! outage columns never island the network, and the graduation set (the
//! funnel's branching decision) is bitwise identical across device counts
//! and execution backends — both explicitly constructed pools and the
//! environment axes the CI matrix sweeps (`GRIDSIM_DEVICES`,
//! `GRIDSIM_BACKEND`).
//!
//! Release-gated guard: on a ~150-scenario case9 sweep spanning benign and
//! stressed load levels, the screen produces no false negatives — every
//! scenario the flat full-tolerance sweep finds stressed graduated to the
//! full tier (the banded funnel solves a superset of the truly violating
//! set at full tolerance).

use gridadmm::prelude::*;
use gridsim_batch::DevicePool;
use gridsim_grid::cases;
use gridsim_grid::network::Case;
use gridsim_grid::scenario::OUTAGE_REACTANCE;
use gridsim_store::ScenarioFingerprint;
use proptest::prelude::*;

fn spec_for(
    levels: usize,
    draws: usize,
    seed: u64,
    n1: usize,
    n2: usize,
    gens: usize,
) -> ContingencySpec {
    let mut spec = ContingencySpec::load_grid(levels, 0.95, 1.2).outages(n1, n2, gens);
    if draws > 0 {
        spec = spec.perturbed(draws, 0.03, seed);
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Expanding the same spec twice yields bitwise-identical scenarios,
    /// and the expansion is injective: every scenario name is distinct.
    #[test]
    fn expansion_is_deterministic_and_injective(
        levels in 1usize..4,
        draws in 0usize..3,
        seed in 0u64..1_000_000,
        n1 in 0usize..9,
        n2 in 0usize..4,
        gens in 0usize..4,
    ) {
        for base in [cases::case9(), cases::case14()] {
            let spec = spec_for(levels, draws, seed, n1, n2, gens);
            let a = spec.expand(&base);
            let b = spec.expand(&base);
            prop_assert_eq!(a.len(), spec.count(&base));
            let names: Vec<&str> = a.scenarios.iter().map(|s| s.name.as_str()).collect();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), names.len(), "duplicate scenario names");
            for (x, y) in a.networks().unwrap().iter().zip(&b.networks().unwrap()) {
                let fx = ScenarioFingerprint::of_network(x);
                let fy = ScenarioFingerprint::of_network(y);
                prop_assert_eq!(fx.structure, fy.structure);
                let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(bits(&fx.loads), bits(&fy.loads));
            }
        }
    }

    /// No outage column islands the network: with every outaged branch
    /// treated as open, all buses stay in one connected component.
    #[test]
    fn outage_columns_never_island(
        levels in 1usize..3,
        n1 in 1usize..9,
        n2 in 0usize..5,
        gens in 0usize..4,
    ) {
        for base in [cases::case9(), cases::case14(), cases::case30_like()] {
            let spec = spec_for(levels, 0, 0, n1, n2, gens);
            for case in spec.expand(&base).cases() {
                prop_assert!(is_connected(&case), "islanded scenario in expansion");
            }
        }
    }
}

/// Connectivity over in-service branches, treating branches driven to
/// [`OUTAGE_REACTANCE`] as electrically open.
fn is_connected(case: &Case) -> bool {
    let n = case.buses.len();
    let index_of = |bus: usize| case.buses.iter().position(|b| b.id == bus).unwrap();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for br in &case.branches {
        if !br.status || br.x >= OUTAGE_REACTANCE {
            continue;
        }
        let (a, b) = (
            find(&mut parent, index_of(br.from)),
            find(&mut parent, index_of(br.to)),
        );
        parent[a] = b;
    }
    let root = find(&mut parent, 0);
    (1..n).all(|i| find(&mut parent, i) == root)
}

fn small_sweep() -> (String, Vec<gridsim_grid::network::Network>) {
    let base = cases::case9();
    let spec = ContingencySpec::load_grid(2, 1.0, 1.3).outages(2, 0, 1);
    ("case9".to_string(), spec.expand(&base).networks().unwrap())
}

fn funnel_config() -> FunnelConfig {
    FunnelConfig {
        full: gridsim_admm::AdmmParams::test_profile(),
        ..Default::default()
    }
}

fn verdicts(report: &FunnelReport) -> (Vec<usize>, Vec<u64>) {
    (
        report.graduated.clone(),
        report.screened.iter().map(|s| s.margin.to_bits()).collect(),
    )
}

/// The graduation set and the screening margins are bitwise identical for
/// every engine configuration: device counts and all three execution
/// backends.
#[test]
fn graduation_is_identical_across_pools() {
    let (case_id, nets) = small_sweep();
    let reference = verdicts(
        &ContingencyFunnel::with_pool(funnel_config(), DevicePool::sequential(1))
            .run(&case_id, &nets),
    );
    for pool in [
        DevicePool::auto(3),
        DevicePool::sequential(2),
        DevicePool::parallel(2),
        DevicePool::vectorized(2),
    ] {
        let got =
            verdicts(&ContingencyFunnel::with_pool(funnel_config(), pool).run(&case_id, &nets));
        assert_eq!(got, reference);
    }
}

/// The environment axes the CI matrix sweeps (`GRIDSIM_DEVICES`,
/// `GRIDSIM_BACKEND`) reproduce the single-device sequential verdicts: this
/// test passing under every matrix leg *is* the cross-config determinism
/// claim.
#[test]
fn graduation_under_env_matches_reference() {
    let (case_id, nets) = small_sweep();
    let reference = verdicts(
        &ContingencyFunnel::with_pool(funnel_config(), DevicePool::sequential(1))
            .run(&case_id, &nets),
    );
    let under_env = verdicts(&ContingencyFunnel::new(funnel_config()).run(&case_id, &nets));
    assert_eq!(under_env, reference);
}

/// Release-gated no-false-negative guard: the screen never certifies as
/// benign a scenario the flat full-tolerance sweep finds stressed.
#[cfg(not(debug_assertions))]
#[test]
fn screen_has_no_false_negatives_on_a_stressed_sweep() {
    use gridsim_admm::scenario::ScenarioScheduler;
    use gridsim_admm::AdmmParams;
    use gridsim_engine::FleetRequest;
    use gridsim_screen::constraint_margin;

    // 3 levels x 5 draws x 10 columns = 150 scenarios spanning a benign
    // floor (1.0) and a stressed ceiling (1.5) with every outage column
    // case9 admits.
    let base = cases::case9();
    let spec = ContingencySpec::load_grid(3, 1.0, 1.5)
        .perturbed(4, 0.02, 7)
        .outages(6, 0, 3);
    let nets = spec.expand(&base).networks().unwrap();
    assert_eq!(nets.len(), 150);

    let pool = DevicePool::from_env();
    let flat = ScenarioScheduler::with_pool(AdmmParams::test_profile(), pool.clone())
        .run(FleetRequest::over(&nets).case("case9"));
    let config = funnel_config();
    let benign = config.benign_threshold;
    let report = ContingencyFunnel::with_pool(config, pool).run("case9", &nets);

    // The sweep must actually exercise both sides of the funnel.
    assert!(report.band_count(Band::Benign) > 0, "no benign scenarios");
    assert!(!report.graduated.is_empty(), "nothing graduated");

    let missed: Vec<usize> = (0..nets.len())
        .filter(|&i| {
            constraint_margin(&flat.results[i].quality) > benign
                && report.full_index_of(i).is_none()
        })
        .collect();
    assert!(
        missed.is_empty(),
        "screen certified {} stressed scenarios as benign: {missed:?}",
        missed.len()
    );
}
