//! Workspace integration tests: the decomposed GPU-style ADMM solver and the
//! centralized interior-point baseline must agree on the embedded and
//! synthetic cases — the cross-check behind every number in Table II.
//!
//! Wall-clock policy (ROADMAP open item): the agreement cases run under
//! [`AdmmParams::test_profile`] — looser tolerances, tighter iteration caps,
//! same algorithm — so a debug `cargo test -q` stays fast. The expensive
//! full-tolerance (default-parameter) sweep runs in release builds always
//! and in debug builds only when the `GRIDADMM_FULL_TESTS` env var is set.

use gridadmm::prelude::*;
use gridsim_acopf::violations::relative_gap;

/// True when the full-tolerance (default-parameter) cases should run.
fn run_full_profile() -> bool {
    !cfg!(debug_assertions) || std::env::var("GRIDADMM_FULL_TESTS").is_ok()
}

fn compare_on(case: gridsim_grid::Case, params: AdmmParams, gap_tol: f64, viol_tol: f64) {
    let net = case.compile().expect("case compiles");

    let admm = AdmmSolver::new(params).solve(&net);
    assert!(
        admm.quality.max_violation() < viol_tol,
        "{}: ADMM violation {:.3e}",
        net.name,
        admm.quality.max_violation()
    );

    let nlp = AcopfNlp::new(&net);
    let ipm = IpmSolver::new(IpmOptions::default()).solve(&nlp);
    // The baseline must at least have produced a near-feasible point to
    // compare against (on a few of the synthetic cases it stops with a
    // slightly stale dual residual while already primal-feasible).
    assert!(
        ipm.is_optimal() || ipm.primal_infeasibility < 1e-2,
        "{}: baseline status {:?}, primal infeasibility {:.3e}",
        net.name,
        ipm.status,
        ipm.primal_infeasibility
    );

    let gap = relative_gap(admm.objective, ipm.objective);
    assert!(
        gap < gap_tol,
        "{}: objective gap {:.4}% (ADMM {:.2} vs IPM {:.2})",
        net.name,
        100.0 * gap,
        admm.objective,
        ipm.objective
    );
}

#[test]
fn agreement_on_two_bus() {
    compare_on(
        gridsim_grid::cases::two_bus(),
        AdmmParams::test_profile(),
        0.01,
        1e-2,
    );
}

#[test]
fn agreement_on_case5() {
    // The PJM 5-bus case has purely linear costs and deliberately tight line
    // ratings; with the default (untuned) penalties the ADMM consensus
    // converges slowly, so only ballpark agreement is asserted here. The
    // penalty_sweep ablation covers the tuning story. Unlike the other
    // embedded cases, case5 needs the full inner-loop depth to make outer
    // progress, so only the tolerances come from the fast profile.
    let params = AdmmParams {
        max_inner: 1000,
        ..AdmmParams::test_profile()
    };
    compare_on(gridsim_grid::cases::case5(), params, 0.05, 0.5);
}

#[test]
fn agreement_on_case9() {
    compare_on(
        gridsim_grid::cases::case9(),
        AdmmParams::test_profile(),
        0.01,
        1e-2,
    );
}

#[test]
fn agreement_on_case14() {
    compare_on(
        gridsim_grid::cases::case14(),
        AdmmParams::test_profile(),
        0.01,
        1e-2,
    );
}

/// The full-tolerance sweep with default (paper-profile) parameters over the
/// embedded agreement cases — the exact assertions the suite ran per-case
/// before the fast profile existed.
#[test]
fn full_profile_agreement_on_embedded_cases() {
    if !run_full_profile() {
        eprintln!("skipping full-tolerance agreement sweep (set GRIDADMM_FULL_TESTS=1)");
        return;
    }
    compare_on(
        gridsim_grid::cases::two_bus(),
        AdmmParams::default(),
        0.01,
        1e-2,
    );
    compare_on(
        gridsim_grid::cases::case5(),
        AdmmParams::default(),
        0.05,
        0.5,
    );
    compare_on(
        gridsim_grid::cases::case9(),
        AdmmParams::default(),
        0.005,
        1e-2,
    );
    compare_on(
        gridsim_grid::cases::case14(),
        AdmmParams::default(),
        0.01,
        1e-2,
    );
}

#[test]
fn agreement_on_synthetic_case30() {
    // Synthetic cases use the default penalties un-tuned, so the consensus
    // residual at the iteration cap is larger than for case9/case14 (the
    // paper likewise tunes Table I penalties per case). Assert the ADMM
    // side's quality, that the centralized baseline converges, and that the
    // two objectives land in the same ballpark.
    let net = gridsim_grid::cases::case30_like().compile().unwrap();
    let admm = AdmmSolver::new(AdmmParams::test_profile()).solve(&net);
    assert!(
        admm.quality.max_violation() < 0.2,
        "ADMM violation {:.3e}",
        admm.quality.max_violation()
    );
    let nlp = AcopfNlp::new(&net);
    let ipm = IpmSolver::new(IpmOptions::default()).solve(&nlp);
    assert!(ipm.is_optimal(), "baseline status {:?}", ipm.status);
    assert!(
        relative_gap(admm.objective, ipm.objective) < 0.05,
        "objectives diverge: {} vs {}",
        admm.objective,
        ipm.objective
    );
}

#[test]
fn scaled_pegase_standin_runs_both_solvers() {
    // A 100-bus proportional stand-in of the 1354pegase case: exercises the
    // synthetic generator end-to-end with both solvers. With the default
    // (untuned) penalties the ADMM consensus is still loose within a bounded
    // iteration budget (the paper tunes Table I penalties per case for
    // exactly this reason), so its assertions are
    // structural: the run completes and dispatch respects the generator
    // boxes. The globalized baseline converges outright. (The
    // converged-quality pin for this case lives in
    // tests/scenario_batch.rs::pegase1354_scaled100_violation_does_not_regress.)
    let case = TableICase::Pegase1354.scaled(100);
    let net = case.compile().expect("case compiles");
    let params = AdmmParams {
        max_outer: 2,
        max_inner: 150,
        ..AdmmParams::default()
    };
    let admm = AdmmSolver::new(params).solve(&net);
    assert!(admm.objective.is_finite());
    for g in 0..net.ngen {
        assert!(admm.solution.pg[g] >= net.pmin[g] - 1e-9);
        assert!(admm.solution.pg[g] <= net.pmax[g] + 1e-9);
    }
    let nlp = AcopfNlp::new(&net);
    // The filter-globalized baseline converges on this case in ~20
    // iterations, so a bounded budget suffices for a full optimality check
    // (historically this case hit the 300-iteration cap and only a weak
    // infeasibility-reduction assertion was possible).
    let ipm = IpmSolver::new(IpmOptions {
        max_iter: 60,
        ..IpmOptions::default()
    })
    .solve(&nlp);
    assert!(ipm.objective.is_finite());
    assert!(ipm.is_optimal(), "baseline status {:?}", ipm.status);
    assert!(
        ipm.primal_infeasibility < 1e-5,
        "baseline infeasibility {:.3e}",
        ipm.primal_infeasibility
    );
}

#[test]
fn admm_scales_to_a_larger_synthetic_case_than_the_test_baseline() {
    // ADMM alone on a 200-bus synthetic case under a bounded iteration
    // budget: the point of the decomposition is that per-iteration work
    // scales with component count, so a fixed budget finishes quickly even
    // where running the centralized baseline (or converging the untuned
    // penalties) would not. Assertions are structural: the batch kernels
    // cover every component, dispatch respects the generator boxes, and the
    // iteration budget is exhausted without numerical failure.
    let case = TableICase::Pegase2869.scaled(200);
    let net = case.compile().expect("case compiles");
    let params = AdmmParams {
        max_outer: 1,
        max_inner: 150,
        ..AdmmParams::default()
    };
    let solver = AdmmSolver::new(params);
    let result = solver.solve(&net);
    assert!(result.objective.is_finite());
    assert!(result.inner_iterations >= 150);
    for g in 0..net.ngen {
        assert!(result.solution.pg[g] >= net.pmin[g] - 1e-9);
        assert!(result.solution.pg[g] <= net.pmax[g] + 1e-9);
    }
    // One branch-TRON block per branch per inner iteration was launched.
    let stats = solver.device.stats().snapshot();
    assert_eq!(
        stats.kernels["branch_tron"].blocks,
        (net.nbranch * result.inner_iterations) as u64
    );
}

#[test]
fn admm_solution_respects_all_bounds() {
    let net = gridsim_grid::cases::case14().compile().unwrap();
    let result = AdmmSolver::new(AdmmParams::test_profile()).solve(&net);
    let sol = &result.solution;
    for b in 0..net.nbus {
        assert!(sol.vm[b] >= net.vmin[b] - 1e-6);
        assert!(sol.vm[b] <= net.vmax[b] + 1e-6);
    }
    for g in 0..net.ngen {
        assert!(sol.pg[g] >= net.pmin[g] - 1e-9);
        assert!(sol.pg[g] <= net.pmax[g] + 1e-9);
        assert!(sol.qg[g] >= net.qmin[g] - 1e-9);
        assert!(sol.qg[g] <= net.qmax[g] + 1e-9);
    }
}

#[test]
fn line_limits_respected_within_margin() {
    // The solver tightens limits to 99 % of capacity internally, so the
    // extracted flows must respect the true ratings up to the consensus
    // error.
    let net = gridsim_grid::cases::case9().compile().unwrap();
    let result = AdmmSolver::new(AdmmParams::test_profile()).solve(&net);
    let flows = result.solution.branch_flows(&net);
    for l in 0..net.nbranch {
        if !net.rate_a[l].is_finite() {
            continue;
        }
        let s_from = (flows.pij[l].powi(2) + flows.qij[l].powi(2)).sqrt();
        let s_to = (flows.pji[l].powi(2) + flows.qji[l].powi(2)).sqrt();
        assert!(
            s_from <= net.rate_a[l] * 1.005,
            "branch {l} from-side loading {s_from} exceeds {}",
            net.rate_a[l]
        );
        assert!(s_to <= net.rate_a[l] * 1.005);
    }
}
