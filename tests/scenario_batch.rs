//! Determinism and regression harness for the batched multi-scenario ADMM
//! subsystem: backend-bitwise agreement, masked-convergence work accounting,
//! outage physics, warm-start chaining, and (in release builds) the
//! batch-vs-sequential wall-clock regression guard.

use gridadmm::prelude::*;
use gridsim_batch::Device;
use gridsim_engine::FleetRequest;
use gridsim_grid::cases;

/// A mixed scenario set exercising all three scenario families.
fn mixed_set(base: &Case, k: usize) -> ScenarioSet {
    let mut set = ScenarioSet::load_ramp(base.clone(), k.div_ceil(2), 0.97, 1.03);
    set.extend(ScenarioSet::perturbed_loads(
        base.clone(),
        k / 4 + 1,
        0.02,
        11,
    ));
    set.extend(ScenarioSet::branch_outages(base.clone(), k / 4 + 1));
    set.scenarios.truncate(k);
    set
}

#[test]
fn batch_is_bitwise_identical_across_backends() {
    let set = mixed_set(&cases::case9(), 5);
    let nets = set.networks().unwrap();
    // Bounded budget: bitwise identity holds at every iterate, converged or
    // not, so a short run keeps the debug suite fast.
    let params = AdmmParams {
        max_outer: 2,
        max_inner: 40,
        ..AdmmParams::test_profile()
    };
    let seq = ScenarioBatch::with_device(params.clone(), Device::sequential())
        .run(FleetRequest::over(&nets));
    for dev in [Device::parallel(), Device::vectorized()] {
        let got = ScenarioBatch::with_device(params.clone(), dev).run(FleetRequest::over(&nets));
        assert_eq!(got.ticks, seq.ticks);
        for (a, b) in got.results.iter().zip(&seq.results) {
            assert_eq!(a.status, b.status);
            assert_eq!(a.inner_iterations, b.inner_iterations);
            assert_eq!(a.outer_iterations, b.outer_iterations);
            assert_eq!(a.solution.pg, b.solution.pg);
            assert_eq!(a.solution.qg, b.solution.qg);
            assert_eq!(a.solution.vm, b.solution.vm);
            assert_eq!(a.solution.va, b.solution.va);
            assert_eq!(a.z_inf.to_bits(), b.z_inf.to_bits());
            assert_eq!(a.primal_residual.to_bits(), b.primal_residual.to_bits());
        }
    }
}

#[test]
fn outaged_branch_carries_no_flow() {
    let base = cases::case9();
    let set = ScenarioSet::branch_outages(base.clone(), 2);
    let nets = set.networks().unwrap();
    let batch = ScenarioBatch::new(AdmmParams::test_profile()).run(FleetRequest::over(&nets));
    for ((r, scen), net) in batch.results.iter().zip(&set.scenarios).zip(&nets) {
        assert!(
            r.quality.max_violation() < 5e-2,
            "{}: violation {}",
            r.name,
            r.quality.max_violation()
        );
        let l = scen.branch_outages[0];
        let flows = r.solution.branch_flows(net);
        // The open line's admittance is ~1e-7, so its flows are numerically
        // zero while the rest of the network reroutes around it.
        assert!(
            flows.pij[l].abs() < 1e-4 && flows.pji[l].abs() < 1e-4,
            "{}: outaged branch {l} still carries ({}, {})",
            r.name,
            flows.pij[l],
            flows.pji[l]
        );
    }
}

#[test]
fn batch_statuses_and_masking_are_reported_per_scenario() {
    let base = cases::case9();
    let nets = mixed_set(&base, 3).networks().unwrap();
    let batcher = ScenarioBatch::new(AdmmParams::test_profile());
    let before = batcher.device.stats().snapshot();
    let batch = batcher.run(FleetRequest::over(&nets));
    let delta = batcher.device.stats().snapshot().since(&before);
    // Ticks equal the slowest scenario; per-scenario counts differ, and the
    // masked launches only bill active scenarios for kernel work.
    assert_eq!(
        batch.ticks,
        batch
            .results
            .iter()
            .map(|r| r.inner_iterations)
            .max()
            .unwrap()
    );
    let nbranch = nets[0].nbranch as u64;
    let billed: u64 = batch
        .results
        .iter()
        .map(|r| r.inner_iterations as u64 * nbranch)
        .sum();
    assert_eq!(delta.kernels["branch_tron"].blocks, billed);
    assert_eq!(delta.kernels["z_update"].launches, batch.ticks as u64);
    for r in &batch.results {
        assert!(r.objective.is_finite());
        assert!(r.inner_iterations > 0);
    }
}

#[test]
fn chained_warm_start_beats_cold_batch_on_a_load_ramp() {
    let base = cases::case9();
    let nominal = base.compile().unwrap();
    let params = AdmmParams::test_profile();
    let cold_nominal = AdmmSolver::new(params.clone()).solve(&nominal);
    let set = ScenarioSet::load_ramp(base, 3, 1.002, 1.008);
    let nets = set.networks().unwrap();
    let batcher = ScenarioBatch::new(params);
    let chained = batcher.solve_chained(&nets, &cold_nominal.warm_state, 0.05);
    let cold = batcher.run(FleetRequest::over(&nets));
    assert!(
        chained.total_inner_iterations() < cold.total_inner_iterations(),
        "chained {} vs cold {}",
        chained.total_inner_iterations(),
        cold.total_inner_iterations()
    );
    for r in &chained.results {
        assert!(r.quality.max_violation() < 2e-2, "{}", r.name);
    }
}

/// Pins the known solution quality of the 100-bus 1354pegase stand-in under
/// the per-case defaults (`AdmmParams::for_case`). The pin history tracks
/// the case's health: under plain defaults the violation was ~1.06, per-case
/// rho/beta tuning improved it to ~0.87, and the bound was ratcheted
/// 1.10 → 0.95 → 0.90 → 0.88 → 0.875 across PRs 3–6. The residual ~0.87 was
/// never a tuning problem: the synthetic generator drew branch impedances
/// independently of thermal ratings and allowed tight ratings on bridge
/// branches, which made the case electrically infeasible (no voltage profile
/// inside [vmin, vmax] could deliver the load). With impedance coupled to
/// rating and tight ratings kept off the spanning tree, ADMM converges to
/// 3.9357e-4 — the bound is ratcheted three orders of magnitude to 4e-4.
/// Future penalty-tuning work must not regress above it — and when it
/// improves the value, ratchet again.
/// Full-tolerance default parameters make this expensive, so debug runs skip
/// it unless `GRIDADMM_FULL_TESTS` is set; release runs always execute it.
#[test]
fn pegase1354_scaled100_violation_does_not_regress() {
    if cfg!(debug_assertions) && std::env::var("GRIDADMM_FULL_TESTS").is_err() {
        eprintln!("skipping full-tolerance regression case (set GRIDADMM_FULL_TESTS=1)");
        return;
    }
    let net = TableICase::Pegase1354.scaled(100).compile().unwrap();
    let params = AdmmParams::for_case(TableICase::Pegase1354, 100);
    let result = AdmmSolver::with_device(params.clone(), Device::sequential()).solve(&net);
    let violation = result.quality.max_violation();
    eprintln!("pegase1354_scaled100 max violation: {violation}");
    assert!(
        violation < 4e-4,
        "max violation regressed to {violation} (recorded baseline 3.9357e-4 under per-case \
         defaults after the synthetic-generator electrical-consistency fix; the pre-fix \
         baseline on the then-infeasible case was 0.86956)"
    );
    assert!(result.objective.is_finite());
    // The bound holds *identically* under every backend: not merely below
    // the same threshold, but the same violation bits — the quality pin and
    // the backend-conformance contract are one statement here.
    for dev in [Device::parallel(), Device::vectorized()] {
        let label = dev.backend();
        let r = AdmmSolver::with_device(params.clone(), dev).solve(&net);
        assert_eq!(
            r.quality.max_violation().to_bits(),
            violation.to_bits(),
            "{label} backend changed the violation: {} vs {violation}",
            r.quality.max_violation()
        );
    }
}

/// Release-gated companion to the violation pin above: the same 100-bus
/// 1354pegase solve re-measured through the scenario scheduler's solution
/// store. Three statements: (1) with an empty store the run is bitwise
/// identical to the store-less scheduler run, so threading the store cannot
/// perturb the pinned trajectory; (2) the converged solve is committed, and
/// re-solving the identical scenario is a distance-zero hit; (3) the
/// warm-started admission satisfies the same 4e-4 bound as the cold pin.
/// Measured: cold 3.9357e-4; warm 3.9374e-4 after exactly **one** inner
/// iteration — the restart resumes the stored β schedule (WarmState
/// carries β since this PR; restarting β from `beta_init` at the fixed
/// point walked this marginal case out to 1.32e-3 over a full budget), so
/// one z-update at the fixed point re-certifies convergence. The pin is
/// not ratcheted: warm admission preserves, not tightens, cold quality.
#[cfg(not(debug_assertions))]
#[test]
fn pegase1354_scaled100_store_admission_holds_the_pin() {
    let case = TableICase::Pegase1354.scaled(100);
    let net = case.compile().unwrap();
    let params = AdmmParams::for_case(TableICase::Pegase1354, 100);
    let scheduler = ScenarioScheduler::new(params);
    let plain = scheduler.run(FleetRequest::over(std::slice::from_ref(&net)));

    let mut store: SolutionStore<WarmState> = SolutionStore::new();
    let cold = scheduler.run(
        FleetRequest::over(std::slice::from_ref(&net))
            .case(&case.name)
            .store(&mut store),
    );
    assert_eq!(cold.store.hits, 0);
    assert_eq!(cold.store.misses, 1);
    let (a, b) = (&cold.results[0], &plain.results[0]);
    assert_eq!(a.status, b.status);
    assert_eq!(a.inner_iterations, b.inner_iterations);
    assert_eq!(a.solution.pg, b.solution.pg);
    assert_eq!(a.solution.qg, b.solution.qg);
    assert_eq!(a.solution.vm, b.solution.vm);
    assert_eq!(a.solution.va, b.solution.va);
    let cold_violation = a.quality.max_violation();
    assert!(
        cold_violation < 4e-4,
        "cold pin regressed: {cold_violation}"
    );
    assert_eq!(store.len(), 1, "the converged solve must be committed");

    let warm = scheduler.run(
        FleetRequest::over(std::slice::from_ref(&net))
            .case(&case.name)
            .store(&mut store),
    );
    assert_eq!(
        warm.store.hits, 1,
        "identical scenario must hit at distance 0"
    );
    let warm_violation = warm.results[0].quality.max_violation();
    eprintln!(
        "pegase1354_scaled100 store admission: cold violation {cold_violation}, \
         warm violation {warm_violation}, warm inner iterations {}",
        warm.results[0].inner_iterations
    );
    assert!(
        warm_violation < 4e-4,
        "warm-started admission regressed past the pin: {warm_violation}"
    );
    // Resuming the stored β schedule makes the distance-zero restart
    // re-certify convergence almost immediately (measured: 1 inner
    // iteration) instead of re-running the penalty schedule.
    assert!(
        warm.results[0].inner_iterations <= 10,
        "distance-zero warm restart took {} inner iterations",
        warm.results[0].inner_iterations
    );
}

/// The acceptance benchmark: a K=8 batch of a mid-size case vs 8 sequential
/// solves on the parallel backend. The structural wins (bitwise identity,
/// ≥4× launch amortization) are asserted exactly; wall-clock gets a 10 %
/// tolerance band so scheduler noise on a loaded single-core machine cannot
/// flake the suite — on this container the batch measures ~3 % faster, and
/// the gap widens with cores since one batched launch fans `K×` more
/// elements across the thread pool. The `scenario_throughput` bench bin
/// records the exact comparison. Timing assertions are meaningless in
/// unoptimized builds, so this only runs in release (`cargo test --release`).
#[cfg(not(debug_assertions))]
#[test]
fn k8_batch_beats_sequential_solves_wall_clock() {
    use gridsim_bench::run_scenario_throughput;
    let case = TableICase::Pegase1354.scaled(300);
    let set = mixed_set(&case, 8);
    // Bounded budget: measures time per fixed work, converged or not.
    let params = AdmmParams {
        max_outer: 2,
        max_inner: 120,
        ..AdmmParams::default()
    };
    let row = run_scenario_throughput(&case.name, &set, &params);
    assert!(row.bitwise_identical, "batch diverged from single solves");
    assert!(
        row.batch_time_s < 1.10 * row.sequential_time_s,
        "K=8 batch ({:.3}s) regressed past sequential ({:.3}s)",
        row.batch_time_s,
        row.sequential_time_s
    );
    assert!(row.batch_launches * 4 < row.sequential_launches);
}
