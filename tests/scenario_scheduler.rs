//! Integration suite for the multi-device execution engine: sharding,
//! streaming admission, per-device accounting, and the two env axes the CI
//! matrix sweeps — device count (`GRIDSIM_DEVICES=1|2|4`) and launch
//! backend (`GRIDSIM_BACKEND=sequential|parallel|vectorized`).
//!
//! Every test here runs under whatever device count and backend the
//! environment selects *plus* explicit pool sizes and pinned backends, so
//! the sharded paths are exercised even when the env vars are unset.

use gridadmm::prelude::*;
use gridsim_batch::Device;
use gridsim_engine::{plan, FleetRequest};
use gridsim_grid::cases;

fn mixed_set(base: &Case, k: usize) -> ScenarioSet {
    let mut set = ScenarioSet::load_ramp(base.clone(), k.div_ceil(2), 0.97, 1.03);
    set.extend(ScenarioSet::perturbed_loads(
        base.clone(),
        k / 4 + 1,
        0.02,
        7,
    ));
    set.extend(ScenarioSet::branch_outages(base.clone(), k / 4 + 1));
    set.scenarios.truncate(k);
    set
}

fn short_params() -> AdmmParams {
    AdmmParams {
        max_outer: 2,
        max_inner: 40,
        ..AdmmParams::test_profile()
    }
}

fn assert_bitwise(a: &ScenarioBatchResult, b: &ScenarioBatchResult) {
    assert_eq!(a.results.len(), b.results.len());
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.status, y.status, "{}", x.name);
        assert_eq!(x.inner_iterations, y.inner_iterations, "{}", x.name);
        assert_eq!(x.outer_iterations, y.outer_iterations, "{}", x.name);
        assert_eq!(x.solution.pg, y.solution.pg, "{}", x.name);
        assert_eq!(x.solution.qg, y.solution.qg, "{}", x.name);
        assert_eq!(x.solution.vm, y.solution.vm, "{}", x.name);
        assert_eq!(x.solution.va, y.solution.va, "{}", x.name);
        assert_eq!(x.z_inf.to_bits(), y.z_inf.to_bits(), "{}", x.name);
    }
}

/// The scheduler built from the environment uses the device count the CI
/// matrix sets, and its results match the single-device batch bitwise.
#[test]
fn env_pool_matches_single_device_batch_bitwise() {
    let expected = std::env::var("GRIDSIM_DEVICES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    let params = short_params();
    let scheduler = ScenarioScheduler::new(params.clone());
    assert_eq!(
        scheduler.pool.len(),
        expected,
        "pool must honor GRIDSIM_DEVICES"
    );
    let nets = mixed_set(&cases::case9(), 5).networks().unwrap();
    let sched = scheduler.run(FleetRequest::over(&nets));
    let batch = ScenarioBatch::new(params).run(FleetRequest::over(&nets));
    assert_bitwise(&sched, &batch);
}

/// The scheduler built from the environment resolves the backend the CI
/// matrix sets through `GRIDSIM_BACKEND` (exactly as a bare `Auto` device
/// would), and its results stay bitwise identical to a pinned sequential
/// single-device batch — the backend axis changes speed, never bits.
#[test]
fn env_pool_backend_matches_resolution_bitwise() {
    use gridsim_batch::ExecutionMode;
    let params = short_params();
    let scheduler = ScenarioScheduler::new(params.clone());
    assert_eq!(
        scheduler.pool.backend(),
        ExecutionMode::Auto.resolve(),
        "pool must honor GRIDSIM_BACKEND"
    );
    assert_ne!(scheduler.pool.backend(), ExecutionMode::Auto);
    let nets = mixed_set(&cases::case9(), 4).networks().unwrap();
    let sched = scheduler.run(FleetRequest::over(&nets));
    let batch =
        ScenarioBatch::with_device(params, Device::sequential()).run(FleetRequest::over(&nets));
    assert_bitwise(&sched, &batch);
}

/// Sharding across every pool size up to K, with and without a lane cap,
/// is bitwise identical to the all-at-once single-device batch.
#[test]
fn all_shard_and_lane_configs_are_bitwise_identical() {
    let params = short_params();
    let nets = mixed_set(&cases::case9(), 5).networks().unwrap();
    let reference = ScenarioBatch::new(params.clone()).run(FleetRequest::over(&nets));
    for devices in 1..=4 {
        for lanes in [Some(1), Some(2), None] {
            let mut scheduler =
                ScenarioScheduler::with_pool(params.clone(), DevicePool::parallel(devices));
            if let Some(l) = lanes {
                scheduler = scheduler.with_lanes(l);
            }
            let sched = scheduler.run(FleetRequest::over(&nets));
            assert_bitwise(&sched, &reference);
        }
    }
}

/// Streaming admission keeps total kernel work identical to the plain
/// batch — each scenario runs exactly its own iterations, whichever slot
/// it streams through — while using fewer concurrent lanes.
#[test]
fn streaming_admission_bills_the_same_kernel_work() {
    let params = short_params();
    let nets = mixed_set(&cases::case9(), 5).networks().unwrap();
    let nbranch = nets[0].nbranch as u64;

    let scheduler =
        ScenarioScheduler::with_pool(params.clone(), DevicePool::parallel(1)).with_lanes(2);
    let before = scheduler.pool.combined_snapshot();
    let sched = scheduler.run(FleetRequest::over(&nets));
    let delta = scheduler.pool.combined_snapshot().since(&before);

    let expected: u64 = sched
        .results
        .iter()
        .map(|r| r.inner_iterations as u64 * nbranch)
        .sum();
    assert_eq!(delta.kernels["branch_tron"].blocks, expected);
    // With 2 lanes for 5 scenarios the device must run more ticks than the
    // widest batch (it streams 3 refills through the same slots)...
    let batch = ScenarioBatch::new(params).run(FleetRequest::over(&nets));
    assert!(sched.ticks > batch.ticks, "streaming must reuse slots");
    // ...but never idles below full occupancy while work is pending: the
    // billed block count per tick stays near 2 lanes' worth.
    assert_bitwise(&sched, &batch);
}

/// Refilling a slot uploads only that scenario's segments: transfers scale
/// with admissions, never with tick count.
#[test]
fn streamed_refills_transfer_per_admission_not_per_tick() {
    let params = short_params();
    let nets = mixed_set(&cases::case9(), 4).networks().unwrap();
    let scheduler = ScenarioScheduler::with_pool(params, DevicePool::parallel(1)).with_lanes(1);
    let before = scheduler.pool.combined_snapshot();
    let sched = scheduler.run(FleetRequest::over(&nets));
    let delta = scheduler.pool.combined_snapshot().since(&before);
    assert!(sched.ticks > 40, "want a run with many ticks");
    // 9 bulk uploads at setup + 8 ranged uploads per refilled scenario —
    // the refill count comes from the engine's own admission plan rather
    // than re-deriving the streaming arithmetic here.
    let shard = &plan::shard_plan(nets.len(), 1)[0];
    let refills = plan::admission_plan(shard, Some(1)).refills.len() as u64;
    assert_eq!(refills, nets.len() as u64 - 1);
    assert_eq!(delta.host_to_device_transfers, 9 + 8 * refills);
    // 6 ranged reads per finished scenario.
    assert_eq!(delta.device_to_host_transfers, 6 * nets.len() as u64);
}

/// Multi-device shards bill their kernel work to their own device streams,
/// and the per-device block counts sum to the single-device total.
#[test]
fn sharded_work_is_billed_per_device() {
    let params = short_params();
    let nets = mixed_set(&cases::case9(), 4).networks().unwrap();
    let nbranch = nets[0].nbranch as u64;
    let scheduler = ScenarioScheduler::with_pool(params, DevicePool::parallel(2));
    let sched = scheduler.run(FleetRequest::over(&nets));
    let snaps = scheduler.pool.snapshots();
    assert_eq!(snaps.len(), 2);
    for (d, snap) in snaps.iter().enumerate() {
        assert!(
            snap.kernels["branch_tron"].blocks > 0,
            "device {d} ran no branch work"
        );
    }
    // Each device bills exactly the scenarios the engine's shard plan
    // assigns it (round-robin), asserted against the plan itself instead of
    // re-implementing the round-robin arithmetic here.
    let shards = plan::shard_plan(nets.len(), snaps.len());
    for (d, snap) in snaps.iter().enumerate() {
        let expected: u64 = shards[d]
            .iter()
            .map(|&i| sched.results[i].inner_iterations as u64 * nbranch)
            .sum();
        assert_eq!(
            snap.kernels["branch_tron"].blocks, expected,
            "device {d} billed the wrong shard"
        );
    }
    let combined = scheduler.pool.combined_snapshot();
    let total: u64 = sched
        .results
        .iter()
        .map(|r| r.inner_iterations as u64 * nbranch)
        .sum();
    assert_eq!(combined.kernels["branch_tron"].blocks, total);
}

/// K=1 through the scheduler — any pool size — reproduces the single
/// solver bitwise, the engine's anchor invariant.
#[test]
fn k1_through_scheduler_equals_single_solver() {
    let net = cases::case9().compile().unwrap();
    let params = short_params();
    let single = AdmmSolver::new(params.clone()).solve(&net);
    for devices in [1, 3] {
        let scheduler = ScenarioScheduler::with_pool(params.clone(), DevicePool::parallel(devices));
        let sched = scheduler.run(FleetRequest::over(std::slice::from_ref(&net)));
        assert_eq!(sched.results.len(), 1);
        let r = &sched.results[0];
        assert_eq!(r.inner_iterations, single.inner_iterations);
        assert_eq!(r.solution.pg, single.solution.pg);
        assert_eq!(r.solution.qg, single.solution.qg);
        assert_eq!(r.solution.vm, single.solution.vm);
        assert_eq!(r.solution.va, single.solution.va);
        assert_eq!(r.warm_state, single.warm_state);
    }
}

/// Warm-started scheduling with per-scenario ramp bounds matches the
/// batch front end under sharding and streaming.
#[test]
fn warm_started_scheduling_matches_batch() {
    let base = cases::case9();
    let nominal = base.compile().unwrap();
    let params = short_params();
    let cold = AdmmSolver::new(params.clone()).solve(&nominal);
    let nets = mixed_set(&base, 4).networks().unwrap();
    let bounds: Vec<(Vec<f64>, Vec<f64>)> = nets
        .iter()
        .map(|n| gridsim_acopf::start::ramp_limited_bounds(n, cold.warm_state.previous_pg(), 0.1))
        .collect();
    let batch =
        ScenarioBatch::new(params.clone()).solve_warm(&nets, &cold.warm_state, Some(&bounds));
    let scheduler = ScenarioScheduler::with_pool(params, DevicePool::parallel(2)).with_lanes(1);
    let sched = scheduler.solve_warm(&nets, &cold.warm_state, Some(&bounds));
    assert_bitwise(&sched, &batch);
}

/// Every pinned backend takes the same scheduler paths and produces the
/// same bits under sharding (CI's matrix also sweeps the env-resolved
/// backend over this suite, so the combinations stay covered).
#[test]
fn all_backends_agree_through_the_scheduler() {
    let params = short_params();
    let nets = mixed_set(&cases::case9(), 4).networks().unwrap();
    let seq = ScenarioScheduler::with_pool(params.clone(), DevicePool::sequential(2))
        .with_lanes(1)
        .run(FleetRequest::over(&nets));
    for pool in [DevicePool::parallel(2), DevicePool::vectorized(2)] {
        let got = ScenarioScheduler::with_pool(params.clone(), pool)
            .with_lanes(1)
            .run(FleetRequest::over(&nets));
        assert_bitwise(&got, &seq);
    }
    // And the single-device sequential batch agrees too.
    let batch =
        ScenarioBatch::with_device(params, Device::sequential()).run(FleetRequest::over(&nets));
    assert_bitwise(&seq, &batch);
}

/// Scenario sets whose members share loads or topology share one `Arc`'d
/// problem-data copy inside the engine.
#[test]
fn problem_data_is_deduplicated_across_scenarios() {
    let base = cases::case9();
    let params = AdmmParams::default();
    let ramp_nets = ScenarioSet::load_ramp(base.clone(), 6, 0.95, 1.05)
        .networks()
        .unwrap();
    let p = ScenarioProblem::build(&ramp_nets, &params, None);
    assert_eq!(p.num_scenarios(), 6);
    let (gens, branches, _buses) = p.distinct_data_vecs();
    assert_eq!((gens, branches), (1, 1), "ramps share gens and branches");

    let outage_nets = ScenarioSet::branch_outages(base, 4).networks().unwrap();
    let p = ScenarioProblem::build(&outage_nets, &params, None);
    let (gens, _branches, buses) = p.distinct_data_vecs();
    assert_eq!((gens, buses), (1, 1), "outages share gens and buses");
}
