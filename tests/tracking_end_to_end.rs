//! Workspace integration test of the warm-start tracking experiment
//! (Figures 1–3): a short horizon on the 14-bus case with both solvers.

use gridadmm::prelude::*;
use gridsim_admm::track_horizon;

#[test]
fn short_horizon_tracking_on_case14() {
    let case = gridsim_grid::cases::case14();
    let profile = LoadProfile::paper_window(0, 5, 0.02);
    let config = TrackingConfig {
        params: AdmmParams::test_profile(),
        ..TrackingConfig::default()
    };
    let (periods, last) = track_horizon(&case, &profile, &config);

    assert_eq!(periods.len(), 5);
    // Figure-2-style check: violations stay at the cold-start level over the
    // horizon (no deterioration).
    let cold_violation = periods[0].max_violation;
    for p in &periods {
        assert!(
            p.max_violation <= (cold_violation * 10.0).max(1e-2),
            "period {} violation {:.3e} deteriorated (cold {:.3e})",
            p.period,
            p.max_violation,
            cold_violation
        );
    }
    // Figure-1-style check: every warm-started period is no slower than the
    // cold start, and the average warm period is strictly faster.
    let warm_avg: f64 = periods[1..]
        .iter()
        .map(|p| p.solve_time.as_secs_f64())
        .sum::<f64>()
        / (periods.len() - 1) as f64;
    assert!(
        warm_avg < periods[0].solve_time.as_secs_f64(),
        "warm average {:.4}s should beat the cold start {:.4}s",
        warm_avg,
        periods[0].solve_time.as_secs_f64()
    );
    // The final solution remains a sensible dispatch.
    let net = case.compile().unwrap();
    let total_pg: f64 = last.solution.pg.iter().sum();
    assert!(total_pg >= net.total_pd() * 0.98 * profile.multipliers[4]);
}

#[test]
fn ramp_limits_hold_between_consecutive_periods() {
    // Track with an aggressive load swing and a tight ramp; consecutive
    // dispatches must never move a generator faster than the ramp allows.
    let case = gridsim_grid::cases::case9();
    let net = case.compile().unwrap();
    let profile = LoadProfile {
        multipliers: vec![1.0, 1.02, 1.04],
        period_minutes: 1.0,
    };
    let ramp_fraction = 0.02;

    let solver = AdmmSolver::new(AdmmParams::test_profile());
    let mut prev: Option<gridsim_admm::AdmmResult> = None;
    let mut prev_pg: Option<Vec<f64>> = None;
    for &mult in &profile.multipliers {
        let net_t = case.scale_load(mult).compile().unwrap();
        let result = match &prev {
            None => solver.solve(&net_t),
            Some(p) => {
                let (lo, hi) = gridsim_acopf::start::ramp_limited_bounds(
                    &net_t,
                    p.warm_state.previous_pg(),
                    ramp_fraction,
                );
                solver.solve_warm(&net_t, &p.warm_state, Some((lo, hi)))
            }
        };
        if let Some(pg0) = &prev_pg {
            for (g, &pg_prev) in pg0.iter().enumerate() {
                let delta = (result.solution.pg[g] - pg_prev).abs();
                assert!(
                    delta <= ramp_fraction * net.pmax[g] + 1e-6,
                    "generator {g} ramped {delta:.4} > {:.4}",
                    ramp_fraction * net.pmax[g]
                );
            }
        }
        prev_pg = Some(result.solution.pg.clone());
        prev = Some(result);
    }
}
