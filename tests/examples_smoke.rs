//! Smoke tests exercising the core path of each file in `examples/`, so the
//! examples cannot silently rot: if an API they use changes shape or a case
//! they load stops compiling, these fail at `cargo test` time rather than
//! only at `cargo build --examples` (structure) or never (behavior).
//!
//! Each test mirrors one example, scaled down so the whole file runs in
//! seconds under the debug profile.

use gridadmm::prelude::*;
use gridsim_acopf::violations::relative_gap;
use gridsim_admm::{track_horizon, TrackingConfig};
use gridsim_engine::FleetRequest;
use gridsim_grid::{cases, matpower};

/// `examples/quickstart.rs`: ADMM solve vs IPM baseline on the 9-bus case.
#[test]
fn quickstart_core_path() {
    let net = cases::case9().compile().expect("case9 compiles");
    let admm = AdmmSolver::new(AdmmParams::test_profile());
    let result = admm.solve(&net);
    assert!(
        result.quality.max_violation() < 1e-2,
        "ADMM solution grossly infeasible: {}",
        result.quality.max_violation()
    );

    let nlp = AcopfNlp::new(&net);
    let ipm = IpmSolver::new(IpmOptions::default()).solve(&nlp);
    assert!(ipm.objective.is_finite());
    let gap = relative_gap(result.objective, ipm.objective);
    assert!(gap < 0.05, "ADMM vs IPM objective gap too large: {gap}");

    // The quickstart also inspects device statistics; they must be live.
    assert!(admm.device.stats().snapshot().total_launches() > 0);
}

/// `examples/matpower_io.rs`: write an embedded case to disk as MATPOWER
/// text, read it back, compile, and solve.
#[test]
fn matpower_io_core_path() {
    let original = cases::case14();
    let text = matpower::write_case(&original);
    let path = std::env::temp_dir().join("gridadmm_smoke_case14.m");
    std::fs::write(&path, &text).expect("write temp case");
    let reread = matpower::read_case(&path).expect("round-trip parse");
    std::fs::remove_file(&path).ok();

    let net = original.compile().unwrap();
    let net2 = reread.compile().unwrap();
    assert_eq!(net.nbus, net2.nbus);
    assert_eq!(net.nbranch, net2.nbranch);
    assert_eq!(net.ngen, net2.ngen);
    assert!((net.total_pd() - net2.total_pd()).abs() < 1e-9);
}

/// `examples/warm_start_tracking.rs`: short tracking horizon with warm
/// starts and ramp limits for ADMM, plus the condensed-KKT interior-point
/// reference sharing one horizon-wide `KktCache`.
#[test]
fn warm_start_tracking_core_path() {
    let case = cases::case9();
    let profile = LoadProfile::paper_window(7, 3, 0.03);
    let config = TrackingConfig {
        params: AdmmParams::test_profile(),
        ..TrackingConfig::default()
    };
    let (periods, last) = track_horizon(&case, &profile, &config);
    assert_eq!(periods.len(), profile.len());
    // Cumulative time is monotone and period metadata is coherent.
    for (t, p) in periods.iter().enumerate() {
        assert_eq!(p.period, t);
        assert!(p.max_violation < 1e-2, "period {t}: {}", p.max_violation);
        if t > 0 {
            assert!(p.cumulative_time >= periods[t - 1].cumulative_time);
        }
    }
    assert_eq!(last.solution.pg.len(), case.compile().unwrap().ngen);

    // The interior-point side of the example: every period re-solves the
    // same structure through one cache, so the whole horizon costs exactly
    // one symbolic analysis while factorizations keep accruing per period.
    let mut cache = KktCache::new();
    let mut prev: Option<(Vec<f64>, Vec<f64>)> = None;
    let mut factorizations = 0usize;
    for &mult in &profile.multipliers {
        let net_t = case.scale_load(mult).compile().unwrap();
        let nlp = match &prev {
            Some((_, prev_pg)) => {
                let (lo, hi) = gridsim_acopf::start::ramp_limited_bounds(
                    &net_t,
                    prev_pg,
                    config.ramp_fraction,
                );
                AcopfNlp::new(&net_t).with_pg_bounds(lo, hi)
            }
            None => AcopfNlp::new(&net_t),
        };
        let report = IpmSolver::new(IpmOptions {
            kkt_strategy: KktStrategy::Condensed,
            initial_point: prev.as_ref().map(|(x, _)| x.clone()),
            ..Default::default()
        })
        .solve_with_cache(&nlp, &mut cache);
        assert!(report.is_optimal(), "reference period failed to converge");
        factorizations += report.factorizations;
        let pg = nlp.to_solution(&report.x).pg;
        prev = Some((report.x, pg));
    }
    assert_eq!(
        cache.symbolic_analyses(),
        1,
        "horizon must share one analysis"
    );
    assert!(
        factorizations > profile.len(),
        "factorizations accrue per period"
    );
    assert_eq!(cache.numeric_refactorizations(), factorizations);

    // The solution-store side of the example: one store threaded across the
    // horizon. Period 0 misses (empty store), every later period hits its
    // nearest predecessor, and the seeded solves never cost more iterations
    // than the cold ones.
    let mut store: SolutionStore<IpmWarmStart> = SolutionStore::new();
    let mut stats = StoreRunStats::default();
    let mut stored_iterations = 0usize;
    let mut cold_iterations = 0usize;
    let fleet = IpmFleetSolver::new(IpmOptions {
        kkt_strategy: KktStrategy::Condensed,
        ..Default::default()
    });
    for &mult in &profile.multipliers {
        let net_t = case.scale_load(mult).compile().unwrap();
        cold_iterations += IpmSolver::new(IpmOptions {
            kkt_strategy: KktStrategy::Condensed,
            ..Default::default()
        })
        .solve(&AcopfNlp::new(&net_t))
        .iterations;
        let report = fleet.run(
            FleetRequest::over(std::slice::from_ref(&net_t))
                .case(&case.name)
                .store(&mut store),
        );
        assert!(report.all_optimal(), "store-threaded period failed");
        stats.merge(&report.store);
        stored_iterations += report.total_iterations();
    }
    assert_eq!(stats.misses, 1, "only the cold first period misses");
    assert_eq!(stats.hits, profile.len() - 1);
    assert_eq!(store.len(), profile.len());
    assert!(
        stored_iterations <= cold_iterations,
        "store-threaded horizon cost more iterations ({stored_iterations}) than cold \
         ({cold_iterations})"
    );
}

/// `examples/synthetic_scaling.rs`: a scaled Table-I-style synthetic case
/// compiles and the solver runs on it. Iterations are capped: the example
/// demonstrates scaling structure, and full convergence at example sizes is
/// too slow for the debug-profile test suite (the tracking and agreement
/// suites cover convergence on the embedded cases).
#[test]
fn synthetic_scaling_core_path() {
    let case = TableICase::Pegase1354.scaled(30);
    let net = case.compile().expect("synthetic case compiles");
    assert_eq!(net.nbus, 30);
    assert!(net.nbranch >= net.nbus, "Table-I cases are meshed");
    let params = AdmmParams {
        max_outer: 3,
        max_inner: 150,
        ..AdmmParams::default()
    };
    let result = AdmmSolver::new(params).solve(&net);
    assert!(result.objective.is_finite());
    assert!(result.inner_iterations > 0);
}

/// `examples/scenario_batch.rs`: a mixed scenario set solved through the
/// batched driver, bitwise identical to per-scenario solves.
#[test]
fn scenario_batch_core_path() {
    let base = cases::case9();
    let mut set = ScenarioSet::load_ramp(base.clone(), 2, 0.98, 1.02);
    set.extend(ScenarioSet::branch_outages(base, 1));
    let nets = set.networks().expect("scenario cases compile");
    assert_eq!(nets.len(), 3);
    let batcher = ScenarioBatch::new(AdmmParams::test_profile());
    let batch = batcher.run(FleetRequest::over(&nets));
    assert!(batch.all_converged(), "worst {}", batch.worst_violation());
    let single = AdmmSolver::new(AdmmParams::test_profile()).solve(&nets[0]);
    assert_eq!(batch.results[0].solution.pg, single.solution.pg);
    // Chaining reuses warm states across the set: same two scenarios, cold
    // batch vs warm chain.
    let chained = batcher.solve_chained(&nets[..2], &single.warm_state, 0.05);
    let cold2 = batcher.run(FleetRequest::over(&nets[..2]));
    assert_eq!(chained.results.len(), 2);
    assert!(chained.total_inner_iterations() < cold2.total_inner_iterations());
}
