//! Integration and property suite for the warm-start solution store: the
//! fingerprint identity and nearest-neighbor determinism contracts, the
//! empty-store ≡ no-store bitwise anchor, configuration-independence of
//! store-seeded fleet runs, warm-equals-cold solution agreement, and (in
//! release builds) the measured iteration-drop guard on a ≥100-scenario
//! perturbation sweep.

use gridadmm::prelude::*;
use gridsim_admm::AdmmStatus;
use gridsim_engine::FleetRequest;
use gridsim_grid::cases;
use proptest::prelude::*;

fn condensed_options() -> IpmOptions {
    IpmOptions {
        kkt_strategy: KktStrategy::Condensed,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Identical scenarios fingerprint identically — same loads bitwise,
    /// same structure signature — and a load change moves only the load
    /// half of the key.
    #[test]
    fn identical_scenarios_fingerprint_identically(
        seed in 0u64..10_000,
        k in 1usize..6,
        sigma in 0.001f64..0.1,
    ) {
        let a = ScenarioSet::perturbed_loads(cases::case14(), k, sigma, seed)
            .networks()
            .unwrap();
        let b = ScenarioSet::perturbed_loads(cases::case14(), k, sigma, seed)
            .networks()
            .unwrap();
        for (na, nb) in a.iter().zip(&b) {
            let fa = ScenarioFingerprint::of_network(na);
            let fb = ScenarioFingerprint::of_network(nb);
            prop_assert_eq!(fa.structure, fb.structure);
            prop_assert_eq!(fa.loads.len(), fb.loads.len());
            for (x, y) in fa.loads.iter().zip(&fb.loads) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            prop_assert_eq!(fa.distance(&fb).to_bits(), 0f64.to_bits());
        }
        // Same case, different loads: same structure class, nonzero distance.
        let other = ScenarioSet::perturbed_loads(cases::case14(), 1, sigma, seed + 1)
            .networks()
            .unwrap();
        let fa = ScenarioFingerprint::of_network(&a[0]);
        let fo = ScenarioFingerprint::of_network(&other[0]);
        prop_assert_eq!(fa.structure, fo.structure);
        prop_assert!(fa.distance(&fo) > 0.0);
    }

    /// The indexed nearest-neighbor lookup equals the brute-force linear
    /// scan — same entry, same insertion index, same distance bits — for
    /// random store contents, queries, and index tunings, including exact
    /// duplicate entries (tie-break by insertion index).
    #[test]
    fn indexed_nearest_equals_linear_scan(
        entries in prop::collection::vec(
            prop::collection::vec(-5.0f64..5.0, 4),
            0..40,
        ),
        queries in prop::collection::vec(
            prop::collection::vec(-5.0f64..5.0, 4),
            1..8,
        ),
        dup_every in 1usize..5,
        bucket_width in 0.01f64..1.0,
        max_rel in 0.05f64..0.6,
    ) {
        let mut store: SolutionStore<usize> = SolutionStore::with_config(StoreConfig {
            max_relative_distance: max_rel,
            bucket_width,
            max_entries: 0,
        });
        for (i, loads) in entries.iter().enumerate() {
            // Re-insert every dup_every-th entry's loads under a new payload
            // so exact-distance ties and replace-in-place paths are hit.
            let loads = if i % dup_every == 0 && i > 0 {
                entries[i - 1].clone()
            } else {
                loads.clone()
            };
            let fp = ScenarioFingerprint { loads, structure: 42 };
            store.insert("prop", &fp, i);
        }
        let view = store.view();
        for q in &queries {
            let fp = ScenarioFingerprint { loads: q.clone(), structure: 42 };
            let fast = view.nearest("prop", &fp);
            let slow = view.nearest_linear("prop", &fp);
            match (fast, slow) {
                (None, None) => {}
                (Some(f), Some(s)) => {
                    prop_assert_eq!(f.index, s.index);
                    prop_assert_eq!(f.distance.to_bits(), s.distance.to_bits());
                    prop_assert_eq!(&f.entry.payload, &s.entry.payload);
                }
                (f, s) => prop_assert!(
                    false,
                    "indexed {:?} vs linear {:?} disagree on hit/miss",
                    f.map(|h| h.index),
                    s.map(|h| h.index)
                ),
            }
        }
    }
}

/// With an empty store, `solve_with_store` is bitwise identical to `solve`
/// for both fleets (every lookup misses, nothing is seeded), and the run
/// fills the store with exactly the converged scenarios.
#[test]
fn empty_store_runs_match_plain_runs_bitwise() {
    let nets = ScenarioSet::perturbed_loads(cases::case9(), 4, 0.02, 3)
        .networks()
        .unwrap();

    // ADMM scenario scheduler.
    let scheduler = ScenarioScheduler::new(AdmmParams::test_profile());
    let plain = scheduler.run(FleetRequest::over(&nets));
    let mut store: SolutionStore<WarmState> = SolutionStore::new();
    let stored = scheduler.run(FleetRequest::over(&nets).case("case9").store(&mut store));
    assert_eq!(stored.store.hits, 0);
    assert_eq!(stored.store.misses, 4);
    for (a, b) in stored.results.iter().zip(&plain.results) {
        assert_eq!(a.status, b.status);
        assert_eq!(a.inner_iterations, b.inner_iterations);
        assert_eq!(a.solution.pg, b.solution.pg);
        assert_eq!(a.solution.qg, b.solution.qg);
        assert_eq!(a.solution.vm, b.solution.vm);
        assert_eq!(a.solution.va, b.solution.va);
    }
    let converged = plain
        .results
        .iter()
        .filter(|r| r.status == AdmmStatus::Converged)
        .count();
    assert_eq!(stored.store.inserts, converged);
    assert_eq!(store.len(), converged);

    // Interior-point fleet.
    let solver = IpmFleetSolver::new(condensed_options());
    let plain = solver.run(FleetRequest::over(&nets));
    let mut store: SolutionStore<IpmWarmStart> = SolutionStore::new();
    let stored = solver.run(FleetRequest::over(&nets).case("case9").store(&mut store));
    assert_eq!(stored.store.hits, 0);
    assert_eq!(stored.store.misses, 4);
    for (a, b) in stored.results.iter().zip(&plain.results) {
        assert_eq!(a.report.status, b.report.status);
        assert_eq!(a.report.iterations, b.report.iterations);
        assert_eq!(a.report.objective.to_bits(), b.report.objective.to_bits());
        for (x, y) in a.report.x.iter().zip(&b.report.x) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    assert_eq!(stored.store.inserts, 4);
    assert_eq!(store.len(), 4);
}

/// Store-seeded ADMM scheduler runs are bitwise identical across device
/// counts and lane caps given identical starting store contents, and the
/// post-run store contents (entry count, per-query nearest neighbor, and
/// payload) are identical too — the freeze-at-start determinism rule
/// holding end to end on the solver path.
#[test]
fn store_seeded_scheduler_is_bitwise_across_configurations() {
    let prime_nets = ScenarioSet::perturbed_loads(cases::case9(), 3, 0.02, 21)
        .networks()
        .unwrap();
    let eval_nets = ScenarioSet::perturbed_loads(cases::case9(), 4, 0.02, 22)
        .networks()
        .unwrap();
    let params = AdmmParams::test_profile();

    // Prime once on the reference configuration.
    let mut primed: SolutionStore<WarmState> = SolutionStore::new();
    ScenarioScheduler::new(params.clone()).run(
        FleetRequest::over(&prime_nets)
            .case("case9")
            .store(&mut primed),
    );
    assert!(!primed.is_empty(), "priming stored nothing");

    let mut reference: Option<(ScenarioBatchResult, SolutionStore<WarmState>)> = None;
    for (devices, lanes) in [(1, None), (1, Some(1)), (2, Some(1)), (3, Some(2))] {
        // Each configuration starts from its own copy of the primed
        // contents, rebuilt by replaying the same inserts.
        let mut store: SolutionStore<WarmState> = SolutionStore::new();
        ScenarioScheduler::new(params.clone()).run(
            FleetRequest::over(&prime_nets)
                .case("case9")
                .store(&mut store),
        );
        let mut scheduler =
            ScenarioScheduler::with_pool(params.clone(), DevicePool::parallel(devices));
        if let Some(l) = lanes {
            scheduler = scheduler.with_lanes(l);
        }
        let result = scheduler.run(
            FleetRequest::over(&eval_nets)
                .case("case9")
                .store(&mut store),
        );
        assert!(
            result.store.hits > 0,
            "devices={devices} lanes={lanes:?}: expected store hits at sigma 2%"
        );
        match &reference {
            None => reference = Some((result, store)),
            Some((ref_result, ref_store)) => {
                assert_eq!(result.store, ref_result.store, "devices={devices}");
                for (a, b) in result.results.iter().zip(&ref_result.results) {
                    assert_eq!(a.status, b.status, "{}", a.name);
                    assert_eq!(a.inner_iterations, b.inner_iterations, "{}", a.name);
                    assert_eq!(a.solution.pg, b.solution.pg, "{}", a.name);
                    assert_eq!(a.solution.vm, b.solution.vm, "{}", a.name);
                    assert_eq!(a.warm_state, b.warm_state, "{}", a.name);
                }
                assert_eq!(store.len(), ref_store.len());
                // The stores resolve every query identically: same entry
                // index, same distance bits, same payload.
                for net in eval_nets.iter().chain(&prime_nets) {
                    let fp = ScenarioFingerprint::of_network(net);
                    let a = store.nearest("case9", &fp);
                    let b = ref_store.nearest("case9", &fp);
                    match (a, b) {
                        (None, None) => {}
                        (Some(x), Some(y)) => {
                            assert_eq!(x.index, y.index);
                            assert_eq!(x.distance.to_bits(), y.distance.to_bits());
                            assert_eq!(x.entry.payload, y.entry.payload);
                        }
                        _ => panic!("stores disagree on hit/miss for {}", net.name),
                    }
                }
            }
        }
    }
}

/// Interior-point solves seeded from the store converge to the same
/// solution as cold solves of the same scenarios, within solver tolerance.
#[test]
fn warm_started_ipm_matches_cold_solutions() {
    let prime_nets = ScenarioSet::perturbed_loads(cases::case14(), 6, 0.02, 31)
        .networks()
        .unwrap();
    let eval_nets = ScenarioSet::perturbed_loads(cases::case14(), 4, 0.02, 32)
        .networks()
        .unwrap();
    let solver = IpmFleetSolver::with_engine(
        condensed_options(),
        Engine::with_pool(DevicePool::parallel(2)).with_lanes(1),
    );
    let cold = solver.run(FleetRequest::over(&eval_nets));
    assert!(cold.all_optimal());

    let mut store: SolutionStore<IpmWarmStart> = SolutionStore::new();
    let primed = solver.run(
        FleetRequest::over(&prime_nets)
            .case("case14")
            .store(&mut store),
    );
    assert!(primed.all_optimal());
    assert_eq!(primed.store.inserts, 6);

    let warm = solver.run(
        FleetRequest::over(&eval_nets)
            .case("case14")
            .store(&mut store),
    );
    assert!(warm.all_optimal(), "a store-seeded solve failed");
    assert!(warm.store.hits > 0, "no hits at sigma 2% with 6 neighbors");
    for (w, c) in warm.results.iter().zip(&cold.results) {
        let gap =
            (w.report.objective - c.report.objective).abs() / c.report.objective.abs().max(1.0);
        assert!(gap < 1e-6, "{}: warm vs cold objective gap {gap}", w.name);
        assert!(w.quality.max_violation() < 1e-5, "{}", w.name);
    }
}

/// Release-gated acceptance guard (ISSUE: warm-store economics): on a
/// ≥100-scenario seeded perturbation sweep (60 priming + 60 evaluation
/// scenarios around case14), warm-starting out of the store must shed
/// interior-point iterations against the cold sweep of the same scenarios —
/// a strict, measured drop, with every solve still optimal and warm
/// solutions matching cold ones to solver tolerance. (Full sweeps are too
/// slow for the debug suite; release runs always execute this.)
#[cfg(not(debug_assertions))]
#[test]
fn warm_store_sweep_sheds_ipm_iterations() {
    use gridsim_bench::run_warm_store;
    let row = run_warm_store(
        "case14",
        &cases::case14(),
        &AdmmParams::test_profile(),
        60,
        60,
        0.02,
        7,
        2,
        Some(1),
    );
    assert_eq!(row.prime_scenarios + row.eval_scenarios, 120, ">= 100");
    assert!(row.ipm_all_optimal, "a sweep solve failed");
    assert_eq!(row.ipm_store_inserts, 60, "a priming solve failed");
    assert_eq!(row.ipm_store_hits + row.ipm_store_misses, 60);
    assert!(
        row.ipm_hit_rate > 0.5,
        "hit rate {} too low at sigma 2% with 60 stored neighbors",
        row.ipm_hit_rate
    );
    assert!(
        row.ipm_warm_iterations < row.ipm_cold_iterations,
        "store-seeded sweep did not shed iterations: warm {} vs cold {}",
        row.ipm_warm_iterations,
        row.ipm_cold_iterations
    );
    assert!(
        row.ipm_max_objective_gap < 1e-5,
        "warm solutions diverged from cold: gap {}",
        row.ipm_max_objective_gap
    );
    eprintln!(
        "warm store sweep: {} hits / {} lookups, {} -> {} interior-point \
         iterations ({:.1}% drop), {:.3}s -> {:.3}s",
        row.ipm_store_hits,
        row.ipm_store_hits + row.ipm_store_misses,
        row.ipm_cold_iterations,
        row.ipm_warm_iterations,
        row.ipm_iteration_drop * 100.0,
        row.ipm_cold_time_s,
        row.ipm_warm_time_s,
    );
}
