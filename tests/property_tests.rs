//! Property-based tests (proptest) on the core invariants of the substrates:
//! flow-derivative correctness for arbitrary branch parameters, sparse LDLᵀ
//! solve accuracy on random quasi-definite systems, TRON optimality on random
//! box QPs, MATPOWER round-trips of random synthetic cases, and load-profile
//! invariants.

use gridadmm::prelude::*;
use gridsim_acopf::flows::{BranchFlow, FlowKind};
use gridsim_batch::Device;
use gridsim_engine::FleetRequest;
use gridsim_grid::branch::Branch;
use gridsim_grid::matpower;
use gridsim_grid::synthetic::SyntheticSpec;
use gridsim_sparse::{Coo, LdlFactor, LdlOptions, LdlSymbolic, Ordering};
use gridsim_tron::{BoundProblem, QuadraticBox, TronOptions, TronSolver};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Branch-flow gradients match finite differences for any realistic
    /// branch impedance, tap setting, and operating point.
    #[test]
    fn flow_gradients_match_finite_differences(
        r in 0.0f64..0.1,
        x in 0.01f64..0.4,
        b in 0.0f64..0.2,
        tap in 0.9f64..1.1,
        shift in -15.0f64..15.0,
        vi in 0.9f64..1.1,
        vj in 0.9f64..1.1,
        ti in -0.4f64..0.4,
        tj in -0.4f64..0.4,
    ) {
        let mut branch = Branch::line(1, 2, r, x, b, 100.0);
        branch.tap = tap;
        branch.shift = shift;
        let y = branch.admittance();
        let h = 1e-6;
        for kind in FlowKind::all() {
            let f = BranchFlow::from_admittance(&y, kind);
            let g = f.gradient(vi, vj, ti, tj);
            let fd_vi = (f.value(vi + h, vj, ti, tj) - f.value(vi - h, vj, ti, tj)) / (2.0 * h);
            let fd_ti = (f.value(vi, vj, ti + h, tj) - f.value(vi, vj, ti - h, tj)) / (2.0 * h);
            prop_assert!((g.dvi - fd_vi).abs() < 1e-4 * (1.0 + fd_vi.abs()));
            prop_assert!((g.dti - fd_ti).abs() < 1e-4 * (1.0 + fd_ti.abs()));
        }
    }

    /// Power is conserved on any branch: losses `p_ij + p_ji` are nonnegative
    /// whenever the series resistance is nonnegative.
    #[test]
    fn branch_losses_are_nonnegative(
        r in 0.0f64..0.1,
        x in 0.01f64..0.4,
        vi in 0.9f64..1.1,
        vj in 0.9f64..1.1,
        dt in -0.5f64..0.5,
    ) {
        let y = Branch::line(1, 2, r, x, 0.0, 0.0).admittance();
        let flows = gridsim_acopf::flows::branch_flows(&y, vi, vj, dt, 0.0);
        prop_assert!(flows[0] + flows[2] >= -1e-10, "losses {}", flows[0] + flows[2]);
    }

    /// The sparse LDLᵀ factorization solves random diagonally-dominant
    /// symmetric systems to high accuracy, with or without RCM ordering.
    #[test]
    fn ldl_solves_random_spd_systems(seed in 0u64..500) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 30;
        let mut coo = Coo::new(n, n);
        let mut diag = vec![1.0; n];
        for i in 0..n {
            for _ in 0..3 {
                let j = rng.gen_range(0..n);
                if j == i { continue; }
                let v: f64 = rng.gen_range(-1.0..1.0);
                coo.push(i, j, v);
                coo.push(j, i, v);
                diag[i] += v.abs() + 0.05;
                diag[j] += v.abs() + 0.05;
            }
        }
        for (i, &d) in diag.iter().enumerate() {
            coo.push(i, i, d);
        }
        let a = coo.to_csc();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 + seed as usize) % 13) as f64 - 6.0).collect();
        let f = LdlFactor::factorize_rcm(&a, &LdlOptions::default()).unwrap();
        let x = f.solve(&b);
        prop_assert!(a.residual_inf_norm(&x, &b) < 1e-8);
        prop_assert_eq!(f.inertia(), (n, 0, 0));
    }

    /// Numeric-only refactorization over a frozen symbolic analysis is
    /// bitwise identical to a fresh factorization, on random quasi-definite
    /// KKT matrices [H Jᵀ; J −δI] — including matrices whose indefinite `H`
    /// forces regularized pivots — on every backend of the batch device, and
    /// for both the scalar replay and the supernodal segmented replay (host
    /// `refactor_supernodal` and the device path, which launches the
    /// supernodal replay per row).
    #[test]
    fn ldl_refactorization_is_bitwise_identical_to_fresh(seed in 0u64..300) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let nx = 2 + (seed as usize) % 7;
        let m = (seed as usize) % 4;
        let n = nx + m;
        // Random quasi-definite KKT pattern; H diagonals may be negative so
        // the expected-sign regularization genuinely fires on some cases.
        let build = |rng: &mut SmallRng, scale: f64| -> gridsim_sparse::Csc {
            let mut coo = Coo::new(n, n);
            for i in 0..nx {
                coo.push(i, i, scale * rng.gen_range(-1.0..4.0));
            }
            for i in 0..nx {
                for j in (i + 1)..nx {
                    if rng.gen_range(0.0..1.0) < 0.4 {
                        let v = scale * rng.gen_range(-1.5..1.5);
                        coo.push(i, j, v);
                        coo.push(j, i, v);
                    }
                }
            }
            for r in 0..m {
                for c in 0..nx {
                    if rng.gen_range(0.0..1.0) < 0.6 {
                        let v = scale * rng.gen_range(-2.0..2.0);
                        coo.push(nx + r, c, v);
                        coo.push(c, nx + r, v);
                    }
                }
                coo.push(nx + r, nx + r, -1e-8);
            }
            coo.to_csc()
        };
        // Two value sets over one pattern: freeze the analysis on the first,
        // refactorize the second (the IPM iteration shape). Re-seeding the
        // generator keeps the sparsity decisions, hence the pattern,
        // identical.
        let a = build(&mut SmallRng::seed_from_u64(seed), 1.0);
        let a2 = build(&mut SmallRng::seed_from_u64(seed), rng.gen_range(0.3..3.0));
        let mut signs = vec![1i8; nx];
        signs.extend(std::iter::repeat_n(-1i8, m));
        let opts = LdlOptions { expected_signs: signs, ..Default::default() };
        let ordering = Ordering::rcm(&a);
        let sym = LdlSymbolic::analyze(&a, ordering.clone()).unwrap();
        for values in [&a, &a2] {
            let fresh = LdlFactor::factorize_with(values, ordering.clone(), &opts).unwrap();
            let replay = sym.refactor_matrix(values, &opts).unwrap();
            let supernodal = sym.refactor_supernodal(&values.values, &opts).unwrap();
            let par = sym.refactor_matrix_on(&Device::parallel(), values, &opts).unwrap();
            let seq = sym.refactor_matrix_on(&Device::sequential(), values, &opts).unwrap();
            let vec = sym.refactor_matrix_on(&Device::vectorized(), values, &opts).unwrap();
            for other in [&replay, &supernodal, &par, &seq, &vec] {
                prop_assert_eq!(fresh.num_regularized, other.num_regularized);
                for (x, y) in fresh.l_values().iter().zip(other.l_values()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
                for (x, y) in fresh.d_values().iter().zip(other.d_values()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            // Solves agree bitwise too (same factor, same triangular sweeps).
            let b: Vec<f64> = (0..n).map(|i| ((i * 11 + seed as usize) % 17) as f64 - 8.0).collect();
            let xf = fresh.solve(&b);
            let xr = par.solve(&b);
            for (x, y) in xf.iter().zip(&xr) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// TRON finds the exact clamped solution of any separable box QP.
    #[test]
    fn tron_solves_random_diagonal_box_qps(
        q in prop::collection::vec(0.5f64..10.0, 4),
        c in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        let qp = QuadraticBox::diagonal(&q, &c, &[-1.0; 4], &[1.0; 4]);
        let solver = TronSolver::new(TronOptions { gtol: 1e-10, ..Default::default() });
        let res = solver.solve(&qp, &[0.0; 4]);
        let expect = qp.diagonal_solution();
        for (a, b) in res.x.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
        // First-order optimality holds.
        let mut g = vec![0.0; 4];
        qp.gradient(&res.x, &mut g);
        prop_assert!(qp.projected_gradient_norm(&res.x, &g) < 1e-6);
    }

    /// Synthetic cases of any admissible size compile into connected
    /// networks and survive a MATPOWER write/parse round-trip.
    #[test]
    fn synthetic_cases_roundtrip_through_matpower(
        nbus in 10usize..60,
        extra_branches in 0usize..30,
        ngen in 2usize..8,
        seed in 0u64..1000,
    ) {
        let spec = SyntheticSpec {
            name: "prop".into(),
            nbus,
            ngen: ngen.min(nbus),
            nbranch: nbus - 1 + extra_branches,
            seed,
            ..Default::default()
        };
        let case = spec.generate();
        let net = case.compile();
        prop_assert!(net.is_ok(), "synthetic case must compile: {:?}", net.err());
        let net = net.unwrap();

        let text = matpower::write_case(&case);
        let parsed = matpower::parse_case(&text, "prop").unwrap();
        let net2 = parsed.compile().unwrap();
        prop_assert_eq!(net.nbus, net2.nbus);
        prop_assert_eq!(net.nbranch, net2.nbranch);
        prop_assert_eq!(net.ngen, net2.ngen);
        prop_assert!((net.total_pd() - net2.total_pd()).abs() < 1e-9);
    }

    /// Load-profile windows always renormalize to 1.0 at the first period and
    /// reproduce the requested maximum drift.
    #[test]
    fn load_profile_window_invariants(
        seed in 0u64..200,
        periods in 5usize..60,
        drift in 0.01f64..0.10,
    ) {
        let w = LoadProfile::paper_window(seed, periods, drift);
        prop_assert_eq!(w.len(), periods);
        prop_assert!((w.multipliers[0] - 1.0).abs() < 1e-12);
        prop_assert!((w.max_drift() - drift).abs() < 1e-6);
        prop_assert!(w.multipliers.iter().all(|m| *m > 0.5 && *m < 1.5));
    }

    /// Generator cost evaluation in the compiled network equals the raw
    /// MATPOWER polynomial for arbitrary dispatch.
    #[test]
    fn per_unit_cost_conversion_is_exact(
        c2 in 0.0f64..0.2,
        c1 in 0.0f64..50.0,
        c0 in 0.0f64..500.0,
        pg_mw in 0.0f64..300.0,
    ) {
        let mut case = gridsim_grid::cases::two_bus();
        case.generators[0].cost = gridsim_grid::GenCost { c2, c1, c0 };
        case.generators[0].pmax = 400.0;
        let net = case.compile().unwrap();
        let pg_pu = pg_mw / net.base_mva;
        let direct = c2 * pg_mw * pg_mw + c1 * pg_mw + c0;
        let via_net = net.generation_cost(&[pg_pu]);
        prop_assert!((direct - via_net).abs() < 1e-6 * (1.0 + direct));
    }
}

proptest! {
    // Few cases: each one runs full ADMM solves. The iteration caps keep a
    // case cheap; bitwise identity holds converged or not.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The scenario batcher is bitwise identical across every launch
    /// backend (`Parallel`, `Sequential`, `Vectorized`) for arbitrary
    /// perturbed-load scenario sets.
    #[test]
    fn scenario_batch_is_bitwise_identical_across_backends(
        seed in 0u64..1000,
        k in 1usize..5,
        sigma in 0.005f64..0.05,
    ) {
        use gridsim_batch::Device;
        let set = ScenarioSet::perturbed_loads(gridsim_grid::cases::case9(), k, sigma, seed);
        let nets = set.networks().unwrap();
        let params = AdmmParams { max_outer: 2, max_inner: 25, ..AdmmParams::default() };
        let seq = ScenarioBatch::with_device(params.clone(), Device::sequential()).run(FleetRequest::over(&nets));
        for dev in [Device::parallel(), Device::vectorized()] {
            let got = ScenarioBatch::with_device(params.clone(), dev).run(FleetRequest::over(&nets));
            prop_assert_eq!(got.ticks, seq.ticks);
            for (a, b) in got.results.iter().zip(&seq.results) {
                prop_assert_eq!(a.inner_iterations, b.inner_iterations);
                prop_assert_eq!(&a.solution.pg, &b.solution.pg);
                prop_assert_eq!(&a.solution.qg, &b.solution.qg);
                prop_assert_eq!(&a.solution.vm, &b.solution.vm);
                prop_assert_eq!(&a.solution.va, &b.solution.va);
                prop_assert_eq!(a.z_inf.to_bits(), b.z_inf.to_bits());
            }
        }
    }

    /// Sharded + streamed execution through the `ScenarioScheduler` is
    /// bitwise identical to the single-device `ScenarioBatch` for arbitrary
    /// device counts, lane caps, and admission orders, on every backend.
    /// (Admission order is varied by rotating the input list: the scheduler
    /// admits in input order, so a rotation is a different admission order;
    /// results are compared scenario-by-scenario through the rotation.)
    #[test]
    fn scheduler_is_bitwise_identical_for_any_sharding(
        seed in 0u64..1000,
        k in 1usize..5,
        devices in 1usize..4,
        lanes in 1usize..3,
        rotate in 0usize..4,
        backend_sel in 0usize..3,
    ) {
        use gridsim_batch::DevicePool;
        let set = ScenarioSet::perturbed_loads(gridsim_grid::cases::case9(), k, 0.03, seed);
        let nets = set.networks().unwrap();
        let params = AdmmParams { max_outer: 2, max_inner: 25, ..AdmmParams::default() };
        let reference = ScenarioBatch::new(params.clone()).run(FleetRequest::over(&nets));

        let mut rotated = nets.clone();
        rotated.rotate_left(rotate % k);
        let pool = match backend_sel {
            0 => DevicePool::parallel(devices),
            1 => DevicePool::sequential(devices),
            _ => DevicePool::vectorized(devices),
        };
        let scheduler = ScenarioScheduler::with_pool(params, pool).with_lanes(lanes);
        let sched = scheduler.run(FleetRequest::over(&rotated));
        prop_assert_eq!(sched.results.len(), k);
        for (i, r) in sched.results.iter().enumerate() {
            let b = &reference.results[(i + rotate % k) % k];
            prop_assert_eq!(&r.name, &b.name);
            prop_assert_eq!(r.status, b.status);
            prop_assert_eq!(r.inner_iterations, b.inner_iterations);
            prop_assert_eq!(r.outer_iterations, b.outer_iterations);
            prop_assert_eq!(&r.solution.pg, &b.solution.pg);
            prop_assert_eq!(&r.solution.qg, &b.solution.qg);
            prop_assert_eq!(&r.solution.vm, &b.solution.vm);
            prop_assert_eq!(&r.solution.va, &b.solution.va);
            prop_assert_eq!(r.z_inf.to_bits(), b.z_inf.to_bits());
        }
    }

    /// A K=1 scenario batch reproduces `AdmmSolver::solve` exactly — same
    /// iteration counts, same status, bit-identical solution.
    #[test]
    fn k1_scenario_batch_equals_single_solver(
        mult in 0.9f64..1.1,
        max_outer in 1usize..3,
    ) {
        let net = gridsim_grid::cases::case9().scale_load(mult).compile().unwrap();
        let params = AdmmParams { max_outer, max_inner: 40, ..AdmmParams::default() };
        let single = AdmmSolver::new(params.clone()).solve(&net);
        let batch = ScenarioBatch::new(params).run(FleetRequest::over(std::slice::from_ref(&net)));
        prop_assert_eq!(batch.results.len(), 1);
        let r = &batch.results[0];
        prop_assert_eq!(r.inner_iterations, single.inner_iterations);
        prop_assert_eq!(r.outer_iterations, single.outer_iterations);
        prop_assert_eq!(r.status, single.status);
        prop_assert_eq!(&r.solution.pg, &single.solution.pg);
        prop_assert_eq!(&r.solution.qg, &single.solution.qg);
        prop_assert_eq!(&r.solution.vm, &single.solution.vm);
        prop_assert_eq!(&r.solution.va, &single.solution.va);
        prop_assert_eq!(r.z_inf.to_bits(), single.z_inf.to_bits());
    }
}

#[test]
fn admm_deterministic_across_runs() {
    // Not a proptest (one expensive solve), but a determinism invariant: two
    // identical runs produce bit-identical dispatch.
    let net = gridsim_grid::cases::case9().compile().unwrap();
    let a = AdmmSolver::new(AdmmParams::default()).solve(&net);
    let b = AdmmSolver::new(AdmmParams::default()).solve(&net);
    assert_eq!(a.inner_iterations, b.inner_iterations);
    assert_eq!(a.solution.pg, b.solution.pg);
    assert_eq!(a.solution.vm, b.solution.vm);
}
