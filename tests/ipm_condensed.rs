//! Integration tests for the condensed-space KKT strategy of the
//! interior-point baseline: agreement with the full augmented-KKT path on
//! real ACOPF cases, symbolic-reuse accounting (one analysis per NLP, one
//! per tracking horizon), and the release-gated full-vs-condensed
//! comparison the bench records.

use gridadmm::prelude::*;
use gridsim_acopf::start::ramp_limited_bounds;
use gridsim_bench::run_kkt_comparison;
use gridsim_grid::cases;
use gridsim_grid::load_profile::LoadProfile;
use gridsim_ipm::{KktCache, KktStrategy};

fn solver(strategy: KktStrategy) -> IpmSolver {
    IpmSolver::new(IpmOptions {
        tol: 1e-6,
        max_iter: 300,
        kkt_strategy: strategy,
        ..Default::default()
    })
}

/// The condensed step is an exact block elimination, so both strategies must
/// find the same optimum on a real ACOPF, and the condensed path must pay
/// O(1) symbolic analyses while refactorizing every Newton step.
#[test]
fn condensed_agrees_with_full_on_case9() {
    let net = cases::case9().compile().unwrap();
    let nlp = AcopfNlp::new(&net);
    let full = solver(KktStrategy::Full).solve(&nlp);
    let condensed = solver(KktStrategy::Condensed).solve(&nlp);
    assert!(full.is_optimal(), "full status {:?}", full.status);
    assert!(
        condensed.is_optimal(),
        "condensed status {:?}",
        condensed.status
    );
    assert!(
        (condensed.objective - full.objective).abs() < 1e-5 * full.objective.abs(),
        "objectives {} vs {}",
        condensed.objective,
        full.objective
    );
    for (a, b) in condensed.x.iter().zip(&full.x) {
        assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }
    // Factorization counters: the full path re-analyzes every step, the
    // condensed path analyzes once (the probe) and only refactorizes after.
    assert_eq!(full.symbolic_analyses, full.factorizations);
    assert!(
        condensed.symbolic_analyses >= 1,
        "at least one analysis per NLP"
    );
    assert!(
        condensed.symbolic_analyses <= 2,
        "condensed re-analyzed {} times over {} factorizations",
        condensed.symbolic_analyses,
        condensed.factorizations
    );
    assert!(condensed.factorizations > condensed.symbolic_analyses);
}

#[test]
fn condensed_agrees_with_full_on_case14() {
    let net = cases::case14().compile().unwrap();
    let nlp = AcopfNlp::new(&net);
    let full = solver(KktStrategy::Full).solve(&nlp);
    let condensed = solver(KktStrategy::Condensed).solve(&nlp);
    assert!(full.is_optimal() && condensed.is_optimal());
    assert!(
        (condensed.objective - full.objective).abs() < 1e-5 * full.objective.abs(),
        "objectives {} vs {}",
        condensed.objective,
        full.objective
    );
    assert!(condensed.symbolic_analyses <= 2);
}

/// A rolling-horizon IPM reference trajectory reuses one symbolic analysis
/// across all periods: every period's condensed system has the same frozen
/// pattern, and the shared cache recognizes it.
#[test]
fn tracking_horizon_reuses_one_symbolic_analysis() {
    let base = cases::case9();
    let profile = LoadProfile {
        multipliers: vec![1.0, 1.01, 1.02, 1.015],
        period_minutes: 1.0,
    };
    let mut cache = KktCache::new();
    let mut prev: Option<(Vec<f64>, Vec<f64>)> = None;
    let mut total_factorizations = 0usize;
    for &mult in &profile.multipliers {
        let case_t = base.scale_load(mult);
        let net_t = case_t.compile().unwrap();
        let nlp = match &prev {
            Some((_, prev_pg)) => {
                let (lo, hi) = ramp_limited_bounds(&net_t, prev_pg, 0.02);
                AcopfNlp::new(&net_t).with_pg_bounds(lo, hi)
            }
            None => AcopfNlp::new(&net_t),
        };
        let report = IpmSolver::new(IpmOptions {
            tol: 1e-6,
            max_iter: 300,
            initial_point: prev.as_ref().map(|(x, _)| x.clone()),
            kkt_strategy: KktStrategy::Condensed,
            ..Default::default()
        })
        .solve_with_cache(&nlp, &mut cache);
        assert!(report.is_optimal(), "period status {:?}", report.status);
        total_factorizations += report.factorizations;
        let sol = nlp.to_solution(&report.x);
        prev = Some((report.x.clone(), sol.pg.clone()));
    }
    assert!(
        cache.symbolic_analyses() <= 2,
        "horizon of {} periods paid {} symbolic analyses",
        profile.len(),
        cache.symbolic_analyses()
    );
    assert!(
        total_factorizations > profile.len() * 3,
        "factorizations {} should dwarf the analysis count",
        total_factorizations
    );
    assert!(cache.numeric_refactorizations() >= total_factorizations);
}

/// Release guard for the convergence bugfix on the scaled synthetic registry:
/// every Table I stand-in at scale 100 must converge to optimality under the
/// condensed strategy, well inside the iteration cap. These cases historically
/// hit the 300-iteration cap under both KKT strategies; the cure was the
/// filter line-search globalization plus electrical consistency in the
/// synthetic generator (impedance coupled to thermal rating, no tight ratings
/// on spanning-tree bridges). A regression back to cap-limited non-convergence
/// fails this loudly rather than silently re-poisoning the tracking story.
#[test]
fn scaled_registry_cases_converge_under_condensed() {
    if cfg!(debug_assertions) && std::env::var("GRIDADMM_FULL_TESTS").is_err() {
        eprintln!("skipping full-tolerance regression case (set GRIDADMM_FULL_TESTS=1)");
        return;
    }
    for tc in gridsim_grid::synthetic::TableICase::all() {
        let net = tc.scaled(100).compile().unwrap();
        let nlp = AcopfNlp::new(&net);
        let opts = IpmOptions {
            tol: 1e-6,
            max_iter: 300,
            kkt_strategy: KktStrategy::Condensed,
            ..Default::default()
        };
        let report = IpmSolver::new(opts.clone()).solve(&nlp);
        assert!(
            report.is_optimal(),
            "{} scaled100: status {:?}, pinf {:.3e}",
            tc.name(),
            report.status,
            report.primal_infeasibility
        );
        assert!(
            report.iterations < opts.max_iter,
            "{} scaled100: hit the iteration cap",
            tc.name()
        );
        // The fixed cases are easy enough that convergence is fast, not
        // merely under the cap — guard against slow decay too.
        assert!(
            report.iterations <= 60,
            "{} scaled100: {} iterations (expected ~20)",
            tc.name(),
            report.iterations
        );
    }
}

/// Release guard for the recorded full-vs-condensed comparison (the
/// `kkt_condensed` bench binary records the same rows): both strategies
/// converge to the same objective and the counter contrast holds. Expensive
/// in debug, so gated like the other full-tolerance sweeps.
#[test]
fn kkt_comparison_rows_hold_on_reference_cases() {
    if cfg!(debug_assertions) && std::env::var("GRIDADMM_FULL_TESTS").is_err() {
        eprintln!("skipping full-tolerance regression case (set GRIDADMM_FULL_TESTS=1)");
        return;
    }
    // case30_like historically did not converge within the iteration budget;
    // the filter line-search globalization plus the synthetic-generator
    // electrical-consistency fix cured that, so optimality is now asserted on
    // every reference case.
    for (name, case, expect_optimal) in [
        ("case9", cases::case9(), true),
        ("case14", cases::case14(), true),
        ("case30_like", cases::case30_like(), true),
    ] {
        let row = run_kkt_comparison(name, &case);
        eprintln!(
            "{name}: full {}x{} {:.3}s / {} fact; condensed {}x{} {:.3}s / {} fact, {} symbolic; \
             {} supernodes (max width {}), supernodal replay {:.2}x vs scalar",
            row.full_dim,
            row.full_dim,
            row.full_time_s,
            row.full_factorizations,
            row.condensed_dim,
            row.condensed_dim,
            row.condensed_time_s,
            row.condensed_factorizations,
            row.condensed_symbolic_analyses,
            row.condensed_supernodes,
            row.condensed_max_supernode_width,
            row.refactor_speedup,
        );
        // The supernodal replay's speedup is only meaningful at bit-identical
        // factors; the micro-benchmark verifies that on the production matrix.
        assert!(
            row.refactor_bitwise_identical,
            "{name}: supernodal replay diverged from scalar"
        );
        if expect_optimal {
            assert!(row.both_optimal, "{name}: a strategy failed");
            assert!(
                row.objective_rel_gap < 1e-5,
                "{name}: objective gap {}",
                row.objective_rel_gap
            );
        }
        assert!(row.condensed_dim < row.full_dim, "{name}: no condensation");
        assert_eq!(row.full_symbolic_analyses, row.full_factorizations);
        assert!(
            row.condensed_symbolic_analyses <= 2,
            "{name}: {} symbolic analyses",
            row.condensed_symbolic_analyses
        );
        assert!(row.condensed_factorizations > row.condensed_symbolic_analyses);
    }
}
