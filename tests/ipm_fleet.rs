//! Integration suite for the interior-point scenario fleet on the
//! execution engine: per-lane symbolic-analysis economics, warm-start
//! chaining, the sequential-loop identity, and the env-driven device count
//! the CI matrix sweeps (`GRIDSIM_DEVICES=1|2|4`).
//!
//! The fleet's anchor invariants, both proptest-guarded below:
//!
//! * at **one device and one lane** the fleet is *bitwise identical* to a
//!   hand-written sequential `solve_with_cache` loop threading one
//!   `KktCache` and the previous solve's primal/dual point and bound
//!   multipliers — the engine adds exactly nothing to the arithmetic,
//! * across **any device/lane configuration** the per-scenario reports
//!   stay *report-identical to solver tolerance*: every scenario optimal,
//!   same objective to tolerance, while symbolic analyses equal the lane
//!   count of the configuration (not the scenario count).

use gridadmm::prelude::*;
use gridsim_engine::{plan, FleetRequest};
use proptest::prelude::*;

fn condensed_options() -> IpmOptions {
    IpmOptions {
        kkt_strategy: KktStrategy::Condensed,
        ..Default::default()
    }
}

/// The fleet built from the environment honors the device count and the
/// resolved launch backend the CI matrix sets, and its report invariants
/// hold under that pool.
#[test]
fn env_engine_fleet_honors_gridsim_devices() {
    let expected = std::env::var("GRIDSIM_DEVICES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    let solver = IpmFleetSolver::new(condensed_options());
    assert_eq!(
        solver.engine.pool().len(),
        expected,
        "engine must honor GRIDSIM_DEVICES"
    );
    assert_eq!(
        solver.engine.pool().backend(),
        ExecutionMode::Auto.resolve(),
        "engine must honor GRIDSIM_BACKEND"
    );
    let nets = ScenarioSet::load_ramp(gridsim_grid::cases::case9(), 4, 0.98, 1.02)
        .networks()
        .unwrap();
    let fleet = solver.run(FleetRequest::over(&nets));
    assert_eq!(fleet.results.len(), 4);
    assert!(fleet.all_optimal());
    assert_eq!(fleet.lanes, solver.engine.total_lanes(4));
    assert_eq!(fleet.symbolic_analyses(), fleet.lanes);
}

/// A 1-scenario fleet reproduces a plain `IpmSolver::solve` bitwise — the
/// engine's K=1 anchor for the interior-point family.
#[test]
fn k1_fleet_equals_single_solve() {
    let net = gridsim_grid::cases::case14().compile().unwrap();
    let single = IpmSolver::new(condensed_options()).solve(&AcopfNlp::new(&net));
    for devices in [1, 3] {
        let engine = Engine::with_pool(DevicePool::parallel(devices));
        let fleet = IpmFleetSolver::with_engine(condensed_options(), engine)
            .run(FleetRequest::over(std::slice::from_ref(&net)));
        assert_eq!(fleet.results.len(), 1);
        let r = &fleet.results[0].report;
        assert_eq!(r.iterations, single.iterations);
        assert_eq!(r.factorizations, single.factorizations);
        assert_eq!(r.symbolic_analyses, single.symbolic_analyses);
        assert_eq!(r.objective.to_bits(), single.objective.to_bits());
        for (a, b) in r.x.iter().zip(&single.x) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// Symbolic analyses scale with the configuration's lane count — asserted
/// against the engine's own admission-plan arithmetic, not a re-derived
/// round-robin.
#[test]
fn symbolic_analyses_equal_planned_lanes_across_configs() {
    let nets = ScenarioSet::load_ramp(gridsim_grid::cases::case9(), 5, 0.98, 1.02)
        .networks()
        .unwrap();
    for devices in [1, 2, 3] {
        for lanes in [Some(1), Some(2), None] {
            let mut engine = Engine::with_pool(DevicePool::parallel(devices));
            if let Some(l) = lanes {
                engine = engine.with_lanes(l);
            }
            let planned = plan::total_lanes(nets.len(), devices, lanes);
            let fleet = IpmFleetSolver::with_engine(condensed_options(), engine)
                .run(FleetRequest::over(&nets));
            assert!(fleet.all_optimal(), "devices={devices} lanes={lanes:?}");
            assert_eq!(fleet.lanes, planned);
            assert_eq!(
                fleet.symbolic_analyses(),
                planned,
                "devices={devices} lanes={lanes:?}: analyses must track lanes, not scenarios"
            );
        }
    }
}

proptest! {
    // Few cases: each one runs several full interior-point solves.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// At 1 device / 1 lane the fleet is bitwise identical to the
    /// sequential `solve_with_cache` loop it replaces: one shared cache,
    /// each solve warm-started from the previous primal/dual point.
    #[test]
    fn fleet_at_one_lane_is_bitwise_identical_to_sequential_cache_loop(
        seed in 0u64..1000,
        k in 1usize..4,
        sigma in 0.005f64..0.03,
    ) {
        let set = ScenarioSet::perturbed_loads(gridsim_grid::cases::case9(), k, sigma, seed);
        let nets = set.networks().unwrap();
        let engine = Engine::with_pool(DevicePool::parallel(1)).with_lanes(1);
        let fleet = IpmFleetSolver::with_engine(condensed_options(), engine).run(FleetRequest::over(&nets));
        prop_assert_eq!(fleet.results.len(), k);
        prop_assert_eq!(fleet.lanes, 1);

        let mut cache = KktCache::new();
        let mut warm_x: Option<Vec<f64>> = None;
        let mut warm_lambda: Option<Vec<f64>> = None;
        let mut warm_z: Option<(Vec<f64>, Vec<f64>)> = None;
        for (i, net) in nets.iter().enumerate() {
            let nlp = AcopfNlp::new(net);
            let mut options = condensed_options();
            options.initial_point = warm_x.take();
            options.initial_multipliers = warm_lambda.take();
            options.initial_bound_multipliers = warm_z.take();
            let reference = IpmSolver::new(options).solve_with_cache(&nlp, &mut cache);

            let r = &fleet.results[i].report;
            prop_assert_eq!(r.status, reference.status, "scenario {}", i);
            prop_assert_eq!(r.iterations, reference.iterations);
            prop_assert_eq!(r.factorizations, reference.factorizations);
            prop_assert_eq!(r.symbolic_analyses, reference.symbolic_analyses);
            prop_assert_eq!(r.objective.to_bits(), reference.objective.to_bits());
            prop_assert_eq!(r.x.len(), reference.x.len());
            for (a, b) in r.x.iter().zip(&reference.x) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in r.lambda_eq.iter().zip(&reference.lambda_eq) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }

            warm_x = Some(reference.x.clone());
            warm_lambda = Some(
                reference
                    .lambda_eq
                    .iter()
                    .chain(reference.lambda_ineq.iter())
                    .copied()
                    .collect(),
            );
            warm_z = Some((reference.zl.clone(), reference.zu.clone()));
        }
        // One lane, one chain, one analysis.
        prop_assert_eq!(cache.symbolic_analyses(), 1);
        prop_assert_eq!(fleet.symbolic_analyses(), 1);
    }

    /// Across device counts and lane caps the fleet stays report-identical
    /// to solver tolerance: which lane a scenario streams through decides
    /// its warm start (so iterates differ bitwise), but every scenario
    /// converges to the same optimum and the analysis count tracks the
    /// configuration's lanes.
    #[test]
    fn fleet_reports_are_invariant_across_device_and_lane_choices(
        seed in 0u64..1000,
        k in 2usize..5,
        devices in 1usize..4,
        lanes in 1usize..3,
    ) {
        let set = ScenarioSet::perturbed_loads(gridsim_grid::cases::case9(), k, 0.02, seed);
        let nets = set.networks().unwrap();
        let reference = IpmFleetSolver::with_engine(
            condensed_options(),
            Engine::with_pool(DevicePool::parallel(1)).with_lanes(1),
        )
        .run(FleetRequest::over(&nets));
        prop_assert!(reference.all_optimal());

        let engine = Engine::with_pool(DevicePool::parallel(devices)).with_lanes(lanes);
        let fleet = IpmFleetSolver::with_engine(condensed_options(), engine).run(FleetRequest::over(&nets));
        prop_assert!(fleet.all_optimal(), "devices={} lanes={}", devices, lanes);
        prop_assert_eq!(fleet.lanes, plan::total_lanes(k, devices, Some(lanes)));
        prop_assert_eq!(fleet.symbolic_analyses(), fleet.lanes);
        for (a, b) in fleet.results.iter().zip(&reference.results) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.report.status, b.report.status);
            let gap = (a.report.objective - b.report.objective).abs()
                / b.report.objective.abs().max(1.0);
            prop_assert!(gap < 1e-6, "{}: objective gap {}", a.name, gap);
            prop_assert!(a.quality.max_violation() < 1e-5);
        }
    }
}

/// Release-gated acceptance check on a registry-scale case: an
/// interior-point fleet over K scenarios of a ~300-bus Table-I stand-in
/// pays `symbolic_analyses == lanes`, not one per scenario. (Interior-point
/// solves at this size are too slow for the debug suite.)
#[cfg(not(debug_assertions))]
#[test]
fn registry_small_fleet_pays_one_analysis_per_lane() {
    use gridsim_bench::{BenchCase, Scale};
    let bc = BenchCase::all(Scale::Small)
        .into_iter()
        .find(|bc| bc.source == TableICase::Pegase2869)
        .expect("registry holds the 2869-bus stand-in");
    let set = ScenarioSet::load_ramp(bc.case.clone(), 3, 0.99, 1.01);
    let nets = set.networks().unwrap();
    let engine = Engine::with_pool(DevicePool::parallel(2)).with_lanes(1);
    let fleet =
        IpmFleetSolver::with_engine(condensed_options(), engine).run(FleetRequest::over(&nets));
    assert_eq!(fleet.results.len(), 3);
    assert_eq!(fleet.lanes, 2);
    assert_eq!(
        fleet.symbolic_analyses(),
        fleet.lanes,
        "fleet must pay per lane, not per scenario"
    );
    assert!(fleet.factorizations() > fleet.symbolic_analyses());
    eprintln!(
        "registry fleet: {} scenarios, {} lanes, {} symbolic analyses, {} factorizations, {:.2}s",
        fleet.results.len(),
        fleet.lanes,
        fleet.symbolic_analyses(),
        fleet.factorizations(),
        fleet.solve_time.as_secs_f64()
    );
}
