//! Workspace-level entry point for the backend conformance suite.
//!
//! The harness itself lives in `gridsim_batch::conformance` so backend
//! authors can run it from unit tests while a backend is still private;
//! this suite re-runs it through the public `Device` API for every
//! shipped backend — plus the `Auto`-resolved device, so whatever mode
//! `GRIDSIM_BACKEND` (or the core count) selects on this machine is the
//! mode that gets certified in CI.

use gridsim_batch::conformance::assert_device_conformance;
use gridsim_batch::{Device, ExecutionMode};

#[test]
fn sequential_device_conforms() {
    assert_device_conformance(&Device::sequential());
}

#[test]
fn parallel_device_conforms() {
    assert_device_conformance(&Device::parallel());
}

#[test]
fn vectorized_device_conforms() {
    assert_device_conformance(&Device::vectorized());
}

/// The device the rest of the workspace constructs by default: `Auto`,
/// resolved through the `GRIDSIM_BACKEND` override and the worker count.
/// This is the test the CI backend matrix sweeps.
#[test]
fn auto_resolved_device_conforms() {
    let device = Device::auto();
    assert_ne!(device.backend(), ExecutionMode::Auto, "auto must resolve");
    assert_eq!(device.backend(), ExecutionMode::Auto.resolve());
    assert_device_conformance(&device);
}
