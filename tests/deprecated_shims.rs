//! Pins the deprecated fleet entry points: each `solve`/`solve_with_store`
//! shim must keep compiling (with a deprecation warning, silenced here) and
//! must delegate to `run(FleetRequest)` with identical results.
#![allow(deprecated)]

use gridadmm::prelude::*;
use gridsim_engine::FleetRequest;
use gridsim_grid::cases;
use gridsim_ipm::{IpmFleetSolver, IpmOptions, IpmWarmStart};
use gridsim_store::SolutionStore;

fn nets() -> Vec<Network> {
    ScenarioSet::load_ramp(cases::case9(), 3, 0.97, 1.03)
        .networks()
        .unwrap()
}

#[test]
fn scenario_batch_solve_matches_run() {
    let nets = nets();
    let old = ScenarioBatch::new(AdmmParams::test_profile()).solve(&nets);
    let new = ScenarioBatch::new(AdmmParams::test_profile()).run(FleetRequest::over(&nets));
    assert_eq!(old.results.len(), new.results.len());
    for (a, b) in old.results.iter().zip(&new.results) {
        assert_eq!(a.status, b.status);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    }
}

#[test]
fn scenario_scheduler_solve_and_solve_with_store_match_run() {
    let nets = nets();
    let old = ScenarioScheduler::new(AdmmParams::test_profile()).solve(&nets);
    let new = ScenarioScheduler::new(AdmmParams::test_profile()).run(FleetRequest::over(&nets));
    for (a, b) in old.results.iter().zip(&new.results) {
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    }

    let mut store_old = SolutionStore::new();
    let mut store_new = SolutionStore::new();
    let old = ScenarioScheduler::new(AdmmParams::test_profile()).solve_with_store(
        "case9",
        &nets,
        &mut store_old,
    );
    let new = ScenarioScheduler::new(AdmmParams::test_profile()).run(
        FleetRequest::over(&nets)
            .case("case9")
            .store(&mut store_new),
    );
    for (a, b) in old.results.iter().zip(&new.results) {
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    }
    assert_eq!(store_old.len(), store_new.len());
}

#[test]
fn ipm_fleet_solve_and_solve_with_store_match_run() {
    let nets = nets();
    let old = IpmFleetSolver::new(IpmOptions::default()).solve(&nets);
    let new = IpmFleetSolver::new(IpmOptions::default()).run(FleetRequest::over(&nets));
    for (a, b) in old.results.iter().zip(&new.results) {
        assert_eq!(a.report.objective.to_bits(), b.report.objective.to_bits());
    }

    let mut store_old: SolutionStore<IpmWarmStart> = SolutionStore::new();
    let mut store_new: SolutionStore<IpmWarmStart> = SolutionStore::new();
    let old =
        IpmFleetSolver::new(IpmOptions::default()).solve_with_store("case9", &nets, &mut store_old);
    let new = IpmFleetSolver::new(IpmOptions::default()).run(
        FleetRequest::over(&nets)
            .case("case9")
            .store(&mut store_new),
    );
    for (a, b) in old.results.iter().zip(&new.results) {
        assert_eq!(a.report.objective.to_bits(), b.report.objective.to_bits());
    }
    assert_eq!(store_old.len(), store_new.len());
}
