//! Warm-start tracking example (the scenario of Section IV-C): follow the
//! optimal dispatch of a grid over a 10-minute horizon while the load drifts,
//! warm-starting every period from the previous one with generator ramp
//! limits.
//!
//! ```text
//! cargo run --release --example warm_start_tracking
//! ```

use gridsim_admm::{track_horizon, TrackingConfig};
use gridsim_grid::{cases, LoadProfile};

fn main() {
    // The IEEE-14-style embedded case and a 10-period load window drifting
    // by up to 3 %.
    let case = cases::case14();
    let profile = LoadProfile::paper_window(7, 10, 0.03);
    println!(
        "tracking {} over {} one-minute periods (max drift {:.1}%)",
        case.name,
        profile.len(),
        100.0 * profile.max_drift()
    );

    let config = TrackingConfig::default();
    let (periods, last) = track_horizon(&case, &profile, &config);

    println!("period  load     time(ms)  cum(ms)  iterations  ||c||_inf     $/hr");
    for p in &periods {
        println!(
            "{:>6}  {:.4}  {:>8.1}  {:>7.1}  {:>10}  {:>9.2e}  {:>9.2}",
            p.period,
            p.load_multiplier,
            p.solve_time.as_secs_f64() * 1e3,
            p.cumulative_time.as_secs_f64() * 1e3,
            p.inner_iterations,
            p.max_violation,
            p.objective
        );
    }

    let cold = &periods[0];
    let warm_avg_ms = periods[1..]
        .iter()
        .map(|p| p.solve_time.as_secs_f64() * 1e3)
        .sum::<f64>()
        / (periods.len() - 1) as f64;
    println!(
        "\ncold start: {:.1} ms; warm-started periods: {:.1} ms on average ({:.1}x faster)",
        cold.solve_time.as_secs_f64() * 1e3,
        warm_avg_ms,
        cold.solve_time.as_secs_f64() * 1e3 / warm_avg_ms.max(1e-9)
    );
    println!(
        "final dispatch: {:?} (p.u.)",
        last.solution
            .pg
            .iter()
            .map(|p| (p * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
}
