//! Warm-start tracking example (the scenario of Section IV-C): follow the
//! optimal dispatch of a grid over a 10-minute horizon while the load drifts,
//! warm-starting every period from the previous one with generator ramp
//! limits.
//!
//! Both solver families track the horizon: the paper's ADMM (whose warm
//! starts are the headline result) and the interior-point reference under
//! `KktStrategy::Condensed` with a **horizon-wide `KktCache`** — every
//! period re-solves the same network structure, so the whole reference
//! trajectory costs O(1) symbolic analyses (the unit-multiplier probe,
//! plus at most a rare growth rebuild when an iterate reveals a pattern
//! coordinate the probe pruned) and each Newton step is a numeric-only
//! refactorization. The full-KKT path would instead pay one analysis per
//! factorization — 140 for this horizon.
//!
//! ```text
//! cargo run --release --example warm_start_tracking
//! ```

use gridadmm::prelude::*;
use gridsim_acopf::start::ramp_limited_bounds;
use gridsim_admm::{track_horizon, TrackingConfig};
use gridsim_engine::FleetRequest;
use gridsim_grid::cases;

fn main() {
    // The IEEE-14-style embedded case and a 10-period load window drifting
    // by up to 3 %.
    let case = cases::case14();
    let profile = LoadProfile::paper_window(7, 10, 0.03);
    println!(
        "tracking {} over {} one-minute periods (max drift {:.1}%)",
        case.name,
        profile.len(),
        100.0 * profile.max_drift()
    );

    let config = TrackingConfig::default();
    let (periods, last) = track_horizon(&case, &profile, &config);

    println!("\nADMM (warm-started from the previous period, 2% ramp limits):");
    println!("period  load     time(ms)  cum(ms)  iterations  ||c||_inf     $/hr");
    for p in &periods {
        println!(
            "{:>6}  {:.4}  {:>8.1}  {:>7.1}  {:>10}  {:>9.2e}  {:>9.2}",
            p.period,
            p.load_multiplier,
            p.solve_time.as_secs_f64() * 1e3,
            p.cumulative_time.as_secs_f64() * 1e3,
            p.inner_iterations,
            p.max_violation,
            p.objective
        );
    }

    let cold = &periods[0];
    let warm_avg_ms = periods[1..]
        .iter()
        .map(|p| p.solve_time.as_secs_f64() * 1e3)
        .sum::<f64>()
        / (periods.len() - 1) as f64;
    println!(
        "cold start: {:.1} ms; warm-started periods: {:.1} ms on average ({:.1}x faster)",
        cold.solve_time.as_secs_f64() * 1e3,
        warm_avg_ms,
        cold.solve_time.as_secs_f64() * 1e3 / warm_avg_ms.max(1e-9)
    );

    // --- the interior-point reference on the same horizon ---
    // One cache for all periods: the condensed pattern is identical across
    // the horizon, so the symbolic analysis is paid exactly once.
    let mut cache = KktCache::new();
    let mut prev: Option<(Vec<f64>, Vec<f64>)> = None; // (x, pg)
    println!("\nIPM reference (condensed KKT, horizon-wide cache):");
    println!("period  time(ms)  iterations  factorizations  cum. symbolic");
    for (t, &mult) in profile.multipliers.iter().enumerate() {
        let net_t = case.scale_load(mult).compile().expect("case compiles");
        let nlp = match &prev {
            Some((_, prev_pg)) => {
                let (lo, hi) = ramp_limited_bounds(&net_t, prev_pg, config.ramp_fraction);
                AcopfNlp::new(&net_t).with_pg_bounds(lo, hi)
            }
            None => AcopfNlp::new(&net_t),
        };
        let report = IpmSolver::new(IpmOptions {
            kkt_strategy: KktStrategy::Condensed,
            initial_point: prev.as_ref().map(|(x, _)| x.clone()),
            ..Default::default()
        })
        .solve_with_cache(&nlp, &mut cache);
        println!(
            "{:>6}  {:>8.1}  {:>10}  {:>14}  {:>13}",
            t,
            report.solve_time.as_secs_f64() * 1e3,
            report.iterations,
            report.factorizations,
            cache.symbolic_analyses()
        );
        let pg = nlp.to_solution(&report.x).pg;
        prev = Some((report.x, pg));
    }
    println!(
        "symbolic analyses over {} periods: {} (the full-KKT path would pay \
         one per factorization, i.e. {}); numeric refactorizations: {}",
        profile.len(),
        cache.symbolic_analyses(),
        cache.numeric_refactorizations(),
        cache.numeric_refactorizations()
    );

    // --- the same horizon through the warm-start solution store ---
    // One `SolutionStore` threaded across the periods: every period's
    // fleet looks up the nearest previously solved load vector (an earlier
    // period, since the load only drifts) and seeds from it — primal point,
    // constraint multipliers, and bound multipliers, so the solve resumes
    // the barrier trajectory instead of descending from scratch. Each
    // converged period is committed back for the periods after it.
    let mut store: SolutionStore<IpmWarmStart> = SolutionStore::new();
    let mut stats = StoreRunStats::default();
    let mut stored_iterations = 0usize;
    let mut cold_iterations = 0usize;
    let fleet = IpmFleetSolver::new(IpmOptions {
        kkt_strategy: KktStrategy::Condensed,
        ..Default::default()
    });
    println!("\nIPM through the solution store (threaded across the horizon):");
    println!("period  store     iterations  cold iters");
    for (t, &mult) in profile.multipliers.iter().enumerate() {
        let net_t = case.scale_load(mult).compile().expect("case compiles");
        let cold = IpmSolver::new(IpmOptions {
            kkt_strategy: KktStrategy::Condensed,
            ..Default::default()
        })
        .solve(&AcopfNlp::new(&net_t));
        cold_iterations += cold.iterations;
        let report = fleet.run(
            FleetRequest::over(std::slice::from_ref(&net_t))
                .case(&case.name)
                .store(&mut store),
        );
        stats.merge(&report.store);
        let iters = report.total_iterations();
        stored_iterations += iters;
        println!(
            "{:>6}  {:>8}  {:>10}  {:>10}",
            t,
            if report.store.hits > 0 { "hit" } else { "miss" },
            iters,
            cold.iterations
        );
    }
    println!(
        "store over {} periods: {:.0}% hit rate, {} entries; cumulative \
         iterations {} vs {} cold ({:.1}% saved)",
        profile.len(),
        stats.hit_rate() * 100.0,
        store.len(),
        stored_iterations,
        cold_iterations,
        100.0 * (1.0 - stored_iterations as f64 / cold_iterations.max(1) as f64)
    );

    println!(
        "\nfinal ADMM dispatch: {:?} (p.u.)",
        last.solution
            .pg
            .iter()
            .map(|p| (p * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
}
