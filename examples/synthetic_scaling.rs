//! Scaling example: generate pegase/ACTIVSg-like synthetic grids of growing
//! size (the structure of the paper's Table I cases) and watch how the ADMM
//! solver's iteration count and wall-clock time scale with the number of
//! components, while the per-subproblem size stays constant.
//!
//! ```text
//! cargo run --release --example synthetic_scaling
//! ```

use gridsim_admm::{AdmmParams, AdmmSolver};
use gridsim_grid::TableICase;

fn main() {
    // Proportionally scaled stand-ins for the first Table I case, growing
    // from 100 to 800 buses.
    let sizes = [100usize, 200, 400, 800];
    println!("  buses  branches  generators  constraints  iterations   time(ms)  ||c||_inf");
    for &nbus in &sizes {
        let case = TableICase::Pegase1354.scaled(nbus);
        let net = case.compile().expect("synthetic case compiles");
        let solver = AdmmSolver::new(AdmmParams::default());
        let result = solver.solve(&net);
        println!(
            "{:>7}  {:>8}  {:>10}  {:>11}  {:>10}  {:>9.1}  {:>9.2e}",
            net.nbus,
            net.nbranch,
            net.ngen,
            2 * net.ngen + 8 * net.nbranch,
            result.inner_iterations,
            result.solve_time.as_secs_f64() * 1e3,
            result.quality.max_violation()
        );
    }
    println!(
        "\nEach branch subproblem stays a 6-variable TRON solve regardless of grid size;\n\
         only the number of simulated thread blocks grows — the scalability argument of\n\
         Section III-A of the paper."
    );
}
