//! Multi-scenario batching: solve a fleet of load/contingency scenarios of
//! one network through a single batched ADMM driver, then compare against
//! solving them one at a time.
//!
//! Run with:
//! ```text
//! cargo run --release --example scenario_batch
//! ```

use gridsim_admm::{AdmmParams, AdmmSolver, ScenarioBatch, ScenarioScheduler};
use gridsim_batch::DevicePool;
use gridsim_engine::FleetRequest;
use gridsim_grid::cases;
use gridsim_grid::scenario::ScenarioSet;

fn main() {
    // 1. Build a scenario set over the embedded 9-bus case: a load ramp,
    //    random per-bus perturbations, and N−1 branch outages (bridges are
    //    skipped automatically — outaging one would island a generator).
    let base = cases::case9();
    let mut set = ScenarioSet::load_ramp(base.clone(), 3, 0.95, 1.05);
    set.extend(ScenarioSet::perturbed_loads(base.clone(), 2, 0.03, 42));
    set.extend(ScenarioSet::branch_outages(base.clone(), 3));
    let nets = set.networks().expect("scenario cases compile");
    println!(
        "scenario set on {}: {} scenarios ({} buses, {} branches each)",
        base.name,
        nets.len(),
        nets[0].nbus,
        nets[0].nbranch
    );

    // 2. Solve the whole fleet in one batched run: every kernel launch spans
    //    all still-active scenarios, and converged scenarios are masked out.
    let batcher = ScenarioBatch::new(AdmmParams::default());
    let batch = batcher.run(FleetRequest::over(&nets));
    println!(
        "\nbatched solve: {} ticks for {} total inner iterations, {:.2} ms",
        batch.ticks,
        batch.total_inner_iterations(),
        batch.solve_time.as_secs_f64() * 1e3
    );
    println!(
        "  {:<22} {:>9} {:>7} {:>12} {:>11}",
        "scenario", "objective", "iters", "violation", "status"
    );
    for r in &batch.results {
        println!(
            "  {:<22} {:>9.2} {:>7} {:>12.3e} {:>11?}",
            r.name,
            r.objective,
            r.inner_iterations,
            r.quality.max_violation(),
            r.status
        );
    }

    // 3. The same fleet solved sequentially, one AdmmSolver::solve per
    //    scenario — identical numerics (bitwise), K× the kernel launches.
    let solver = AdmmSolver::new(AdmmParams::default());
    let mut seq_ms = 0.0;
    let mut identical = true;
    for (net, batched) in nets.iter().zip(&batch.results) {
        let single = solver.solve(net);
        seq_ms += single.solve_time.as_secs_f64() * 1e3;
        identical &=
            single.solution.pg == batched.solution.pg && single.solution.vm == batched.solution.vm;
    }
    println!(
        "\nsequential solves: {seq_ms:.2} ms total; batched results bitwise identical: {identical}"
    );
    let batch_launches = batcher.device.stats().snapshot().total_launches();
    let seq_launches = solver.device.stats().snapshot().total_launches();
    println!(
        "kernel launches: {batch_launches} batched vs {seq_launches} sequential ({:.1}x amortization)",
        seq_launches as f64 / batch_launches.max(1) as f64
    );

    // 4. Warm-start chaining: seed each scenario from its predecessor along
    //    the ramp (ramp-limited), the tracking-style alternative for ordered
    //    scenario sweeps.
    let ramp = ScenarioSet::load_ramp(base.clone(), 4, 1.0, 1.03);
    let ramp_nets = ramp.networks().expect("ramp cases compile");
    let nominal = solver.solve(&ramp_nets[0]);
    let chained = batcher.solve_chained(&ramp_nets, &nominal.warm_state, 0.05);
    let cold = batcher.run(FleetRequest::over(&ramp_nets));
    println!(
        "\nwarm-start chaining along the ramp: {} inner iterations vs {} cold",
        chained.total_inner_iterations(),
        cold.total_inner_iterations()
    );

    // 5. The multi-device engine: shard the fleet across two logical devices
    //    with two slots each — scenarios stream into freed slots as earlier
    //    ones converge, results stay bitwise identical to the single batch,
    //    and each device bills its kernel work to its own stats stream.
    let scheduler =
        ScenarioScheduler::with_pool(AdmmParams::default(), DevicePool::parallel(2)).with_lanes(2);
    let sched = scheduler.run(FleetRequest::over(&nets));
    let same = sched
        .results
        .iter()
        .zip(&batch.results)
        .all(|(a, b)| a.solution.pg == b.solution.pg && a.solution.vm == b.solution.vm);
    println!(
        "\nscheduler on 2 devices x 2 lanes: {} ticks (longest device), bitwise identical: {same}",
        sched.ticks
    );
    for (d, snap) in scheduler.pool.snapshots().iter().enumerate() {
        println!(
            "  device {d}: {} launches, {} blocks, {:.2} ms busy",
            snap.total_launches(),
            snap.total_blocks(),
            snap.kernel_elapsed().as_secs_f64() * 1e3
        );
    }
}
