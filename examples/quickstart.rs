//! Quickstart: solve an ACOPF case with the GPU-style ADMM solver and compare
//! the result against the centralized interior-point baseline.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use gridsim_acopf::violations::relative_gap;
use gridsim_admm::{AdmmParams, AdmmSolver};
use gridsim_grid::cases;
use gridsim_ipm::{AcopfNlp, IpmOptions, IpmSolver};

fn main() {
    // 1. Load a case (embedded 9-bus system; MATPOWER files and synthetic
    //    Table-I-scale cases work the same way).
    let case = cases::case9();
    let net = case.compile().expect("case compiles");
    println!(
        "case {}: {} buses, {} branches, {} generators",
        net.name, net.nbus, net.nbranch, net.ngen
    );

    // 2. Solve with the component-based two-level ADMM (the paper's method).
    let admm = AdmmSolver::new(AdmmParams::default());
    let result = admm.solve(&net);
    println!(
        "ADMM:  status {:?}, {} inner iterations ({} outer), {:.2} ms",
        result.status,
        result.inner_iterations,
        result.outer_iterations,
        result.solve_time.as_secs_f64() * 1e3
    );
    println!(
        "       objective {:.2} $/hr, max violation {:.3e}, ||z||_inf {:.3e}",
        result.objective,
        result.quality.max_violation(),
        result.z_inf
    );

    // 3. Solve the same case with the interior-point baseline (Ipopt
    //    stand-in) and report the relative objective gap.
    let nlp = AcopfNlp::new(&net);
    let ipm = IpmSolver::new(IpmOptions::default()).solve(&nlp);
    println!(
        "IPM:   status {:?}, {} iterations, {} factorizations, {:.2} ms, objective {:.2} $/hr",
        ipm.status,
        ipm.iterations,
        ipm.factorizations,
        ipm.solve_time.as_secs_f64() * 1e3,
        ipm.objective
    );
    println!(
        "relative objective gap |f - f*| / f* = {:.3} %",
        100.0 * relative_gap(result.objective, ipm.objective)
    );

    // 4. Inspect the kernel-launch statistics of the simulated GPU device.
    let stats = admm.device.stats().snapshot();
    println!("device kernel launches: {}", stats.total_launches());
    println!(
        "host->device transfers: {}, device->host transfers: {}",
        stats.host_to_device_transfers, stats.device_to_host_transfers
    );
}
