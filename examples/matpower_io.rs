//! MATPOWER interoperability example: write one of the embedded cases to a
//! MATPOWER `.m` file, read it back, and solve it — the same path a user
//! takes to run the solver on the real pegase / ACTIVSg case files the paper
//! evaluates on.
//!
//! ```text
//! cargo run --release --example matpower_io [path/to/case.m]
//! ```

use gridsim_admm::{AdmmParams, AdmmSolver};
use gridsim_grid::{cases, matpower};
use std::path::PathBuf;

fn main() {
    let arg_path = std::env::args().nth(1).map(PathBuf::from);
    let case = match &arg_path {
        Some(path) => {
            println!("reading MATPOWER case from {}", path.display());
            matpower::read_case(path).expect("failed to parse MATPOWER file")
        }
        None => {
            // No file given: round-trip the embedded 14-bus case through the
            // MATPOWER format to demonstrate the writer and parser.
            let original = cases::case14();
            let text = matpower::write_case(&original);
            let tmp = std::env::temp_dir().join("gridadmm_case14.m");
            std::fs::write(&tmp, &text).expect("write temp case");
            println!(
                "no case file given; wrote embedded case14 to {}",
                tmp.display()
            );
            matpower::read_case(&tmp).expect("round-trip parse")
        }
    };

    let net = case.compile().expect("case must compile");
    println!(
        "case {}: {} buses, {} branches, {} generators, total load {:.1} MW",
        net.name,
        net.nbus,
        net.nbranch,
        net.ngen,
        net.total_pd() * net.base_mva
    );

    let solver = AdmmSolver::new(AdmmParams::default());
    let result = solver.solve(&net);
    println!(
        "ADMM finished: {:?} after {} inner iterations in {:.1} ms",
        result.status,
        result.inner_iterations,
        result.solve_time.as_secs_f64() * 1e3
    );
    println!(
        "objective {:.2} $/hr, max constraint violation {:.2e}",
        result.objective,
        result.quality.max_violation()
    );
    println!(
        "dispatch (MW): {:?}",
        result
            .solution
            .pg
            .iter()
            .map(|p| (p * net.base_mva).round())
            .collect::<Vec<_>>()
    );
}
