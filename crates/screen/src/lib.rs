//! # gridsim-screen
//!
//! Hierarchical contingency screening: a two-tier funnel that makes
//! thousand-scenario N−k sweeps cost attrition-proportional wall-clock
//! instead of flat solve-everything wall-clock.
//!
//! A flat sweep spends the same full-tolerance effort on every scenario,
//! although in a realistic contingency set almost all scenarios are benign.
//! The funnel instead runs every scenario through a *cheap pass* — the
//! few-iteration, loose-tolerance [`AdmmParams::screening_profile`] batched
//! through the ordinary fleet machinery — and ranks each scenario by its
//! *constraint margin* (worst line / voltage / generator-bound violation of
//! the screening operating point, see [`constraint_margin`]) into three
//! bands:
//!
//! * [`Band::Benign`] — margin at or below the benign threshold: certified
//!   cheap, never solved again,
//! * [`Band::Violating`] — margin at or above the violating threshold:
//!   clearly stressed,
//! * [`Band::Uncertain`] — in between: the screen cannot certify either way.
//!
//! `Violating ∪ Uncertain` *graduate* to the full-tolerance tier (batched
//! ADMM or the condensed-KKT interior-point fleet), seeded with their own
//! screening solutions through a [`SolutionStore`] snapshot so the second
//! tier starts warm from the point the screen already paid for.
//!
//! ## Determinism
//!
//! The screening tier is the batched ADMM engine, which is bitwise
//! deterministic across device counts, lane caps, and backends — so the
//! margins, the bands, and therefore the graduation set are identical for
//! every engine configuration. The full ADMM tier inherits the same
//! property. The IPM tier warm-chains within lanes (so lane assignment
//! normally matters), but here every graduated scenario is seeded from its
//! *own* screening solution at store distance 0, which beats any intra-lane
//! chain under the store's strict-improvement rule — making the starting
//! points, and the solves, independent of the engine configuration as well.
//!
//! The margin deliberately *excludes* the power-balance mismatches: at
//! screening tolerances those measure how incomplete the solve is, not how
//! stressed the system is, and would drown the constraint signal.

use gridsim_acopf::violations::SolutionQuality;
use gridsim_admm::scenario::{ScenarioBatchResult, ScenarioScheduler};
use gridsim_admm::{AdmmParams, WarmState};
use gridsim_batch::DevicePool;
use gridsim_engine::{Engine, FleetRequest};
use gridsim_grid::network::Network;
use gridsim_ipm::{AcopfNlp, FleetReport, IpmFleetSolver, IpmOptions, IpmWarmStart, KktStrategy};
use gridsim_store::{ScenarioFingerprint, SolutionStore};
use std::time::Duration;

/// Screening band of one contingency scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Band {
    /// Margin at or below the benign threshold: certified by the screen,
    /// not solved further.
    Benign,
    /// Margin between the thresholds: the screen cannot certify, graduates.
    Uncertain,
    /// Margin at or above the violating threshold: stressed, graduates.
    Violating,
}

/// Which solver family runs the full-tolerance tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FullTier {
    /// Full-tolerance batched ADMM.
    Admm,
    /// Condensed-KKT interior-point fleet.
    Ipm,
}

/// Configuration of a [`ContingencyFunnel`].
#[derive(Debug, Clone)]
pub struct FunnelConfig {
    /// Parameters of the cheap screening pass.
    pub screening: AdmmParams,
    /// Parameters of the full ADMM tier (used when `tier` is
    /// [`FullTier::Admm`]).
    pub full: AdmmParams,
    /// Options of the interior-point tier (used when `tier` is
    /// [`FullTier::Ipm`]).
    pub ipm: IpmOptions,
    /// Solver family of the full tier.
    pub tier: FullTier,
    /// Margin at or below which a scenario is [`Band::Benign`].
    pub benign_threshold: f64,
    /// Margin at or above which a scenario is [`Band::Violating`].
    pub violating_threshold: f64,
}

impl Default for FunnelConfig {
    fn default() -> Self {
        FunnelConfig {
            screening: AdmmParams::screening_profile(),
            full: AdmmParams::default(),
            ipm: IpmOptions {
                kkt_strategy: KktStrategy::Condensed,
                ..Default::default()
            },
            tier: FullTier::Admm,
            benign_threshold: DEFAULT_BENIGN_THRESHOLD,
            violating_threshold: DEFAULT_VIOLATING_THRESHOLD,
        }
    }
}

/// Default benign threshold: the screening profile's operating points land
/// well under this margin on unstressed registry scenarios, and a genuine
/// limit violation cannot hide under it (see the release-gated
/// no-false-negative guard in `tests/contingency_funnel.rs`).
pub const DEFAULT_BENIGN_THRESHOLD: f64 = 2e-2;

/// Default violating threshold: above this screening margin a scenario is
/// stressed beyond what screening inaccuracy can explain.
pub const DEFAULT_VIOLATING_THRESHOLD: f64 = 1e-1;

impl FunnelConfig {
    /// Validate the threshold invariants (finite, non-negative, ordered).
    pub fn validate(&self) -> Result<(), String> {
        if !self.benign_threshold.is_finite() || self.benign_threshold < 0.0 {
            return Err(format!(
                "benign threshold {} must be finite and non-negative",
                self.benign_threshold
            ));
        }
        if !self.violating_threshold.is_finite() {
            return Err(format!(
                "violating threshold {} must be finite",
                self.violating_threshold
            ));
        }
        if self.benign_threshold >= self.violating_threshold {
            return Err(format!(
                "benign threshold {} must be below violating threshold {}",
                self.benign_threshold, self.violating_threshold
            ));
        }
        Ok(())
    }

    /// Band of a screening margin under this config's thresholds.
    pub fn band_of(&self, margin: f64) -> Band {
        if margin <= self.benign_threshold {
            Band::Benign
        } else if margin >= self.violating_threshold {
            Band::Violating
        } else {
            Band::Uncertain
        }
    }
}

/// The constraint-stress margin of an operating point: the worst line,
/// voltage, or generator-bound violation. Power-balance mismatches are
/// deliberately excluded — at screening tolerances they measure solver
/// incompleteness, not system stress.
pub fn constraint_margin(q: &SolutionQuality) -> f64 {
    q.max_line_violation
        .max(q.max_voltage_violation)
        .max(q.max_gen_bound_violation)
}

/// One scenario's screening verdict.
#[derive(Debug, Clone)]
pub struct ScreenedScenario {
    /// Scenario name (from its network).
    pub name: String,
    /// Screening constraint margin (see [`constraint_margin`]).
    pub margin: f64,
    /// Band under the funnel's thresholds.
    pub band: Band,
}

/// Results of the full-tolerance tier.
#[derive(Debug, Clone)]
pub enum FullResults {
    /// Nothing graduated; every scenario was certified by the screen.
    None,
    /// Full-tier batched ADMM results over the graduated scenarios, in
    /// graduation order.
    Admm(ScenarioBatchResult),
    /// Interior-point fleet results over the graduated scenarios, in
    /// graduation order.
    Ipm(FleetReport),
}

/// Outcome of one funnel run.
#[derive(Debug, Clone)]
pub struct FunnelReport {
    /// Per-scenario screening verdicts, in input order.
    pub screened: Vec<ScreenedScenario>,
    /// Input indices of the graduated (`Violating ∪ Uncertain`) scenarios,
    /// ascending.
    pub graduated: Vec<usize>,
    /// The screening tier's batch result, in input order.
    pub screening: ScenarioBatchResult,
    /// The full tier's results over the graduated scenarios.
    pub full: FullResults,
}

impl FunnelReport {
    /// Number of scenarios in a band.
    pub fn band_count(&self, band: Band) -> usize {
        self.screened.iter().filter(|s| s.band == band).count()
    }

    /// Fraction of scenarios that graduated to the full tier.
    pub fn graduation_rate(&self) -> f64 {
        if self.screened.is_empty() {
            0.0
        } else {
            self.graduated.len() as f64 / self.screened.len() as f64
        }
    }

    /// Wall-clock of the screening tier.
    pub fn screen_time(&self) -> Duration {
        self.screening.solve_time
    }

    /// Wall-clock of the full tier (zero when nothing graduated).
    pub fn full_time(&self) -> Duration {
        match &self.full {
            FullResults::None => Duration::ZERO,
            FullResults::Admm(b) => b.solve_time,
            FullResults::Ipm(r) => r.solve_time,
        }
    }

    /// Position of input scenario `idx` within the graduated set, if it
    /// graduated.
    pub fn full_index_of(&self, idx: usize) -> Option<usize> {
        self.graduated.binary_search(&idx).ok()
    }

    /// The final solution quality of input scenario `idx`: the full tier's
    /// if it graduated, otherwise the screening tier's (the screen *is*
    /// the final word on a benign scenario).
    pub fn final_quality(&self, idx: usize) -> &SolutionQuality {
        match self.full_index_of(idx) {
            Some(g) => match &self.full {
                FullResults::Admm(b) => &b.results[g].quality,
                FullResults::Ipm(r) => &r.results[g].quality,
                FullResults::None => unreachable!("graduated scenarios imply a full tier"),
            },
            None => &self.screening.results[idx].quality,
        }
    }
}

/// The two-tier screening funnel; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct ContingencyFunnel {
    /// Funnel configuration (profiles, tier, thresholds).
    pub config: FunnelConfig,
    /// Device pool both tiers run on.
    pool: DevicePool,
}

impl ContingencyFunnel {
    /// A funnel on the environment-configured device pool
    /// (`GRIDSIM_DEVICES` etc.).
    pub fn new(config: FunnelConfig) -> ContingencyFunnel {
        Self::with_pool(config, DevicePool::from_env())
    }

    /// A funnel on an explicit device pool (used by `gridsim-serve`, whose
    /// durability chunks run on fresh single-device pools).
    pub fn with_pool(config: FunnelConfig, pool: DevicePool) -> ContingencyFunnel {
        if let Err(e) = config.validate() {
            panic!("invalid FunnelConfig: {e}");
        }
        ContingencyFunnel { config, pool }
    }

    /// Run the funnel over `nets`: screen everything, band by margin,
    /// graduate `Violating ∪ Uncertain` to the full tier seeded from their
    /// screening solutions. `case_id` keys the internal warm-start store
    /// (any stable identifier of the base case).
    pub fn run(&self, case_id: &str, nets: &[Network]) -> FunnelReport {
        let screening =
            ScenarioScheduler::with_pool(self.config.screening.clone(), self.pool.clone())
                .run(FleetRequest::over(nets));

        let screened: Vec<ScreenedScenario> = screening
            .results
            .iter()
            .map(|r| {
                let margin = constraint_margin(&r.quality);
                ScreenedScenario {
                    name: r.name.clone(),
                    margin,
                    band: self.config.band_of(margin),
                }
            })
            .collect();
        let graduated: Vec<usize> = screened
            .iter()
            .enumerate()
            .filter(|(_, s)| s.band != Band::Benign)
            .map(|(i, _)| i)
            .collect();

        if graduated.is_empty() {
            return FunnelReport {
                screened,
                graduated,
                screening,
                full: FullResults::None,
            };
        }

        let grad_nets: Vec<Network> = graduated.iter().map(|&i| nets[i].clone()).collect();
        let full = match self.config.tier {
            FullTier::Admm => {
                // Seed every graduated scenario with its own screening warm
                // state: a distance-0 self-hit in the snapshot, so the full
                // tier's starting points are independent of lane layout.
                let mut store: SolutionStore<WarmState> = SolutionStore::new();
                for &i in &graduated {
                    let fp = ScenarioFingerprint::of_network(&nets[i]);
                    store.insert(case_id, &fp, screening.results[i].warm_state.clone());
                }
                let view = store.view();
                let batch =
                    ScenarioScheduler::with_pool(self.config.full.clone(), self.pool.clone())
                        .run(FleetRequest::over(&grad_nets).case(case_id).snapshot(&view));
                FullResults::Admm(batch)
            }
            FullTier::Ipm => {
                // Primal-only seeds: the IPM solver ignores multiplier
                // seeds whose lengths don't match, so empty multiplier
                // vectors fall back to its own initialization while the
                // primal point carries the screen's operating point over.
                let mut store: SolutionStore<IpmWarmStart> = SolutionStore::new();
                for &i in &graduated {
                    let fp = ScenarioFingerprint::of_network(&nets[i]);
                    let x = AcopfNlp::new(&nets[i]).from_solution(&screening.results[i].solution);
                    store.insert(
                        case_id,
                        &fp,
                        IpmWarmStart {
                            x,
                            lambda: Vec::new(),
                            zl: Vec::new(),
                            zu: Vec::new(),
                        },
                    );
                }
                let view = store.view();
                let solver = IpmFleetSolver::with_engine(
                    self.config.ipm.clone(),
                    Engine::with_pool(self.pool.clone()),
                );
                let report =
                    solver.run(FleetRequest::over(&grad_nets).case(case_id).snapshot(&view));
                FullResults::Ipm(report)
            }
        };

        FunnelReport {
            screened,
            graduated,
            screening,
            full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_admm::AdmmStatus;
    use gridsim_grid::cases;
    use gridsim_grid::ContingencySpec;

    fn test_config(tier: FullTier) -> FunnelConfig {
        FunnelConfig {
            full: AdmmParams::test_profile(),
            tier,
            ..Default::default()
        }
    }

    fn small_sweep() -> (String, Vec<Network>) {
        let base = cases::case9();
        let spec = ContingencySpec::load_grid(2, 0.95, 1.1)
            .perturbed(1, 0.03, 11)
            .outages(3, 0, 2);
        let set = spec.expand(&base);
        ("case9".to_string(), set.networks().unwrap())
    }

    #[test]
    fn banding_respects_thresholds() {
        let cfg = FunnelConfig::default();
        assert_eq!(cfg.band_of(0.0), Band::Benign);
        assert_eq!(cfg.band_of(cfg.benign_threshold), Band::Benign);
        assert_eq!(cfg.band_of(cfg.violating_threshold), Band::Violating);
        assert_eq!(
            cfg.band_of(0.5 * (cfg.benign_threshold + cfg.violating_threshold)),
            Band::Uncertain
        );
    }

    #[test]
    fn config_validation_orders_thresholds() {
        let mut cfg = FunnelConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.benign_threshold = cfg.violating_threshold;
        assert!(cfg.validate().is_err());
        cfg.benign_threshold = f64::NAN;
        assert!(cfg.validate().is_err());
        cfg.benign_threshold = -1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn margin_excludes_power_mismatch() {
        let q = SolutionQuality {
            max_p_mismatch: 10.0,
            max_q_mismatch: 10.0,
            max_line_violation: 0.01,
            max_voltage_violation: 0.002,
            max_gen_bound_violation: 0.0,
            objective: 0.0,
        };
        assert_eq!(constraint_margin(&q), 0.01);
    }

    #[test]
    fn funnel_screens_bands_and_graduates() {
        let (case_id, nets) = small_sweep();
        let report = ContingencyFunnel::new(test_config(FullTier::Admm)).run(&case_id, &nets);
        assert_eq!(report.screened.len(), nets.len());
        assert_eq!(
            report.band_count(Band::Benign)
                + report.band_count(Band::Uncertain)
                + report.band_count(Band::Violating),
            nets.len()
        );
        assert_eq!(
            report.graduated.len(),
            nets.len() - report.band_count(Band::Benign)
        );
        match &report.full {
            FullResults::None => assert!(report.graduated.is_empty()),
            FullResults::Admm(b) => {
                assert_eq!(b.results.len(), report.graduated.len());
                // Every graduated scenario was seeded from its own
                // screening solution: all admissions hit the snapshot.
                assert_eq!(b.store.hits, report.graduated.len());
                for r in &b.results {
                    assert_eq!(r.status, AdmmStatus::Converged);
                }
            }
            FullResults::Ipm(_) => unreachable!(),
        }
        // final_quality resolves to the right tier on both paths.
        for i in 0..nets.len() {
            let q = report.final_quality(i);
            assert!(q.objective.is_finite());
        }
    }

    #[test]
    fn ipm_tier_solves_graduated_scenarios() {
        let (case_id, nets) = small_sweep();
        let report = ContingencyFunnel::new(test_config(FullTier::Ipm)).run(&case_id, &nets);
        match &report.full {
            FullResults::Ipm(r) => {
                assert_eq!(r.results.len(), report.graduated.len());
                assert_eq!(r.store.hits, report.graduated.len());
                for res in &r.results {
                    assert!(
                        res.report.is_optimal(),
                        "{}: {:?}",
                        res.name,
                        res.report.status
                    );
                }
            }
            FullResults::None => assert!(report.graduated.is_empty()),
            FullResults::Admm(_) => unreachable!(),
        }
    }

    #[test]
    fn funnel_is_deterministic_across_runs() {
        let (case_id, nets) = small_sweep();
        let funnel = ContingencyFunnel::new(test_config(FullTier::Admm));
        let a = funnel.run(&case_id, &nets);
        let b = funnel.run(&case_id, &nets);
        assert_eq!(a.graduated, b.graduated);
        for (x, y) in a.screened.iter().zip(&b.screened) {
            assert_eq!(x.margin.to_bits(), y.margin.to_bits());
            assert_eq!(x.band, y.band);
        }
        if let (FullResults::Admm(ba), FullResults::Admm(bb)) = (&a.full, &b.full) {
            for (x, y) in ba.results.iter().zip(&bb.results) {
                assert_eq!(x.objective.to_bits(), y.objective.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid FunnelConfig")]
    fn bad_thresholds_panic_at_construction() {
        let cfg = FunnelConfig {
            violating_threshold: 0.0,
            ..Default::default()
        };
        let _ = ContingencyFunnel::new(cfg);
    }
}
