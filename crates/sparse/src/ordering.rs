//! Fill-reducing orderings for symmetric factorization.
//!
//! Reverse Cuthill–McKee produces a small-bandwidth ordering which is a good
//! (and very cheap) fill reducer for the near-planar graphs of power-grid KKT
//! systems. An identity ordering is also provided for testing and for
//! matrices that are already well ordered.

use crate::csc::Csc;
use std::collections::VecDeque;

/// A symmetric permutation: `perm[k]` is the original index placed at
/// position `k`, `inv[old]` is the new position of original index `old`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ordering {
    /// New-to-old mapping.
    pub perm: Vec<usize>,
    /// Old-to-new mapping.
    pub inv: Vec<usize>,
}

impl Ordering {
    /// The identity ordering of size `n`.
    pub fn identity(n: usize) -> Self {
        Ordering {
            perm: (0..n).collect(),
            inv: (0..n).collect(),
        }
    }

    /// Build from a new-to-old permutation vector.
    pub fn from_perm(perm: Vec<usize>) -> Self {
        let mut inv = vec![0usize; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        Ordering { perm, inv }
    }

    /// Reverse Cuthill–McKee ordering of the adjacency structure of a square
    /// symmetric matrix (the pattern of `A + A^T` is used, so either triangle
    /// may be supplied).
    pub fn rcm(a: &Csc) -> Self {
        assert_eq!(a.nrows, a.ncols, "RCM requires a square matrix");
        let n = a.ncols;
        // Build symmetric adjacency lists (excluding the diagonal).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for j in 0..n {
            for p in a.colptr[j]..a.colptr[j + 1] {
                let i = a.rowind[p];
                if i != j {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();

        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        // Process every connected component, starting each BFS from a
        // minimum-degree vertex (a cheap pseudo-peripheral heuristic).
        let mut nodes: Vec<usize> = (0..n).collect();
        nodes.sort_unstable_by_key(|&v| degree[v]);
        for &start in &nodes {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            let mut queue = VecDeque::new();
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                let mut neighbors: Vec<usize> =
                    adj[v].iter().copied().filter(|&u| !visited[u]).collect();
                neighbors.sort_unstable_by_key(|&u| degree[u]);
                for u in neighbors {
                    visited[u] = true;
                    queue.push_back(u);
                }
            }
        }
        order.reverse();
        Ordering::from_perm(order)
    }

    /// Permute a vector into the new ordering: `out[new] = x[perm[new]]`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.perm.len());
        self.perm.iter().map(|&old| x[old]).collect()
    }

    /// Undo the permutation: `out[old] = x[inv[old]]`.
    pub fn apply_inverse(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.inv.len());
        self.inv.iter().map(|&new| x[new]).collect()
    }

    /// Size of the ordering.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True for the empty ordering.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }
}

/// Half-bandwidth of a square matrix (testing helper for ordering quality).
pub fn bandwidth(a: &Csc) -> usize {
    let mut bw = 0usize;
    for j in 0..a.ncols {
        for p in a.colptr[j]..a.colptr[j + 1] {
            let i = a.rowind[p];
            bw = bw.max(i.abs_diff(j));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    /// A path graph's Laplacian-like matrix but with the nodes scrambled,
    /// which has large bandwidth until reordered.
    fn scrambled_path(n: usize) -> Csc {
        let map: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % n).collect();
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(map[i], map[i], 2.0);
            if i + 1 < n {
                coo.push(map[i], map[i + 1], -1.0);
                coo.push(map[i + 1], map[i], -1.0);
            }
        }
        coo.to_csc()
    }

    #[test]
    fn identity_roundtrip() {
        let o = Ordering::identity(5);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(o.apply(&x), x);
        assert_eq!(o.apply_inverse(&x), x);
    }

    #[test]
    fn perm_and_inverse_are_inverses() {
        let o = Ordering::from_perm(vec![2, 0, 3, 1]);
        let x = vec![10.0, 20.0, 30.0, 40.0];
        let y = o.apply(&x);
        let back = o.apply_inverse(&y);
        assert_eq!(back, x);
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = scrambled_path(50);
        let o = Ordering::rcm(&a);
        let mut seen = [false; 50];
        for &p in &o.perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rcm_reduces_bandwidth_of_scrambled_path() {
        let a = scrambled_path(97);
        let before = bandwidth(&a);
        let o = Ordering::rcm(&a);
        let after = bandwidth(&a.symmetric_permute(&o.perm));
        assert!(
            after < before / 4,
            "bandwidth should drop substantially: before {before}, after {after}"
        );
        // A path graph ordered well has bandwidth 1.
        assert!(after <= 3, "path bandwidth after RCM is {after}");
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        // Two disjoint 2-cycles.
        let mut coo = Coo::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 1.0);
        }
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(2, 3, 1.0);
        coo.push(3, 2, 1.0);
        let o = Ordering::rcm(&coo.to_csc());
        assert_eq!(o.len(), 4);
        let mut sorted = o.perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
