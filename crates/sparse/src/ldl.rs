//! Sparse LDLᵀ factorization for symmetric quasi-definite systems.
//!
//! Implements the up-looking factorization of Davis's LDL package with two
//! additions needed by the interior-point baseline:
//!
//! * **dynamic regularization** — when a pivot falls below a threshold (or has
//!   the wrong sign, if the caller declares expected pivot signs for a
//!   quasi-definite KKT system), it is bumped to a signed minimum instead of
//!   aborting, mirroring what Ipopt's inertia-correction loop relies on;
//! * **inertia reporting** — the number of positive and negative pivots, used
//!   by the interior-point method to decide whether additional primal/dual
//!   regularization is required.
//!
//! A fill-reducing ordering can be supplied; the factor stores it and the
//! solve applies it transparently.

use crate::csc::Csc;
use crate::ordering::Ordering;
use crate::symbolic::Symbolic;
use crate::SparseError;
use std::sync::Arc;

/// Options controlling the factorization.
#[derive(Debug, Clone)]
pub struct LdlOptions {
    /// Pivots with absolute value below this are regularized.
    pub pivot_tol: f64,
    /// Magnitude assigned to regularized pivots.
    pub pivot_reg: f64,
    /// Expected sign of each pivot (+1 / -1) for quasi-definite systems.
    /// When provided, a pivot with the wrong sign is replaced by
    /// `sign * pivot_reg` and counted in
    /// [`LdlFactor::num_regularized`]. When empty, only near-zero pivots are
    /// regularized (keeping their sign, defaulting to +).
    pub expected_signs: Vec<i8>,
}

impl Default for LdlOptions {
    fn default() -> Self {
        LdlOptions {
            pivot_tol: 1e-12,
            pivot_reg: 1e-8,
            expected_signs: Vec::new(),
        }
    }
}

/// A computed LDLᵀ factorization `P A Pᵀ = L D Lᵀ`.
///
/// The structural parts (column pointers, row indices, ordering) are held
/// behind [`Arc`] so that factors produced by the symbolic-reuse
/// refactorization of [`crate::refactor`] share one frozen copy instead of
/// cloning `O(lnz)` index data on every numeric refactorization.
#[derive(Debug, Clone)]
pub struct LdlFactor {
    n: usize,
    /// Column pointers of L (strictly lower triangular, unit diagonal
    /// implied).
    lcolptr: Arc<Vec<usize>>,
    lrowind: Arc<Vec<usize>>,
    lvalues: Vec<f64>,
    /// Diagonal of D.
    d: Vec<f64>,
    /// Ordering applied (identity when none requested).
    ordering: Arc<Ordering>,
    /// Number of pivots that required regularization.
    pub num_regularized: usize,
}

impl LdlFactor {
    /// Assemble a factor from precomputed parts (used by the symbolic-reuse
    /// refactorization in [`crate::refactor`]).
    pub(crate) fn from_parts(
        n: usize,
        lcolptr: Arc<Vec<usize>>,
        lrowind: Arc<Vec<usize>>,
        lvalues: Vec<f64>,
        d: Vec<f64>,
        ordering: Arc<Ordering>,
        num_regularized: usize,
    ) -> LdlFactor {
        LdlFactor {
            n,
            lcolptr,
            lrowind,
            lvalues,
            d,
            ordering,
            num_regularized,
        }
    }

    /// Values of the strictly-lower-triangular factor `L`, in frozen column
    /// order (testing / comparison accessor).
    pub fn l_values(&self) -> &[f64] {
        &self.lvalues
    }

    /// Diagonal of `D` in permuted order (testing / comparison accessor).
    pub fn d_values(&self) -> &[f64] {
        &self.d
    }

    /// Factorize a symmetric matrix given by (at least) its upper triangle,
    /// using the supplied fill-reducing ordering.
    pub fn factorize_with(
        a: &Csc,
        ordering: Ordering,
        opts: &LdlOptions,
    ) -> Result<LdlFactor, SparseError> {
        if a.nrows != a.ncols {
            return Err(SparseError::Shape(format!(
                "matrix is {}x{}, expected square",
                a.nrows, a.ncols
            )));
        }
        let n = a.ncols;
        if ordering.len() != n {
            return Err(SparseError::Shape(format!(
                "ordering has length {}, expected {n}",
                ordering.len()
            )));
        }
        if !opts.expected_signs.is_empty() && opts.expected_signs.len() != n {
            return Err(SparseError::Shape(format!(
                "expected_signs has length {}, expected {n}",
                opts.expected_signs.len()
            )));
        }
        // Permute then keep only the upper triangle.
        let permuted = a.symmetric_permute(&ordering.perm).upper_triangle();
        // Permute the expected signs alongside the matrix.
        let signs: Vec<i8> = if opts.expected_signs.is_empty() {
            Vec::new()
        } else {
            ordering
                .perm
                .iter()
                .map(|&old| opts.expected_signs[old])
                .collect()
        };

        let sym = Symbolic::analyze(&permuted);
        let mut lcolptr = sym.lcolptr.clone();
        let total = sym.total_lnz();
        let mut lrowind = vec![0usize; total];
        let mut lvalues = vec![0.0f64; total];
        let mut d = vec![0.0f64; n];
        let mut num_regularized = 0usize;

        // Working arrays for the up-looking numeric factorization.
        let none = usize::MAX;
        let mut y = vec![0.0f64; n];
        let mut pattern = vec![0usize; n];
        let mut flag = vec![none; n];
        let mut lnz_used = vec![0usize; n];

        for j in 0..n {
            // Scatter column j of the (permuted, upper) matrix into y and
            // compute the nonzero pattern of row j of L by walking the etree.
            let mut top = n;
            flag[j] = j;
            y[j] = 0.0;
            for p in permuted.colptr[j]..permuted.colptr[j + 1] {
                let mut i = permuted.rowind[p];
                if i > j {
                    continue;
                }
                y[i] += permuted.values[p];
                let mut len = 0usize;
                while flag[i] != j {
                    pattern[len] = i;
                    len += 1;
                    flag[i] = j;
                    i = sym.parent[i];
                }
                while len > 0 {
                    top -= 1;
                    len -= 1;
                    pattern[top] = pattern[len];
                }
            }
            // Compute the numerical values of row j of L and pivot d[j].
            let mut dj = y[j];
            y[j] = 0.0;
            for &i in &pattern[top..n] {
                let yi = y[i];
                y[i] = 0.0;
                let p_start = lcolptr[i];
                let p_end = p_start + lnz_used[i];
                for p in p_start..p_end {
                    y[lrowind[p]] -= lvalues[p] * yi;
                }
                let lji = yi / d[i];
                dj -= lji * yi;
                lrowind[p_end] = j;
                lvalues[p_end] = lji;
                lnz_used[i] += 1;
            }
            // Regularize the pivot.
            let expected = signs.get(j).copied().unwrap_or(0);
            let dj_reg = regularize_pivot(dj, expected, opts);
            if dj_reg != dj {
                num_regularized += 1;
            }
            if dj_reg == 0.0 {
                return Err(SparseError::Breakdown {
                    column: j,
                    pivot: dj,
                });
            }
            d[j] = dj_reg;
        }

        // `lcolptr` already holds the start offsets of each column; append the
        // final end offset so that downstream loops can use colptr[j+1].
        lcolptr.push(total);
        // (lcolptr had length n+1 from Symbolic already; ensure length n+1.)
        lcolptr.truncate(n + 1);

        Ok(LdlFactor {
            n,
            lcolptr: Arc::new(lcolptr),
            lrowind: Arc::new(lrowind),
            lvalues,
            d,
            ordering: Arc::new(ordering),
            num_regularized,
        })
    }

    /// Factorize with the identity ordering.
    pub fn factorize(a: &Csc, opts: &LdlOptions) -> Result<LdlFactor, SparseError> {
        let n = a.ncols;
        Self::factorize_with(a, Ordering::identity(n), opts)
    }

    /// Factorize using a reverse Cuthill–McKee ordering computed from the
    /// matrix pattern.
    pub fn factorize_rcm(a: &Csc, opts: &LdlOptions) -> Result<LdlFactor, SparseError> {
        let ordering = Ordering::rcm(a);
        Self::factorize_with(a, ordering, opts)
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        // Permute the right-hand side.
        let mut x = self.ordering.apply(b);
        // Forward solve L y = b.
        for j in 0..self.n {
            let xj = x[j];
            for p in self.lcolptr[j]..self.lcolptr[j + 1] {
                x[self.lrowind[p]] -= self.lvalues[p] * xj;
            }
        }
        // Diagonal solve D z = y.
        for (xj, dj) in x.iter_mut().zip(&self.d) {
            *xj /= dj;
        }
        // Backward solve L^T x = z.
        for j in (0..self.n).rev() {
            let mut xj = x[j];
            for p in self.lcolptr[j]..self.lcolptr[j + 1] {
                xj -= self.lvalues[p] * x[self.lrowind[p]];
            }
            x[j] = xj;
        }
        // Undo the permutation.
        self.ordering.apply_inverse(&x)
    }

    /// Inertia of the factorized matrix: `(positive, negative, zero)` pivot
    /// counts.
    pub fn inertia(&self) -> (usize, usize, usize) {
        let mut pos = 0;
        let mut neg = 0;
        let mut zero = 0;
        for &dj in &self.d {
            if dj > 0.0 {
                pos += 1;
            } else if dj < 0.0 {
                neg += 1;
            } else {
                zero += 1;
            }
        }
        (pos, neg, zero)
    }

    /// Number of nonzeros in the strictly-lower-triangular factor `L`.
    pub fn lnz(&self) -> usize {
        self.lvalues.len()
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.n
    }
}

pub(crate) fn regularize_pivot(dj: f64, expected_sign: i8, opts: &LdlOptions) -> f64 {
    match expected_sign {
        1 => {
            if dj < opts.pivot_tol {
                opts.pivot_reg
            } else {
                dj
            }
        }
        -1 => {
            if dj > -opts.pivot_tol {
                -opts.pivot_reg
            } else {
                dj
            }
        }
        _ => {
            if dj.abs() < opts.pivot_tol {
                if dj >= 0.0 {
                    opts.pivot_reg
                } else {
                    -opts.pivot_reg
                }
            } else {
                dj
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn spd_example() -> Csc {
        // [ 4 1 0 ]
        // [ 1 3 2 ]
        // [ 0 2 5 ]  (symmetric positive definite)
        Csc::from_triplets(
            3,
            3,
            &[0, 1, 0, 1, 2, 1, 2],
            &[0, 0, 1, 1, 1, 2, 2],
            &[4.0, 1.0, 1.0, 3.0, 2.0, 2.0, 5.0],
        )
    }

    fn tridiag(n: usize) -> Csc {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        coo.to_csc()
    }

    #[test]
    fn solves_spd_system() {
        let a = spd_example();
        let f = LdlFactor::factorize(&a, &LdlOptions::default()).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = f.solve(&b);
        assert!(a.residual_inf_norm(&x, &b) < 1e-12);
        assert_eq!(f.inertia(), (3, 0, 0));
        assert_eq!(f.num_regularized, 0);
    }

    #[test]
    fn solves_with_rcm_ordering() {
        let a = tridiag(40);
        let f = LdlFactor::factorize_rcm(&a, &LdlOptions::default()).unwrap();
        let b: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let x = f.solve(&b);
        assert!(a.residual_inf_norm(&x, &b) < 1e-10);
    }

    #[test]
    fn indefinite_kkt_system_inertia() {
        // KKT matrix [ H  J^T ; J  0 ] with H = I (2x2), J = [1 1].
        // Regularized with -delta in the (3,3) block by expected signs.
        let a = Csc::from_triplets(
            3,
            3,
            &[0, 1, 0, 2, 1, 2],
            &[0, 1, 2, 0, 2, 1],
            &[1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        );
        let opts = LdlOptions {
            expected_signs: vec![1, 1, -1],
            ..Default::default()
        };
        let f = LdlFactor::factorize(&a, &opts).unwrap();
        let (pos, neg, zero) = f.inertia();
        assert_eq!((pos, neg, zero), (2, 1, 0));
        // Solve and verify.
        let b = vec![1.0, -1.0, 0.5];
        let x = f.solve(&b);
        assert!(a.residual_inf_norm(&x, &b) < 1e-10);
    }

    #[test]
    fn singular_pivot_is_regularized_not_fatal() {
        // Second diagonal entry is exactly the Schur complement, producing a
        // zero pivot: [[1, 1], [1, 1]].
        let a = Csc::from_triplets(2, 2, &[0, 0, 1, 1], &[0, 1, 0, 1], &[1.0, 1.0, 1.0, 1.0]);
        let f = LdlFactor::factorize(&a, &LdlOptions::default()).unwrap();
        assert_eq!(f.num_regularized, 1);
    }

    #[test]
    fn wrong_sign_pivot_counted_with_expected_signs() {
        // Diagonal [1, -2] but we expect both positive.
        let a = Csc::from_triplets(2, 2, &[0, 1], &[0, 1], &[1.0, -2.0]);
        let opts = LdlOptions {
            expected_signs: vec![1, 1],
            ..Default::default()
        };
        let f = LdlFactor::factorize(&a, &opts).unwrap();
        assert_eq!(f.num_regularized, 1);
        assert_eq!(f.inertia().0, 2);
    }

    #[test]
    fn larger_random_spd_solve() {
        // Diagonally dominant random symmetric matrix.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 80;
        let mut coo = Coo::new(n, n);
        let mut diag = vec![1.0; n];
        for i in 0..n {
            for _ in 0..4 {
                let j = rng.gen_range(0..n);
                if j == i {
                    continue;
                }
                let v: f64 = rng.gen_range(-1.0..1.0);
                coo.push(i, j, v);
                coo.push(j, i, v);
                diag[i] += v.abs() + 0.1;
                diag[j] += v.abs() + 0.1;
            }
        }
        for (i, &d) in diag.iter().enumerate() {
            coo.push(i, i, d);
        }
        let a = coo.to_csc();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        for f in [
            LdlFactor::factorize(&a, &LdlOptions::default()).unwrap(),
            LdlFactor::factorize_rcm(&a, &LdlOptions::default()).unwrap(),
        ] {
            let x = f.solve(&b);
            assert!(a.residual_inf_norm(&x, &b) < 1e-9);
            assert_eq!(f.inertia(), (n, 0, 0));
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = Csc::zeros(2, 3);
        assert!(matches!(
            LdlFactor::factorize(&a, &LdlOptions::default()),
            Err(SparseError::Shape(_))
        ));
    }

    #[test]
    fn mismatched_signs_length_rejected() {
        let a = spd_example();
        let opts = LdlOptions {
            expected_signs: vec![1, 1],
            ..Default::default()
        };
        assert!(matches!(
            LdlFactor::factorize(&a, &opts),
            Err(SparseError::Shape(_))
        ));
    }
}
