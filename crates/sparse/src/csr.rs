//! Compressed sparse row matrices.
//!
//! The interior-point baseline works column-wise ([`crate::csc::Csc`]), but a
//! row-major view is convenient for constraint-wise iteration (one row per
//! power-balance or line-limit constraint) and for transpose-free
//! matrix-vector products in iterative refinement.

use crate::csc::Csc;

/// A compressed-sparse-row matrix. Column indices within a row are sorted and
/// unique.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row pointers, length `nrows + 1`.
    pub rowptr: Vec<usize>,
    /// Column indices, length `nnz`.
    pub colind: Vec<usize>,
    /// Values, length `nnz`.
    pub values: Vec<f64>,
}

impl Csr {
    /// Build from triplets (duplicates summed).
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: &[usize],
        cols: &[usize],
        vals: &[f64],
    ) -> Csr {
        // Reuse the CSC construction on the transpose, then reinterpret.
        let csc_of_transpose = Csc::from_triplets(ncols, nrows, cols, rows, vals);
        Csr {
            nrows,
            ncols,
            rowptr: csc_of_transpose.colptr,
            colind: csc_of_transpose.rowind,
            values: csc_of_transpose.values,
        }
    }

    /// Convert a CSC matrix to CSR.
    pub fn from_csc(a: &Csc) -> Csr {
        let mut rows = Vec::with_capacity(a.nnz());
        let mut cols = Vec::with_capacity(a.nnz());
        let mut vals = Vec::with_capacity(a.nnz());
        for j in 0..a.ncols {
            for p in a.colptr[j]..a.colptr[j + 1] {
                rows.push(a.rowind[p]);
                cols.push(j);
                vals.push(a.values[p]);
            }
        }
        Csr::from_triplets(a.nrows, a.ncols, &rows, &cols, &vals)
    }

    /// Convert to CSC.
    pub fn to_csc(&self) -> Csc {
        let mut rows = Vec::with_capacity(self.nnz());
        let mut cols = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            for p in self.rowptr[i]..self.rowptr[i + 1] {
                rows.push(i);
                cols.push(self.colind[p]);
                vals.push(self.values[p]);
            }
        }
        Csc::from_triplets(self.nrows, self.ncols, &rows, &cols, &vals)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate over the `(column, value)` pairs of one row.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        (self.rowptr[i]..self.rowptr[i + 1]).map(move |p| (self.colind[p], self.values[p]))
    }

    /// `y = A x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        (0..self.nrows)
            .map(|i| self.row(i).map(|(j, v)| v * x[j]).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_csc() -> Csc {
        Csc::from_triplets(
            3,
            4,
            &[0, 0, 1, 2, 2],
            &[0, 2, 1, 0, 3],
            &[1.0, 2.0, 3.0, 4.0, 5.0],
        )
    }

    #[test]
    fn csc_csr_roundtrip() {
        let a = example_csc();
        let csr = Csr::from_csc(&a);
        assert_eq!(csr.nnz(), a.nnz());
        let back = csr.to_csc();
        assert_eq!(back.to_dense(), a.to_dense());
    }

    #[test]
    fn matvec_agrees_with_csc() {
        let a = example_csc();
        let csr = Csr::from_csc(&a);
        let x = vec![1.0, -1.0, 0.5, 2.0];
        assert_eq!(csr.mul_vec(&x), a.mul_vec(&x));
    }

    #[test]
    fn row_iteration_is_sorted() {
        let csr = Csr::from_triplets(2, 5, &[0, 0, 0, 1], &[4, 1, 2, 0], &[1.0, 2.0, 3.0, 4.0]);
        let row0: Vec<usize> = csr.row(0).map(|(j, _)| j).collect();
        assert_eq!(row0, vec![1, 2, 4]);
        let row1: Vec<usize> = csr.row(1).map(|(j, _)| j).collect();
        assert_eq!(row1, vec![0]);
    }

    #[test]
    fn duplicate_triplets_summed() {
        let csr = Csr::from_triplets(1, 2, &[0, 0], &[1, 1], &[2.0, 3.0]);
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.mul_vec(&[0.0, 1.0]), vec![5.0]);
    }
}
