//! Symbolic-reuse LDLᵀ: analyze once, numerically refactorize many times.
//!
//! Interior-point methods factorize a KKT matrix whose *pattern* never
//! changes — only the values do (barrier terms, Hessian entries,
//! regularization). Świrydowicz et al. (arXiv:2306.14337) show that the
//! device-resident speedup of GPU linear solvers in this setting comes from
//! freezing the symbolic analysis (elimination tree, fill pattern, pivot
//! order) and running *numeric-only refactorizations* against it. This module
//! implements that split for the up-looking LDLᵀ of [`crate::ldl`]:
//!
//! * [`LdlSymbolic::analyze`] runs once per problem: it fixes the
//!   fill-reducing ordering, the permuted upper-triangular pattern, the
//!   elimination tree, the full row pattern of `L`, the replay order of every
//!   row's sparse dot products, and an elimination-tree *level schedule*;
//! * [`LdlSymbolic::refactor`] replays the numeric factorization over the
//!   frozen pattern — no graph walks, no allocation proportional to symbolic
//!   work — and is **bitwise identical** to a fresh
//!   [`LdlFactor::factorize_with`] of the same matrix (a tested invariant);
//! * [`LdlSymbolic::refactor_on`] runs the same replay with the per-row
//!   column updates fanned out through [`gridsim_batch::Device::launch_blocks`],
//!   one elimination-tree level at a time. Rows on the same level own
//!   disjoint subtrees, hence disjoint reads and writes, so the parallel
//!   backend produces the same bits as the sequential one;
//! * the analysis additionally groups columns of the frozen `L` into
//!   **supernodes** (maximal runs of consecutive columns whose patterns
//!   below the diagonal block are identical — the structure dense BLAS3
//!   factorization kernels exploit, cf. Świrydowicz et al. §III) and
//!   rewrites every row's replay list into *segments*. A segment covering a
//!   `w`-column supernode is replayed as a small dense triangular solve on
//!   the diagonal block followed by a rank-`w` update of the shared
//!   subdiagonal pattern: one pattern lookup and one `y` load/store per
//!   target row instead of `w`, with the per-row accumulation kept in the
//!   exact column order of the scalar replay so the result is **bitwise
//!   identical** to it ([`LdlSymbolic::refactor_supernodal`], and the replay
//!   [`LdlSymbolic::refactor_on`] launches per thread block). The scalar
//!   path is kept callable so the `kkt_condensed` bench can record the
//!   supernodal speedup at asserted-bitwise-equal factors.
//!
//! The error-column reported on a [`SparseError::Breakdown`] may differ
//! between the level-parallel and sequential schedules when several columns
//! break down (the parallel schedule reports the lowest-indexed breakdown of
//! the *first level* that fails); with a nonzero `pivot_reg` breakdown cannot
//! occur at all.

use crate::csc::Csc;
use crate::ldl::{LdlFactor, LdlOptions};
use crate::ordering::Ordering;
use crate::symbolic::Symbolic;
use crate::SparseError;
use gridsim_batch::{Device, DeviceBuffer};
use parking_lot::Mutex;
use std::sync::Arc;

/// Upper bound on supernode width. Wider runs of identical-pattern columns
/// are split into consecutive supernodes of this width, which keeps the
/// per-row replay's column-value buffer on the stack (no per-row allocation,
/// mirroring the scalar path) while still capturing essentially all of the
/// grouping win — rank-32 updates already amortize the pattern lookups.
const SUPERNODE_MAX_WIDTH: usize = 32;

/// Frozen symbolic analysis of a symmetric matrix, reusable across any
/// number of numeric refactorizations with the same sparsity pattern.
#[derive(Debug, Clone)]
pub struct LdlSymbolic {
    n: usize,
    /// Pattern of the analyzed matrix (CSC, both triangles as supplied).
    a_colptr: Vec<usize>,
    a_rowind: Vec<usize>,
    /// Ordering fixed at analysis time.
    ordering: Arc<Ordering>,
    /// Permuted upper-triangular pattern (row ≤ col), CSC layout.
    au_colptr: Vec<usize>,
    au_rowind: Vec<usize>,
    /// For each permuted-upper entry, the index of the corresponding value in
    /// the *original* matrix's value array.
    aval_map: Vec<usize>,
    /// Elimination tree parents over the permuted pattern.
    parent: Vec<usize>,
    /// Column pointers of `L` (length `n + 1`).
    lcolptr: Arc<Vec<usize>>,
    /// Frozen row indices of `L`, ascending within each column.
    lrowind: Arc<Vec<usize>>,
    /// Replay order of each row's reach set (`rp_idx[rp_ptr[j]..rp_ptr[j+1]]`
    /// is the exact column order the up-looking factorization visits when
    /// computing row `j`).
    rp_ptr: Vec<usize>,
    rp_idx: Vec<usize>,
    /// Elimination-tree level schedule: rows in
    /// `level_idx[level_ptr[l]..level_ptr[l+1]]` depend only on rows of
    /// levels `< l` and touch pairwise-disjoint columns of `L`.
    level_ptr: Vec<usize>,
    level_idx: Vec<usize>,
    /// Supernode partition of the frozen `L`: `sn_end_of_col[c]` is the
    /// exclusive end column of the supernode containing column `c` (maximal
    /// run of consecutive columns whose patterns below the shared diagonal
    /// block are identical, width-capped at [`SUPERNODE_MAX_WIDTH`]).
    sn_end_of_col: Vec<usize>,
    num_supernodes: usize,
    max_supernode_width: usize,
    /// Segmented replay lists: `seg_ptr[j]..seg_ptr[j+1]` indexes the
    /// segments of row `j`'s reach set, each a run of `seg_len[s]`
    /// consecutive columns starting at `seg_col[s]` that live in one
    /// supernode and appear consecutively in the scalar replay order
    /// (`rp_idx`). Concatenating the segments reproduces `rp_idx` exactly.
    seg_ptr: Vec<usize>,
    seg_col: Vec<usize>,
    seg_len: Vec<usize>,
}

/// One row's pending output inside a level-parallel launch: the pivot, the
/// regularization/breakdown flags, and the `L` entries to commit (slot,
/// value). Rows of one level write disjoint slots, so the commits can be
/// applied in any order; they are applied in ascending row order for
/// determinism of the breakdown report.
#[derive(Debug, Clone, Default)]
struct RowTask {
    j: usize,
    dj: f64,
    raw_pivot: f64,
    regularized: bool,
    breakdown: bool,
    writes: Vec<(usize, f64)>,
}

impl LdlSymbolic {
    /// Analyze the pattern of `a` under the supplied fill-reducing ordering.
    /// Values of `a` are ignored; only the structure is frozen.
    pub fn analyze(a: &Csc, ordering: Ordering) -> Result<LdlSymbolic, SparseError> {
        if a.nrows != a.ncols {
            return Err(SparseError::Shape(format!(
                "matrix is {}x{}, expected square",
                a.nrows, a.ncols
            )));
        }
        let n = a.ncols;
        if ordering.len() != n {
            return Err(SparseError::Shape(format!(
                "ordering has length {}, expected {n}",
                ordering.len()
            )));
        }
        // The same permute + upper-triangle construction the fresh
        // factorization performs, so entry order (and therefore replayed
        // arithmetic order) matches it exactly.
        let permuted = a.symmetric_permute(&ordering.perm).upper_triangle();

        // Map every permuted-upper entry back to its source value in `a`.
        let mut aval_map = Vec::with_capacity(permuted.nnz());
        for j in 0..n {
            for p in permuted.colptr[j]..permuted.colptr[j + 1] {
                let orig_row = ordering.perm[permuted.rowind[p]];
                let orig_col = ordering.perm[j];
                let lo = a.colptr[orig_col];
                let hi = a.colptr[orig_col + 1];
                match a.rowind[lo..hi].binary_search(&orig_row) {
                    Ok(off) => aval_map.push(lo + off),
                    Err(_) => {
                        return Err(SparseError::Shape(format!(
                            "pattern is not symmetric: entry ({orig_row}, {orig_col}) \
                             has no transpose partner"
                        )))
                    }
                }
            }
        }

        let sym = Symbolic::analyze(&permuted);

        // Replay orders: replicate the up-looking pattern computation once,
        // recording the reach-set order of every row.
        let none = usize::MAX;
        let mut flag = vec![none; n];
        let mut pattern = vec![0usize; n];
        let mut rp_ptr = vec![0usize; n + 1];
        let mut rp_idx = Vec::with_capacity(sym.total_lnz());
        for j in 0..n {
            let mut top = n;
            flag[j] = j;
            for p in permuted.colptr[j]..permuted.colptr[j + 1] {
                let mut i = permuted.rowind[p];
                if i >= j {
                    continue;
                }
                let mut len = 0usize;
                while flag[i] != j {
                    pattern[len] = i;
                    len += 1;
                    flag[i] = j;
                    i = sym.parent[i];
                }
                while len > 0 {
                    top -= 1;
                    len -= 1;
                    pattern[top] = pattern[len];
                }
            }
            rp_idx.extend_from_slice(&pattern[top..n]);
            rp_ptr[j + 1] = rp_idx.len();
        }

        // Frozen row indices of L: appending row j to every reached column in
        // replay order reproduces the fresh factorization's slot layout
        // (ascending rows within each column).
        let total = sym.total_lnz();
        // `Symbolic::analyze` always returns `lcolptr` of length n + 1 with
        // the total as its last entry.
        let lcolptr = sym.lcolptr.clone();
        let mut lrowind = vec![0usize; total];
        let mut lnz_used = vec![0usize; n];
        for j in 0..n {
            for &i in &rp_idx[rp_ptr[j]..rp_ptr[j + 1]] {
                lrowind[lcolptr[i] + lnz_used[i]] = j;
                lnz_used[i] += 1;
            }
        }

        // Elimination-tree levels: children carry strictly smaller indices,
        // so one ascending pass settles every height.
        let mut level = vec![0usize; n];
        for i in 0..n {
            let p = sym.parent[i];
            if p != none {
                level[p] = level[p].max(level[i] + 1);
            }
        }
        let depth = level.iter().copied().max().map_or(0, |d| d + 1);
        let mut level_ptr = vec![0usize; depth + 1];
        for &l in &level {
            level_ptr[l + 1] += 1;
        }
        for l in 0..depth {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut next = level_ptr.clone();
        let mut level_idx = vec![0usize; n];
        for (j, &l) in level.iter().enumerate() {
            level_idx[next[l]] = j;
            next[l] += 1;
        }

        // Supernode partition: columns c and c+1 merge when column c's
        // pattern is exactly {c+1} ∪ pattern(c+1) — first subdiagonal entry
        // is the next column and the remaining rows coincide. Within such a
        // run every column shares one below-block row set, so a numeric
        // replay can update those rows once per run instead of once per
        // column.
        let mut sn_end_of_col = vec![0usize; n];
        let mut num_supernodes = 0usize;
        let mut max_supernode_width = 0usize;
        let mut c = 0usize;
        while c < n {
            let mut end = c + 1;
            while end < n && end - c < SUPERNODE_MAX_WIDTH {
                let prev = end - 1;
                let mergeable = lcolptr[prev + 1] - lcolptr[prev]
                    == lcolptr[end + 1] - lcolptr[end] + 1
                    && lrowind[lcolptr[prev]] == end
                    && lrowind[lcolptr[prev] + 1..lcolptr[prev + 1]]
                        == lrowind[lcolptr[end]..lcolptr[end + 1]];
                if !mergeable {
                    break;
                }
                end += 1;
            }
            for e in &mut sn_end_of_col[c..end] {
                *e = end;
            }
            num_supernodes += 1;
            max_supernode_width = max_supernode_width.max(end - c);
            c = end;
        }

        // Segmented replay lists: greedily group runs of consecutive columns
        // of one supernode that the scalar replay visits back to back. The
        // grouping is opportunistic — a supernode entered mid-chain by the
        // elimination-tree walk simply yields narrower segments (width 1 in
        // the worst case, which degenerates to the scalar replay).
        let mut seg_ptr = vec![0usize; n + 1];
        let mut seg_col = Vec::new();
        let mut seg_len = Vec::new();
        for j in 0..n {
            let reach = &rp_idx[rp_ptr[j]..rp_ptr[j + 1]];
            let mut k = 0usize;
            while k < reach.len() {
                let start = reach[k];
                let s_end = sn_end_of_col[start];
                let mut w = 1usize;
                while k + w < reach.len() && reach[k + w] == start + w && start + w < s_end {
                    w += 1;
                }
                seg_col.push(start);
                seg_len.push(w);
                k += w;
            }
            seg_ptr[j + 1] = seg_col.len();
        }

        Ok(LdlSymbolic {
            n,
            a_colptr: a.colptr.clone(),
            a_rowind: a.rowind.clone(),
            ordering: Arc::new(ordering),
            au_colptr: permuted.colptr,
            au_rowind: permuted.rowind,
            aval_map,
            parent: sym.parent,
            lcolptr: Arc::new(lcolptr),
            lrowind: Arc::new(lrowind),
            rp_ptr,
            rp_idx,
            level_ptr,
            level_idx,
            sn_end_of_col,
            num_supernodes,
            max_supernode_width,
            seg_ptr,
            seg_col,
            seg_len,
        })
    }

    /// Analyze with a reverse Cuthill–McKee ordering computed from `a`.
    pub fn analyze_rcm(a: &Csc) -> Result<LdlSymbolic, SparseError> {
        let ordering = Ordering::rcm(a);
        Self::analyze(a, ordering)
    }

    /// Dimension of the analyzed matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of entries the analyzed pattern stores (the length `values`
    /// slices passed to [`Self::refactor`] must have).
    pub fn nnz(&self) -> usize {
        self.a_rowind.len()
    }

    /// Number of strictly-lower-triangular nonzeros of the frozen `L`.
    pub fn lnz(&self) -> usize {
        self.lrowind.len()
    }

    /// Number of elimination-tree levels in the parallel schedule.
    pub fn num_levels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// Number of supernodes the frozen `L` pattern partitions into. Equal to
    /// [`Self::dim`] when no adjacent columns share a pattern; smaller values
    /// mean the supernodal replay gets to batch its updates.
    pub fn num_supernodes(&self) -> usize {
        self.num_supernodes
    }

    /// Width of the widest supernode (1 for a pattern with no groupable
    /// columns; capped at `SUPERNODE_MAX_WIDTH` = 32).
    pub fn max_supernode_width(&self) -> usize {
        self.max_supernode_width
    }

    /// The analyzed CSC pattern as `(colptr, rowind)` — the entry order the
    /// `values` slices of [`Self::refactor`] must follow. Callers that need
    /// slot lookups into the frozen pattern can use this instead of keeping
    /// their own copy.
    pub fn pattern(&self) -> (&[usize], &[usize]) {
        (&self.a_colptr, &self.a_rowind)
    }

    /// The ordering frozen at analysis time.
    pub fn ordering(&self) -> &Ordering {
        self.ordering.as_ref()
    }

    /// Elimination-tree parent pointers (`usize::MAX` for roots), in the
    /// permuted index space.
    pub fn etree_parent(&self) -> &[usize] {
        &self.parent
    }

    fn permuted_signs(&self, opts: &LdlOptions) -> Result<Vec<i8>, SparseError> {
        if opts.expected_signs.is_empty() {
            return Ok(Vec::new());
        }
        if opts.expected_signs.len() != self.n {
            return Err(SparseError::Shape(format!(
                "expected_signs has length {}, expected {}",
                opts.expected_signs.len(),
                self.n
            )));
        }
        Ok(self
            .ordering
            .perm
            .iter()
            .map(|&old| opts.expected_signs[old])
            .collect())
    }

    /// Replay the numeric factorization of row `j` against the frozen
    /// pattern. Reads `lvalues`/`d` only at positions owned by strictly
    /// earlier rows; emits this row's `L` entries into `writes` and returns
    /// the raw (pre-regularization) pivot. The arithmetic sequence is
    /// identical to [`LdlFactor::factorize_with`]'s inner loop.
    fn replay_row(
        &self,
        j: usize,
        values: &[f64],
        lvalues: &[f64],
        d: &[f64],
        y: &mut [f64],
        writes: &mut Vec<(usize, f64)>,
    ) -> f64 {
        for p in self.au_colptr[j]..self.au_colptr[j + 1] {
            y[self.au_rowind[p]] += values[self.aval_map[p]];
        }
        let mut dj = y[j];
        y[j] = 0.0;
        for &i in &self.rp_idx[self.rp_ptr[j]..self.rp_ptr[j + 1]] {
            let yi = y[i];
            y[i] = 0.0;
            let p_start = self.lcolptr[i];
            let p_stop = self.lcolptr[i + 1];
            // Entries of column i below row j: the fresh factorization has
            // appended exactly the rows < j at this point, which is a prefix
            // of the frozen (ascending) row list.
            let p_end = p_start + self.lrowind[p_start..p_stop].partition_point(|&r| r < j);
            for p in p_start..p_end {
                y[self.lrowind[p]] -= lvalues[p] * yi;
            }
            let lji = yi / d[i];
            dj -= lji * yi;
            writes.push((p_end, lji));
        }
        dj
    }

    /// Supernodal replay of row `j`: same arithmetic as [`Self::replay_row`],
    /// but the reach set is walked segment-by-segment and each segment's
    /// updates to the supernode's shared below-block rows run as one dense
    /// rank-`w` update. Bitwise identical to the scalar replay because every
    /// memory location still receives its updates in ascending column order
    /// (phase 1 preserves the scalar order for intra-supernode rows and the
    /// pivot; phase 2 preserves it per shared row, fusing only the
    /// intermediate load/stores of `y[r]`, which IEEE-754 addition does not
    /// observe), and the shared rows (≥ supernode end) are disjoint from the
    /// intra-supernode rows phase 1 reads.
    fn replay_row_supernodal(
        &self,
        j: usize,
        values: &[f64],
        lvalues: &[f64],
        d: &[f64],
        y: &mut [f64],
        writes: &mut Vec<(usize, f64)>,
    ) -> f64 {
        for p in self.au_colptr[j]..self.au_colptr[j + 1] {
            y[self.au_rowind[p]] += values[self.aval_map[p]];
        }
        let mut dj = y[j];
        y[j] = 0.0;
        let lcolptr: &[usize] = &self.lcolptr;
        let lrowind: &[usize] = &self.lrowind;
        let mut yc = [0.0f64; SUPERNODE_MAX_WIDTH];
        for s in self.seg_ptr[j]..self.seg_ptr[j + 1] {
            let c = self.seg_col[s];
            let w = self.seg_len[s];
            let s_end = self.sn_end_of_col[c];
            // Shared below-block rows of this supernode that precede row j:
            // the row set is identical for every column of the supernode, so
            // one partition_point (on the segment's first column) serves all
            // `w` columns — the scalar replay pays one per column.
            let t = if j >= s_end {
                let com0 = lcolptr[c] + (s_end - 1 - c);
                lrowind[com0..lcolptr[c + 1]].partition_point(|&r| r < j)
            } else {
                0
            };
            // Phase 1: per-column intra-supernode updates, pivot contribution
            // and the L write — in scalar column order, so a later segment
            // column's `y` sees the earlier columns' updates exactly as the
            // scalar replay computes them.
            for (q, yq) in yc[..w].iter_mut().enumerate() {
                let i = c + q;
                let yi = y[i];
                y[i] = 0.0;
                *yq = yi;
                let p_start = lcolptr[i];
                let lead = s_end.min(j) - i - 1;
                for p in p_start..p_start + lead {
                    y[lrowind[p]] -= lvalues[p] * yi;
                }
                let lji = yi / d[i];
                dj -= lji * yi;
                writes.push((p_start + lead + t, lji));
            }
            // Phase 2: dense rank-`w` update of the shared rows. One pattern
            // lookup and one `y[r]` load/store per target row for the whole
            // segment; the inner subtraction order is column-ascending,
            // matching the scalar replay bit for bit.
            if t > 0 {
                let com0 = lcolptr[c] + (s_end - 1 - c);
                for idx in 0..t {
                    let r = lrowind[com0 + idx];
                    let mut v = y[r];
                    for (q, &yq) in yc[..w].iter().enumerate() {
                        let i = c + q;
                        v -= lvalues[lcolptr[i] + (s_end - 1 - i) + idx] * yq;
                    }
                    y[r] = v;
                }
            }
        }
        dj
    }

    /// Numeric-only refactorization from a value slice aligned with the
    /// analyzed pattern (entry `k` of `values` is the value of the analyzed
    /// matrix's `k`-th stored entry). Bitwise identical to a fresh
    /// [`LdlFactor::factorize_with`] with the same ordering and options.
    pub fn refactor(&self, values: &[f64], opts: &LdlOptions) -> Result<LdlFactor, SparseError> {
        self.check_values_len(values)?;
        let signs = self.permuted_signs(opts)?;
        let n = self.n;
        let mut lvalues = vec![0.0f64; self.lrowind.len()];
        let mut d = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        let mut writes = Vec::new();
        let mut num_regularized = 0usize;
        for j in 0..n {
            writes.clear();
            let dj = self.replay_row(j, values, &lvalues, &d, &mut y, &mut writes);
            for &(slot, v) in &writes {
                lvalues[slot] = v;
            }
            let expected = signs.get(j).copied().unwrap_or(0);
            let dj_reg = crate::ldl::regularize_pivot(dj, expected, opts);
            if dj_reg != dj {
                num_regularized += 1;
            }
            if dj_reg == 0.0 {
                return Err(SparseError::Breakdown {
                    column: j,
                    pivot: dj,
                });
            }
            d[j] = dj_reg;
        }
        Ok(LdlFactor::from_parts(
            n,
            Arc::clone(&self.lcolptr),
            Arc::clone(&self.lrowind),
            lvalues,
            d,
            Arc::clone(&self.ordering),
            num_regularized,
        ))
    }

    /// Supernodal numeric refactorization on the host: the same frozen
    /// pattern as [`Self::refactor`], replayed segment-wise with dense
    /// rank-`w` updates per supernode (`replay_row_supernodal`).
    /// Bitwise identical to [`Self::refactor`] and to a fresh
    /// [`LdlFactor::factorize_with`]; faster on patterns with non-trivial
    /// supernodes (the `kkt_condensed` bench records the delta). The scalar
    /// [`Self::refactor`] stays callable as the measured baseline.
    pub fn refactor_supernodal(
        &self,
        values: &[f64],
        opts: &LdlOptions,
    ) -> Result<LdlFactor, SparseError> {
        self.check_values_len(values)?;
        let signs = self.permuted_signs(opts)?;
        let n = self.n;
        let mut lvalues = vec![0.0f64; self.lrowind.len()];
        let mut d = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        let mut writes = Vec::new();
        let mut num_regularized = 0usize;
        for j in 0..n {
            writes.clear();
            let dj = self.replay_row_supernodal(j, values, &lvalues, &d, &mut y, &mut writes);
            for &(slot, v) in &writes {
                lvalues[slot] = v;
            }
            let expected = signs.get(j).copied().unwrap_or(0);
            let dj_reg = crate::ldl::regularize_pivot(dj, expected, opts);
            if dj_reg != dj {
                num_regularized += 1;
            }
            if dj_reg == 0.0 {
                return Err(SparseError::Breakdown {
                    column: j,
                    pivot: dj,
                });
            }
            d[j] = dj_reg;
        }
        Ok(LdlFactor::from_parts(
            n,
            Arc::clone(&self.lcolptr),
            Arc::clone(&self.lrowind),
            lvalues,
            d,
            Arc::clone(&self.ordering),
            num_regularized,
        ))
    }

    /// Numeric-only refactorization with the per-row column updates launched
    /// through [`Device::launch_blocks`], one elimination-tree level per
    /// launch ("one thread block per row" — the same geometry as the batch
    /// TRON solves). Each block runs the supernodal segmented replay, so the
    /// production path (the IPM's condensed-KKT cache refactorizes through
    /// here every Newton step) gets the dense rank-`w` updates. Bitwise
    /// identical to [`Self::refactor`] on every backend: rows of one level
    /// own disjoint subtrees, so their reads all resolve to earlier levels
    /// and their writes never alias, and the supernodal replay itself is
    /// bitwise identical to the scalar one.
    pub fn refactor_on(
        &self,
        device: &Device,
        values: &[f64],
        opts: &LdlOptions,
    ) -> Result<LdlFactor, SparseError> {
        self.check_values_len(values)?;
        let signs = self.permuted_signs(opts)?;
        let n = self.n;
        let mut lvalues = vec![0.0f64; self.lrowind.len()];
        let mut d = vec![0.0f64; n];
        let mut num_regularized = 0usize;
        // Scratch vectors are recycled through a pool so a wide level does
        // not allocate O(n) per row beyond its actual concurrency. Every
        // replay consumes the entries it scatters, returning the vector to
        // the pool all-zero.
        let scratch: Mutex<Vec<Vec<f64>>> = Mutex::new(Vec::new());
        for l in 0..self.num_levels() {
            let rows = &self.level_idx[self.level_ptr[l]..self.level_ptr[l + 1]];
            let tasks: Vec<RowTask> = rows
                .iter()
                .map(|&j| RowTask {
                    j,
                    writes: Vec::with_capacity(self.rp_ptr[j + 1] - self.rp_ptr[j]),
                    ..RowTask::default()
                })
                .collect();
            let mut buf = DeviceBuffer::from_host(Arc::clone(device.stats()), &tasks);
            {
                let lvalues_ref: &[f64] = &lvalues;
                let d_ref: &[f64] = &d;
                device.launch_blocks("ldl_refactor_level", &mut buf, |_, task: &mut RowTask| {
                    // Drop the pool guard before the O(n) zero-fill so
                    // first-time allocations of concurrent workers don't
                    // serialize on the lock.
                    let popped = scratch.lock().pop();
                    let mut y = popped.unwrap_or_else(|| vec![0.0f64; self.n]);
                    let dj = self.replay_row_supernodal(
                        task.j,
                        values,
                        lvalues_ref,
                        d_ref,
                        &mut y,
                        &mut task.writes,
                    );
                    scratch.lock().push(y);
                    task.raw_pivot = dj;
                    let expected = signs.get(task.j).copied().unwrap_or(0);
                    let dj_reg = crate::ldl::regularize_pivot(dj, expected, opts);
                    task.regularized = dj_reg != dj;
                    task.breakdown = dj_reg == 0.0;
                    task.dj = dj_reg;
                });
            }
            // Commit the level in ascending row order (the level schedule
            // stores rows ascending), so regularization counts and the
            // breakdown column are schedule-independent.
            for task in buf.to_host() {
                if task.breakdown {
                    return Err(SparseError::Breakdown {
                        column: task.j,
                        pivot: task.raw_pivot,
                    });
                }
                for (slot, v) in task.writes {
                    lvalues[slot] = v;
                }
                d[task.j] = task.dj;
                if task.regularized {
                    num_regularized += 1;
                }
            }
        }
        Ok(LdlFactor::from_parts(
            n,
            Arc::clone(&self.lcolptr),
            Arc::clone(&self.lrowind),
            lvalues,
            d,
            Arc::clone(&self.ordering),
            num_regularized,
        ))
    }

    /// Refactorize from a whole matrix, validating that its pattern matches
    /// the analyzed one exactly.
    pub fn refactor_matrix(&self, a: &Csc, opts: &LdlOptions) -> Result<LdlFactor, SparseError> {
        self.check_same_pattern(a)?;
        self.refactor(&a.values, opts)
    }

    /// Device-launched variant of [`Self::refactor_matrix`].
    pub fn refactor_matrix_on(
        &self,
        device: &Device,
        a: &Csc,
        opts: &LdlOptions,
    ) -> Result<LdlFactor, SparseError> {
        self.check_same_pattern(a)?;
        self.refactor_on(device, &a.values, opts)
    }

    fn check_values_len(&self, values: &[f64]) -> Result<(), SparseError> {
        if values.len() != self.a_rowind.len() {
            return Err(SparseError::Shape(format!(
                "value slice has length {}, analyzed pattern stores {}",
                values.len(),
                self.a_rowind.len()
            )));
        }
        Ok(())
    }

    /// True when `a` has exactly the analyzed sparsity pattern.
    pub fn same_pattern(&self, a: &Csc) -> bool {
        a.nrows == self.n
            && a.ncols == self.n
            && a.colptr == self.a_colptr
            && a.rowind == self.a_rowind
    }

    fn check_same_pattern(&self, a: &Csc) -> Result<(), SparseError> {
        if !self.same_pattern(a) {
            return Err(SparseError::Shape(
                "matrix pattern differs from the analyzed pattern; re-analyze".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn factor_bits(f: &LdlFactor) -> (Vec<u64>, Vec<u64>, usize) {
        (
            f.l_values().iter().map(|v| v.to_bits()).collect(),
            f.d_values().iter().map(|v| v.to_bits()).collect(),
            f.num_regularized,
        )
    }

    /// A small quasi-definite KKT-shaped matrix [H Jᵀ; J −δI].
    fn kkt_example(h_scale: f64) -> Csc {
        let mut coo = Coo::new(5, 5);
        for i in 0..3 {
            coo.push(i, i, h_scale * (2.0 + i as f64));
        }
        coo.push(0, 1, 0.4);
        coo.push(1, 0, 0.4);
        for (r, c, v) in [(3, 0, 1.0), (3, 1, 1.0), (4, 1, -2.0), (4, 2, 0.7)] {
            coo.push(r, c, v);
            coo.push(c, r, v);
        }
        coo.push(3, 3, -1e-8);
        coo.push(4, 4, -1e-8);
        coo.to_csc()
    }

    fn kkt_opts() -> LdlOptions {
        LdlOptions {
            expected_signs: vec![1, 1, 1, -1, -1],
            ..Default::default()
        }
    }

    #[test]
    fn refactor_matches_fresh_factorization_bitwise() {
        let a = kkt_example(1.0);
        let opts = kkt_opts();
        let ordering = Ordering::rcm(&a);
        let sym = LdlSymbolic::analyze(&a, ordering.clone()).unwrap();
        let fresh = LdlFactor::factorize_with(&a, ordering, &opts).unwrap();
        let re = sym.refactor_matrix(&a, &opts).unwrap();
        assert_eq!(factor_bits(&fresh), factor_bits(&re));
        // New values, same pattern: still bitwise identical to a fresh run.
        let b = kkt_example(3.5);
        let fresh_b = LdlFactor::factorize_with(&b, sym.ordering().clone(), &opts).unwrap();
        let re_b = sym.refactor_matrix(&b, &opts).unwrap();
        assert_eq!(factor_bits(&fresh_b), factor_bits(&re_b));
        let rhs = vec![1.0, -2.0, 0.5, 0.1, -0.3];
        assert_eq!(
            fresh_b
                .solve(&rhs)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            re_b.solve(&rhs)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn device_refactor_matches_host_on_every_backend() {
        let a = kkt_example(2.0);
        let opts = kkt_opts();
        let sym = LdlSymbolic::analyze_rcm(&a).unwrap();
        let reference = sym.refactor_matrix(&a, &opts).unwrap();
        for dev in [
            Device::parallel(),
            Device::sequential(),
            Device::vectorized(),
        ] {
            let f = sym.refactor_matrix_on(&dev, &a, &opts).unwrap();
            assert_eq!(factor_bits(&reference), factor_bits(&f));
        }
    }

    #[test]
    fn regularized_pivots_are_replayed_identically() {
        // Wrong-signed (2,2) pivot given the expected signs: the fresh path
        // regularizes it, and the replay must do exactly the same.
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 2, 4.0); // expected negative below
        coo.push(0, 2, 1.0);
        coo.push(2, 0, 1.0);
        let a = coo.to_csc();
        let opts = LdlOptions {
            expected_signs: vec![1, 1, -1],
            ..Default::default()
        };
        let sym = LdlSymbolic::analyze_rcm(&a).unwrap();
        let fresh = LdlFactor::factorize_with(&a, sym.ordering().clone(), &opts).unwrap();
        let re = sym.refactor_matrix(&a, &opts).unwrap();
        let dev = sym
            .refactor_matrix_on(&Device::parallel(), &a, &opts)
            .unwrap();
        assert!(fresh.num_regularized > 0);
        assert_eq!(factor_bits(&fresh), factor_bits(&re));
        assert_eq!(factor_bits(&fresh), factor_bits(&dev));
    }

    #[test]
    fn level_schedule_covers_every_row_once() {
        let a = kkt_example(1.0);
        let sym = LdlSymbolic::analyze_rcm(&a).unwrap();
        let mut seen = vec![false; sym.dim()];
        for l in 0..sym.num_levels() {
            for &j in &sym.level_idx[sym.level_ptr[l]..sym.level_ptr[l + 1]] {
                assert!(!seen[j], "row {j} scheduled twice");
                seen[j] = true;
                // Every dependency of row j resolves to an earlier level.
                for &i in &sym.rp_idx[sym.rp_ptr[j]..sym.rp_ptr[j + 1]] {
                    let li = (0..sym.num_levels())
                        .find(|&lv| {
                            sym.level_idx[sym.level_ptr[lv]..sym.level_ptr[lv + 1]].contains(&i)
                        })
                        .unwrap();
                    assert!(
                        li < l,
                        "row {j} (level {l}) depends on row {i} (level {li})"
                    );
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn supernodal_refactor_matches_scalar_bitwise() {
        for scale in [1.0, 3.5, -0.2] {
            let a = kkt_example(scale);
            let opts = kkt_opts();
            let sym = LdlSymbolic::analyze_rcm(&a).unwrap();
            let scalar = sym.refactor_matrix(&a, &opts).unwrap();
            let sn = sym.refactor_supernodal(&a.values, &opts).unwrap();
            assert_eq!(factor_bits(&scalar), factor_bits(&sn));
        }
    }

    #[test]
    fn dense_pattern_collapses_into_one_supernode() {
        // A dense SPD matrix under the identity ordering: every column's
        // below-diagonal pattern nests into the next, so the whole matrix is
        // one supernode (up to the width cap) and the segmented replay runs
        // dense rank-w updates. Must still be bitwise identical to both the
        // scalar replay and a fresh factorization.
        let n = 12;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            for j in 0..n {
                let v = if i == j {
                    n as f64 + 1.0
                } else {
                    1.0 / (1.0 + (i as f64 - j as f64).abs())
                };
                coo.push(i, j, v);
            }
        }
        let a = coo.to_csc();
        let identity = Ordering::from_perm((0..n).collect());
        let sym = LdlSymbolic::analyze(&a, identity.clone()).unwrap();
        assert_eq!(sym.num_supernodes(), 1, "dense L should be one supernode");
        assert_eq!(sym.max_supernode_width(), n);
        let opts = LdlOptions::default();
        let fresh = LdlFactor::factorize_with(&a, identity, &opts).unwrap();
        let scalar = sym.refactor(&a.values, &opts).unwrap();
        let sn = sym.refactor_supernodal(&a.values, &opts).unwrap();
        assert_eq!(factor_bits(&fresh), factor_bits(&scalar));
        assert_eq!(factor_bits(&fresh), factor_bits(&sn));
        for dev in [
            Device::parallel(),
            Device::sequential(),
            Device::vectorized(),
        ] {
            let f = sym.refactor_matrix_on(&dev, &a, &opts).unwrap();
            assert_eq!(factor_bits(&fresh), factor_bits(&f));
        }
    }

    #[test]
    fn segment_lists_concatenate_to_the_scalar_replay_order() {
        let a = kkt_example(1.0);
        let sym = LdlSymbolic::analyze_rcm(&a).unwrap();
        for j in 0..sym.dim() {
            let mut flat = Vec::new();
            for s in sym.seg_ptr[j]..sym.seg_ptr[j + 1] {
                let c = sym.seg_col[s];
                let w = sym.seg_len[s];
                assert!(c + w <= sym.sn_end_of_col[c], "segment crosses supernode");
                flat.extend(c..c + w);
            }
            assert_eq!(flat, sym.rp_idx[sym.rp_ptr[j]..sym.rp_ptr[j + 1]]);
        }
        // The partition covers every column exactly once, widths within cap.
        let mut c = 0;
        let mut count = 0;
        while c < sym.dim() {
            let end = sym.sn_end_of_col[c];
            assert!(end > c && end - c <= SUPERNODE_MAX_WIDTH);
            for col in c..end {
                assert_eq!(sym.sn_end_of_col[col], end);
            }
            count += 1;
            c = end;
        }
        assert_eq!(count, sym.num_supernodes());
    }

    #[test]
    fn pattern_mismatch_is_rejected() {
        let a = kkt_example(1.0);
        let sym = LdlSymbolic::analyze_rcm(&a).unwrap();
        let mut coo = Coo::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 1.0);
        }
        let diag = coo.to_csc();
        assert!(matches!(
            sym.refactor_matrix(&diag, &LdlOptions::default()),
            Err(SparseError::Shape(_))
        ));
        assert!(matches!(
            sym.refactor(&[0.0; 3], &LdlOptions::default()),
            Err(SparseError::Shape(_))
        ));
    }

    #[test]
    fn unpaired_entry_is_dropped_exactly_like_the_fresh_path() {
        // An (0,1) entry with no (1,0) partner flips into the lower triangle
        // under the reversing permutation and is dropped — by the fresh
        // factorization and by the frozen analysis alike, so the replay must
        // still agree bitwise.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(0, 1, 0.5); // no (1, 0) partner
        let a = coo.to_csc();
        let rev = Ordering::from_perm(vec![1, 0]);
        let sym = LdlSymbolic::analyze(&a, rev.clone()).unwrap();
        let fresh = LdlFactor::factorize_with(&a, rev, &LdlOptions::default()).unwrap();
        let re = sym.refactor_matrix(&a, &LdlOptions::default()).unwrap();
        assert_eq!(factor_bits(&fresh), factor_bits(&re));
    }
}
