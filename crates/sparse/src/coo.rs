//! Triplet (coordinate) sparse matrix builder.

use crate::csc::Csc;

/// A coordinate-format sparse matrix builder. Duplicate entries are summed
/// when converting to CSC, which makes assembly of Jacobians and Hessians by
//  accumulation straightforward.
#[derive(Debug, Clone, Default)]
pub struct Coo {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row indices.
    pub rows: Vec<usize>,
    /// Column indices.
    pub cols: Vec<usize>,
    /// Values.
    pub vals: Vec<f64>,
}

impl Coo {
    /// Create an empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Create with reserved capacity for `nnz` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Add an entry. Duplicates are allowed and summed on conversion.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        debug_assert!(row < self.nrows, "row {row} out of bounds {}", self.nrows);
        debug_assert!(col < self.ncols, "col {col} out of bounds {}", self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Number of stored (possibly duplicate) entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Remove all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.cols.clear();
        self.vals.clear();
    }

    /// Convert to compressed sparse column format, summing duplicates and
    /// sorting row indices within each column.
    pub fn to_csc(&self) -> Csc {
        Csc::from_triplets(self.nrows, self.ncols, &self.rows, &self.cols, &self.vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut a = Coo::new(3, 3);
        a.push(0, 0, 1.0);
        a.push(0, 0, 2.5);
        a.push(2, 1, -1.0);
        let c = a.to_csc();
        assert_eq!(c.nnz(), 2);
        assert!((c.get(0, 0) - 3.5).abs() < 1e-15);
        assert!((c.get(2, 1) + 1.0).abs() < 1e-15);
        assert_eq!(c.get(1, 1), 0.0);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut a = Coo::with_capacity(4, 5, 10);
        a.push(1, 1, 1.0);
        a.clear();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.nrows, 4);
        assert_eq!(a.ncols, 5);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_bounds_panics_in_debug() {
        let mut a = Coo::new(2, 2);
        a.push(2, 0, 1.0);
    }
}
