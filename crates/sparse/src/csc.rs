//! Compressed sparse column matrices.

/// A compressed-sparse-column matrix. Row indices within a column are sorted
/// and unique.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Column pointers, length `ncols + 1`.
    pub colptr: Vec<usize>,
    /// Row indices, length `nnz`.
    pub rowind: Vec<usize>,
    /// Values, length `nnz`.
    pub values: Vec<f64>,
}

impl Csc {
    /// An empty (all-zero) matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Csc {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowind: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Csc {
            nrows: n,
            ncols: n,
            colptr: (0..=n).collect(),
            rowind: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Build from triplets, summing duplicates and sorting rows per column.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: &[usize],
        cols: &[usize],
        vals: &[f64],
    ) -> Self {
        assert_eq!(rows.len(), cols.len());
        assert_eq!(rows.len(), vals.len());
        // Count entries per column.
        let mut count = vec![0usize; ncols + 1];
        for &c in cols {
            assert!(c < ncols, "column index {c} out of bounds {ncols}");
            count[c + 1] += 1;
        }
        for j in 0..ncols {
            count[j + 1] += count[j];
        }
        let colptr_raw = count.clone();
        let mut rowind = vec![0usize; rows.len()];
        let mut values = vec![0.0; rows.len()];
        let mut next = colptr_raw.clone();
        for k in 0..rows.len() {
            assert!(
                rows[k] < nrows,
                "row index {} out of bounds {nrows}",
                rows[k]
            );
            let c = cols[k];
            let slot = next[c];
            rowind[slot] = rows[k];
            values[slot] = vals[k];
            next[c] += 1;
        }
        // Sort each column by row and sum duplicates in place.
        let mut out_colptr = vec![0usize; ncols + 1];
        let mut out_rowind = Vec::with_capacity(rows.len());
        let mut out_values = Vec::with_capacity(rows.len());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..ncols {
            scratch.clear();
            for k in colptr_raw[j]..colptr_raw[j + 1] {
                scratch.push((rowind[k], values[k]));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < scratch.len() {
                let r = scratch[i].0;
                let mut v = scratch[i].1;
                let mut k = i + 1;
                while k < scratch.len() && scratch[k].0 == r {
                    v += scratch[k].1;
                    k += 1;
                }
                out_rowind.push(r);
                out_values.push(v);
                i = k;
            }
            out_colptr[j + 1] = out_rowind.len();
        }
        Csc {
            nrows,
            ncols,
            colptr: out_colptr,
            rowind: out_rowind,
            values: out_values,
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Get an entry (O(log nnz_col) binary search). Zero when not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let lo = self.colptr[col];
        let hi = self.colptr[col + 1];
        match self.rowind[lo..hi].binary_search(&row) {
            Ok(p) => self.values[lo + p],
            Err(_) => 0.0,
        }
    }

    /// `y = A x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        let mut y = vec![0.0; self.nrows];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            for p in self.colptr[j]..self.colptr[j + 1] {
                y[self.rowind[p]] += self.values[p] * xj;
            }
        }
        y
    }

    /// `y = A^T x`.
    pub fn mul_transpose_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows);
        let mut y = vec![0.0; self.ncols];
        for (j, yj) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for p in self.colptr[j]..self.colptr[j + 1] {
                acc += self.values[p] * x[self.rowind[p]];
            }
            *yj = acc;
        }
        y
    }

    /// Transpose.
    pub fn transpose(&self) -> Csc {
        let mut rows = Vec::with_capacity(self.nnz());
        let mut cols = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for j in 0..self.ncols {
            for p in self.colptr[j]..self.colptr[j + 1] {
                rows.push(j);
                cols.push(self.rowind[p]);
                vals.push(self.values[p]);
            }
        }
        Csc::from_triplets(self.ncols, self.nrows, &rows, &cols, &vals)
    }

    /// Extract the upper-triangular part (including the diagonal) of a square
    /// matrix — the storage format expected by the LDLᵀ factorization.
    pub fn upper_triangle(&self) -> Csc {
        assert_eq!(self.nrows, self.ncols, "upper_triangle requires square");
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for j in 0..self.ncols {
            for p in self.colptr[j]..self.colptr[j + 1] {
                if self.rowind[p] <= j {
                    rows.push(self.rowind[p]);
                    cols.push(j);
                    vals.push(self.values[p]);
                }
            }
        }
        Csc::from_triplets(self.nrows, self.ncols, &rows, &cols, &vals)
    }

    /// Symmetric permutation `B = P A P^T` of a square matrix, where
    /// `perm[k]` gives the original index placed at position `k`.
    /// Only defined for square matrices.
    pub fn symmetric_permute(&self, perm: &[usize]) -> Csc {
        assert_eq!(self.nrows, self.ncols);
        assert_eq!(perm.len(), self.ncols);
        let mut inv = vec![0usize; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        let mut rows = Vec::with_capacity(self.nnz());
        let mut cols = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for j in 0..self.ncols {
            for p in self.colptr[j]..self.colptr[j + 1] {
                rows.push(inv[self.rowind[p]]);
                cols.push(inv[j]);
                vals.push(self.values[p]);
            }
        }
        Csc::from_triplets(self.nrows, self.ncols, &rows, &cols, &vals)
    }

    /// Convert to a dense row-major matrix (testing helper; avoid on large
    /// systems).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for (j, col) in self.colptr.windows(2).enumerate() {
            for p in col[0]..col[1] {
                d[self.rowind[p]][j] = self.values[p];
            }
        }
        d
    }

    /// Infinity norm of `A x - b` (testing / residual helper).
    pub fn residual_inf_norm(&self, x: &[f64], b: &[f64]) -> f64 {
        self.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csc {
        // [ 4 1 0 ]
        // [ 1 3 2 ]
        // [ 0 2 5 ]
        Csc::from_triplets(
            3,
            3,
            &[0, 1, 0, 1, 2, 1, 2],
            &[0, 0, 1, 1, 1, 2, 2],
            &[4.0, 1.0, 1.0, 3.0, 2.0, 2.0, 5.0],
        )
    }

    #[test]
    fn triplet_construction_sorted_and_summed() {
        let a = example();
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(2, 1), 2.0);
        assert_eq!(a.get(2, 0), 0.0);
        // rows sorted within each column
        for j in 0..a.ncols {
            for p in a.colptr[j]..a.colptr[j + 1].saturating_sub(1) {
                assert!(a.rowind[p] < a.rowind[p + 1]);
            }
        }
    }

    #[test]
    fn matvec_matches_dense() {
        let a = example();
        let x = vec![1.0, -2.0, 0.5];
        let y = a.mul_vec(&x);
        let d = a.to_dense();
        for i in 0..3 {
            let expect: f64 = (0..3).map(|j| d[i][j] * x[j]).sum();
            assert!((y[i] - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn transpose_of_symmetric_is_identical() {
        let a = example();
        let at = a.transpose();
        assert_eq!(a.to_dense(), at.to_dense());
    }

    #[test]
    fn transpose_matvec_consistent() {
        let a = Csc::from_triplets(2, 3, &[0, 1, 1], &[0, 1, 2], &[2.0, 3.0, -1.0]);
        let x = vec![1.0, 2.0];
        let y1 = a.mul_transpose_vec(&x);
        let y2 = a.transpose().mul_vec(&x);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn upper_triangle_drops_strict_lower() {
        let a = example();
        let u = a.upper_triangle();
        assert_eq!(u.get(1, 0), 0.0);
        assert_eq!(u.get(0, 1), 1.0);
        assert_eq!(u.get(2, 2), 5.0);
        assert_eq!(u.nnz(), 5);
    }

    #[test]
    fn symmetric_permutation_preserves_values() {
        let a = example();
        let perm = vec![2, 0, 1];
        let b = a.symmetric_permute(&perm);
        // b[i][j] == a[perm[i]][perm[j]]
        let da = a.to_dense();
        let db = b.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert!((db[i][j] - da[perm[i]][perm[j]]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn identity_matvec_is_identity() {
        let i = Csc::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.mul_vec(&x), x);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = Csc::zeros(3, 2);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.mul_vec(&[1.0, 1.0]), vec![0.0; 3]);
    }
}
