//! # gridsim-sparse
//!
//! Sparse linear-algebra substrate for the centralized interior-point
//! baseline of the GridADMM reproduction.
//!
//! The paper's core argument is that centralized nonlinear optimization of
//! ACOPF spends more than 80 % of its time factorizing large sparse symmetric
//! indefinite KKT systems — work that parallelizes poorly. To reproduce that
//! baseline faithfully we implement the same cost anatomy here:
//!
//! * triplet ([`coo::Coo`]) and compressed-sparse-column ([`csc::Csc`])
//!   matrix formats,
//! * a fill-reducing ordering ([`ordering`], reverse Cuthill–McKee),
//! * symbolic analysis (elimination tree and column counts, [`symbolic`]),
//! * an up-looking sparse LDLᵀ factorization with dynamic regularization and
//!   inertia reporting for quasi-definite KKT systems ([`ldl`]),
//! * a symbolic-reuse layer ([`refactor`]): analyze a pattern once, then run
//!   numeric-only refactorizations — optionally fanned out over a
//!   [`gridsim_batch::Device`] by elimination-tree level — that are bitwise
//!   identical to fresh factorizations (the Świrydowicz-et-al. fixed-pattern
//!   speedup the interior-point baseline exploits),
//! * and small dense kernels ([`dense`]) shared with the batch TRON solver.

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod ldl;
pub mod ordering;
pub mod refactor;
pub mod symbolic;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use ldl::{LdlFactor, LdlOptions};
pub use ordering::Ordering;
pub use refactor::LdlSymbolic;
pub use symbolic::Symbolic;

/// Error type for sparse linear algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A matrix dimension or index was inconsistent.
    Shape(String),
    /// The factorization broke down (zero or wrongly-signed pivot that could
    /// not be regularized away).
    Breakdown { column: usize, pivot: f64 },
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::Shape(msg) => write!(f, "shape error: {msg}"),
            SparseError::Breakdown { column, pivot } => {
                write!(f, "LDL^T breakdown at column {column}: pivot {pivot}")
            }
        }
    }
}

impl std::error::Error for SparseError {}
