//! Small dense linear-algebra kernels.
//!
//! These cover the tiny systems that appear inside the component subproblems:
//! the 2×2 Schur complements of the bus updates and the ≤ 8×8 dense Hessians
//! of the branch subproblems. They are deliberately allocation-free where
//! possible so they can run inside a simulated GPU thread block.

/// Solve a 2x2 linear system `A x = b`. Returns `None` when `A` is singular.
#[inline]
pub fn solve2(a: [[f64; 2]; 2], b: [f64; 2]) -> Option<[f64; 2]> {
    let det = a[0][0] * a[1][1] - a[0][1] * a[1][0];
    if det.abs() < 1e-300 {
        return None;
    }
    Some([
        (b[0] * a[1][1] - b[1] * a[0][1]) / det,
        (a[0][0] * b[1] - a[1][0] * b[0]) / det,
    ])
}

/// Dense symmetric matrix stored as a full row-major `n x n` array, sized at
/// runtime but intended for very small `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct SmallMatrix {
    /// Dimension.
    pub n: usize,
    /// Row-major entries.
    pub data: Vec<f64>,
}

impl SmallMatrix {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        SmallMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Matrix-vector product `y = A x`.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Cholesky factorization in place (lower triangle). Returns `false` when
    /// the matrix is not positive definite.
    pub fn cholesky_in_place(&mut self) -> bool {
        let n = self.n;
        for j in 0..n {
            let mut d = self[(j, j)];
            for k in 0..j {
                d -= self[(j, k)] * self[(j, k)];
            }
            if d <= 0.0 {
                return false;
            }
            let d = d.sqrt();
            self[(j, j)] = d;
            for i in j + 1..n {
                let mut v = self[(i, j)];
                for k in 0..j {
                    v -= self[(i, k)] * self[(j, k)];
                }
                self[(i, j)] = v / d;
            }
        }
        true
    }

    /// Solve `L L^T x = b` given a Cholesky factor stored in the lower
    /// triangle (as produced by [`Self::cholesky_in_place`]).
    pub fn cholesky_solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut x = b.to_vec();
        // Forward solve L y = b.
        for i in 0..n {
            let mut v = x[i];
            for k in 0..i {
                v -= self[(i, k)] * x[k];
            }
            x[i] = v / self[(i, i)];
        }
        // Back solve L^T x = y.
        for i in (0..n).rev() {
            let mut v = x[i];
            for k in i + 1..n {
                v -= self[(k, i)] * x[k];
            }
            x[i] = v / self[(i, i)];
        }
        x
    }
}

impl std::ops::Index<(usize, usize)> for SmallMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for SmallMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).fold(0.0, f64::max)
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve2_exact() {
        let a = [[2.0, 1.0], [1.0, 3.0]];
        let b = [5.0, 10.0];
        let x = solve2(a, b).unwrap();
        assert!((a[0][0] * x[0] + a[0][1] * x[1] - b[0]).abs() < 1e-12);
        assert!((a[1][0] * x[0] + a[1][1] * x[1] - b[1]).abs() < 1e-12);
    }

    #[test]
    fn solve2_singular_returns_none() {
        assert!(solve2([[1.0, 2.0], [2.0, 4.0]], [1.0, 2.0]).is_none());
    }

    #[test]
    fn cholesky_solve_spd() {
        let mut m = SmallMatrix::zeros(3);
        let a = [[4.0, 1.0, 0.0], [1.0, 3.0, 2.0], [0.0, 2.0, 5.0]];
        for i in 0..3 {
            for j in 0..3 {
                m[(i, j)] = a[i][j];
            }
        }
        let orig = m.clone();
        assert!(m.cholesky_in_place());
        let b = vec![1.0, 2.0, 3.0];
        let x = m.cholesky_solve(&b);
        let mut r = vec![0.0; 3];
        orig.mul_vec(&x, &mut r);
        for i in 0..3 {
            assert!((r[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut m = SmallMatrix::identity(2);
        m[(1, 1)] = -1.0;
        assert!(!m.cholesky_in_place());
    }

    #[test]
    fn vector_helpers() {
        let a = vec![3.0, -4.0];
        assert!((norm2(&a) - 5.0).abs() < 1e-12);
        assert!((norm_inf(&a) - 4.0).abs() < 1e-12);
        assert!((dot(&a, &a) - 25.0).abs() < 1e-12);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, vec![7.0, -7.0]);
    }

    #[test]
    fn identity_mul_is_noop() {
        let m = SmallMatrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 4];
        m.mul_vec(&x, &mut y);
        assert_eq!(x, y);
    }
}
