//! Symbolic analysis for sparse LDLᵀ: elimination tree and column counts.
//!
//! Follows the classic up-looking analysis (Davis, *Direct Methods for Sparse
//! Linear Systems*): the matrix is accessed by its upper-triangular part in
//! CSC layout; the elimination tree parent pointers and per-column nonzero
//! counts of `L` are computed in one pass.

use crate::csc::Csc;

/// Result of the symbolic analysis of a symmetric matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbolic {
    /// Elimination-tree parent of each column (`usize::MAX` for roots).
    pub parent: Vec<usize>,
    /// Number of strictly-below-diagonal nonzeros in each column of `L`.
    pub lnz: Vec<usize>,
    /// Column pointers of `L` (exclusive prefix sum of `lnz`).
    pub lcolptr: Vec<usize>,
}

impl Symbolic {
    /// Analyze the upper-triangular pattern of `a` (entries with row > col are
    /// ignored so a full symmetric matrix may also be passed).
    pub fn analyze(a: &Csc) -> Symbolic {
        assert_eq!(a.nrows, a.ncols, "symbolic analysis requires square input");
        let n = a.ncols;
        let none = usize::MAX;
        let mut parent = vec![none; n];
        let mut flag = vec![none; n];
        let mut lnz = vec![0usize; n];
        for j in 0..n {
            flag[j] = j;
            for p in a.colptr[j]..a.colptr[j + 1] {
                let mut i = a.rowind[p];
                if i >= j {
                    continue;
                }
                // Walk from i up the elimination tree until reaching a node
                // already flagged for column j.
                while flag[i] != j {
                    if parent[i] == none {
                        parent[i] = j;
                    }
                    lnz[i] += 1;
                    flag[i] = j;
                    i = parent[i];
                }
            }
        }
        let mut lcolptr = vec![0usize; n + 1];
        for j in 0..n {
            lcolptr[j + 1] = lcolptr[j] + lnz[j];
        }
        Symbolic {
            parent,
            lnz,
            lcolptr,
        }
    }

    /// Total number of strictly-lower-triangular nonzeros of `L`.
    pub fn total_lnz(&self) -> usize {
        *self.lcolptr.last().unwrap_or(&0)
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.parent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    /// Tridiagonal SPD matrix.
    fn tridiag(n: usize) -> Csc {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        coo.to_csc()
    }

    #[test]
    fn tridiagonal_has_chain_etree_and_no_fill() {
        let a = tridiag(6);
        let s = Symbolic::analyze(&a.upper_triangle());
        // Parent of column j is j+1, roots at the end.
        for j in 0..5 {
            assert_eq!(s.parent[j], j + 1);
        }
        assert_eq!(s.parent[5], usize::MAX);
        // Exactly one below-diagonal nonzero per column except the last.
        assert_eq!(s.lnz, vec![1, 1, 1, 1, 1, 0]);
        assert_eq!(s.total_lnz(), 5);
    }

    #[test]
    fn arrow_matrix_fill_pattern() {
        // Arrow pointing down-right: dense last row/column; no fill when the
        // dense row is ordered last.
        let n = 5;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 10.0);
            if i + 1 < n {
                coo.push(i, n - 1, 1.0);
                coo.push(n - 1, i, 1.0);
            }
        }
        let s = Symbolic::analyze(&coo.to_csc().upper_triangle());
        assert_eq!(s.total_lnz(), n - 1);
        for j in 0..n - 1 {
            assert_eq!(s.parent[j], n - 1);
        }
    }

    #[test]
    fn diagonal_matrix_has_empty_tree() {
        let mut coo = Coo::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 1.0);
        }
        let s = Symbolic::analyze(&coo.to_csc());
        assert!(s.parent.iter().all(|&p| p == usize::MAX));
        assert_eq!(s.total_lnz(), 0);
    }

    #[test]
    fn full_matrix_input_equivalent_to_upper() {
        let a = tridiag(8);
        let s_full = Symbolic::analyze(&a);
        let s_upper = Symbolic::analyze(&a.upper_triangle());
        assert_eq!(s_full, s_upper);
    }
}
