//! A full ACOPF operating point and derived quantities.

use crate::flows::branch_flows;
use gridsim_grid::network::{BranchEnd, Network};
use serde::{Deserialize, Serialize};

/// An operating point of the network: voltage magnitudes and angles per bus,
/// real and reactive dispatch per generator. All values are per unit (angles
/// in radians).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpfSolution {
    /// Voltage magnitude per bus (p.u.).
    pub vm: Vec<f64>,
    /// Voltage angle per bus (radians).
    pub va: Vec<f64>,
    /// Real power output per generator (p.u.).
    pub pg: Vec<f64>,
    /// Reactive power output per generator (p.u.).
    pub qg: Vec<f64>,
}

/// Per-branch flows computed from bus voltages.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BranchFlows {
    /// Real power into the branch at the from bus.
    pub pij: Vec<f64>,
    /// Reactive power into the branch at the from bus.
    pub qij: Vec<f64>,
    /// Real power into the branch at the to bus.
    pub pji: Vec<f64>,
    /// Reactive power into the branch at the to bus.
    pub qji: Vec<f64>,
}

impl OpfSolution {
    /// A flat solution: unit voltage magnitudes, zero angles, zero dispatch.
    pub fn flat(net: &Network) -> OpfSolution {
        OpfSolution {
            vm: vec![1.0; net.nbus],
            va: vec![0.0; net.nbus],
            pg: vec![0.0; net.ngen],
            qg: vec![0.0; net.ngen],
        }
    }

    /// Generation cost ($/hr) of this dispatch.
    pub fn objective(&self, net: &Network) -> f64 {
        net.generation_cost(&self.pg)
    }

    /// Recompute every branch flow from the bus voltages — the paper's
    /// Section IV-A procedure: the reported solution uses dispatch from the
    /// generator subproblems and voltages from the bus subproblems, with
    /// flows re-derived from the voltages for consistency.
    pub fn branch_flows(&self, net: &Network) -> BranchFlows {
        let mut flows = BranchFlows {
            pij: vec![0.0; net.nbranch],
            qij: vec![0.0; net.nbranch],
            pji: vec![0.0; net.nbranch],
            qji: vec![0.0; net.nbranch],
        };
        for l in 0..net.nbranch {
            let i = net.br_from[l];
            let j = net.br_to[l];
            let f = branch_flows(&net.br_y[l], self.vm[i], self.vm[j], self.va[i], self.va[j]);
            flows.pij[l] = f[0];
            flows.qij[l] = f[1];
            flows.pji[l] = f[2];
            flows.qji[l] = f[3];
        }
        flows
    }

    /// Real and reactive power-balance mismatch at every bus
    /// (generation − load − shunt − line injections); zero at a feasible
    /// point. Returns `(p_mismatch, q_mismatch)`.
    pub fn power_mismatch(&self, net: &Network) -> (Vec<f64>, Vec<f64>) {
        let flows = self.branch_flows(net);
        self.power_mismatch_with_flows(net, &flows)
    }

    /// Same as [`Self::power_mismatch`] but reusing precomputed flows.
    pub fn power_mismatch_with_flows(
        &self,
        net: &Network,
        flows: &BranchFlows,
    ) -> (Vec<f64>, Vec<f64>) {
        let mut dp = vec![0.0; net.nbus];
        let mut dq = vec![0.0; net.nbus];
        for b in 0..net.nbus {
            let vm2 = self.vm[b] * self.vm[b];
            dp[b] = -net.pd[b] - net.gs[b] * vm2;
            dq[b] = -net.qd[b] + net.bs[b] * vm2;
        }
        for (g, &b) in net.gen_bus.iter().enumerate() {
            dp[b] += self.pg[g];
            dq[b] += self.qg[g];
        }
        for b in 0..net.nbus {
            for &(l, end) in &net.branches_at_bus[b] {
                match end {
                    BranchEnd::From => {
                        dp[b] -= flows.pij[l];
                        dq[b] -= flows.qij[l];
                    }
                    BranchEnd::To => {
                        dp[b] -= flows.pji[l];
                        dq[b] -= flows.qji[l];
                    }
                }
            }
        }
        (dp, dq)
    }

    /// Total real-power losses on all branches (p.u.).
    pub fn total_losses(&self, net: &Network) -> f64 {
        let flows = self.branch_flows(net);
        (0..net.nbranch).map(|l| flows.pij[l] + flows.pji[l]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_grid::cases;

    #[test]
    fn flat_solution_dimensions() {
        let net = cases::case9().compile().unwrap();
        let s = OpfSolution::flat(&net);
        assert_eq!(s.vm.len(), 9);
        assert_eq!(s.pg.len(), 3);
        assert_eq!(s.objective(&net), 150.0 + 600.0 + 335.0); // constants only
    }

    #[test]
    fn flat_voltages_give_zero_flow_on_unshunted_lines() {
        // At flat voltage (all 1.0 p.u., zero angles) only the charging
        // susceptance produces (reactive) flow.
        let net = cases::case9().compile().unwrap();
        let s = OpfSolution::flat(&net);
        let flows = s.branch_flows(&net);
        for l in 0..net.nbranch {
            assert!(flows.pij[l].abs() < 1e-9, "real flow should vanish");
        }
    }

    #[test]
    fn mismatch_at_flat_point_equals_negative_load_plus_charging() {
        let net = cases::case9().compile().unwrap();
        let s = OpfSolution::flat(&net);
        let (dp, _dq) = s.power_mismatch(&net);
        for (dpb, pdb) in dp.iter().zip(&net.pd) {
            assert!(
                (dpb + pdb).abs() < 1e-9,
                "real mismatch at flat point is just -pd"
            );
        }
    }

    #[test]
    fn mismatch_respects_generation_injection() {
        let net = cases::two_bus().compile().unwrap();
        let mut s = OpfSolution::flat(&net);
        s.pg[0] = 0.8;
        let (dp, _) = s.power_mismatch(&net);
        // Bus 0 hosts the generator; with zero flows the mismatch is +0.8.
        assert!((dp[0] - 0.8).abs() < 1e-9);
        // Bus 1 has the 0.8 p.u. load.
        assert!((dp[1] + 0.8).abs() < 1e-9);
    }

    #[test]
    fn losses_are_nonnegative_for_realistic_voltages() {
        let net = cases::case14().compile().unwrap();
        let mut s = OpfSolution::flat(&net);
        // Introduce a modest angle gradient to create flows.
        for b in 0..net.nbus {
            s.va[b] = -0.01 * b as f64;
            s.vm[b] = 1.0 + 0.002 * (b % 5) as f64;
        }
        assert!(s.total_losses(&net) >= 0.0);
    }
}
