//! Branch power-flow functions in polar voltage coordinates, with analytic
//! first and second derivatives.
//!
//! Every branch flow in formulation (1) of the paper has the common form
//!
//! ```text
//! F(v_i, v_j, θ_i, θ_j) = α_f v_i² + α_t v_j² + v_i v_j (A cos θ + B sin θ),
//! θ = θ_i - θ_j
//! ```
//!
//! with constants `(α_f, α_t, A, B)` determined by the branch admittance and
//! which of the four flows (`p_ij`, `q_ij`, `p_ji`, `q_ji`) is being
//! evaluated. Exploiting this shared structure keeps the derivative code in
//! one place; both the interior-point baseline (constraint Jacobian/Hessian)
//! and the ADMM branch subproblem (objective gradient/Hessian of
//! formulation (4)) are built on these routines.

use gridsim_grid::branch::BranchAdmittance;
use serde::{Deserialize, Serialize};

/// Which of the four branch flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowKind {
    /// Real power entering the branch at the from side.
    Pij,
    /// Reactive power entering the branch at the from side.
    Qij,
    /// Real power entering the branch at the to side.
    Pji,
    /// Reactive power entering the branch at the to side.
    Qji,
}

impl FlowKind {
    /// All four flows.
    pub fn all() -> [FlowKind; 4] {
        [FlowKind::Pij, FlowKind::Qij, FlowKind::Pji, FlowKind::Qji]
    }
}

/// The coefficients `(α_f, α_t, A, B)` of one branch flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchFlow {
    /// Coefficient on `v_i²`.
    pub alpha_from: f64,
    /// Coefficient on `v_j²`.
    pub alpha_to: f64,
    /// Coefficient on `v_i v_j cos θ`.
    pub a: f64,
    /// Coefficient on `v_i v_j sin θ`.
    pub b: f64,
}

/// Gradient of a branch flow with respect to `(v_i, v_j, θ_i, θ_j)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FlowGrad {
    pub dvi: f64,
    pub dvj: f64,
    pub dti: f64,
    pub dtj: f64,
}

/// Symmetric Hessian of a branch flow with respect to
/// `(v_i, v_j, θ_i, θ_j)`, stored as the upper triangle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FlowHess {
    pub vivi: f64,
    pub vivj: f64,
    pub viti: f64,
    pub vitj: f64,
    pub vjvj: f64,
    pub vjti: f64,
    pub vjtj: f64,
    pub titi: f64,
    pub titj: f64,
    pub tjtj: f64,
}

impl FlowHess {
    /// View the Hessian as a dense 4×4 row-major array in the variable order
    /// `(v_i, v_j, θ_i, θ_j)`.
    pub fn to_dense(&self) -> [[f64; 4]; 4] {
        [
            [self.vivi, self.vivj, self.viti, self.vitj],
            [self.vivj, self.vjvj, self.vjti, self.vjtj],
            [self.viti, self.vjti, self.titi, self.titj],
            [self.vitj, self.vjtj, self.titj, self.tjtj],
        ]
    }
}

impl BranchFlow {
    /// The flow coefficients of `kind` for a branch with admittance `y`.
    pub fn from_admittance(y: &BranchAdmittance, kind: FlowKind) -> BranchFlow {
        match kind {
            FlowKind::Pij => BranchFlow {
                alpha_from: y.gii,
                alpha_to: 0.0,
                a: y.gij,
                b: y.bij,
            },
            FlowKind::Qij => BranchFlow {
                alpha_from: -y.bii,
                alpha_to: 0.0,
                a: -y.bij,
                b: y.gij,
            },
            FlowKind::Pji => BranchFlow {
                alpha_from: 0.0,
                alpha_to: y.gjj,
                a: y.gji,
                b: -y.bji,
            },
            FlowKind::Qji => BranchFlow {
                alpha_from: 0.0,
                alpha_to: -y.bjj,
                a: -y.bji,
                b: -y.gji,
            },
        }
    }

    /// All four flows of a branch in the order of [`FlowKind::all`].
    pub fn all_from_admittance(y: &BranchAdmittance) -> [BranchFlow; 4] {
        [
            BranchFlow::from_admittance(y, FlowKind::Pij),
            BranchFlow::from_admittance(y, FlowKind::Qij),
            BranchFlow::from_admittance(y, FlowKind::Pji),
            BranchFlow::from_admittance(y, FlowKind::Qji),
        ]
    }

    /// Flow value at voltage magnitudes `vi, vj` and angles `ti, tj`.
    #[inline]
    pub fn value(&self, vi: f64, vj: f64, ti: f64, tj: f64) -> f64 {
        let theta = ti - tj;
        let (s, c) = theta.sin_cos();
        self.alpha_from * vi * vi + self.alpha_to * vj * vj + vi * vj * (self.a * c + self.b * s)
    }

    /// Gradient with respect to `(v_i, v_j, θ_i, θ_j)`.
    #[inline]
    pub fn gradient(&self, vi: f64, vj: f64, ti: f64, tj: f64) -> FlowGrad {
        let theta = ti - tj;
        let (s, c) = theta.sin_cos();
        let phi = self.a * c + self.b * s;
        let dphi = -self.a * s + self.b * c;
        FlowGrad {
            dvi: 2.0 * self.alpha_from * vi + vj * phi,
            dvj: 2.0 * self.alpha_to * vj + vi * phi,
            dti: vi * vj * dphi,
            dtj: -vi * vj * dphi,
        }
    }

    /// Hessian with respect to `(v_i, v_j, θ_i, θ_j)`.
    #[inline]
    pub fn hessian(&self, vi: f64, vj: f64, ti: f64, tj: f64) -> FlowHess {
        let theta = ti - tj;
        let (s, c) = theta.sin_cos();
        let phi = self.a * c + self.b * s;
        let dphi = -self.a * s + self.b * c;
        FlowHess {
            vivi: 2.0 * self.alpha_from,
            vivj: phi,
            viti: vj * dphi,
            vitj: -vj * dphi,
            vjvj: 2.0 * self.alpha_to,
            vjti: vi * dphi,
            vjtj: -vi * dphi,
            titi: -vi * vj * phi,
            titj: vi * vj * phi,
            tjtj: -vi * vj * phi,
        }
    }
}

/// Compute all four flow values of a branch at once.
pub fn branch_flows(y: &BranchAdmittance, vi: f64, vj: f64, ti: f64, tj: f64) -> [f64; 4] {
    let flows = BranchFlow::all_from_admittance(y);
    [
        flows[0].value(vi, vj, ti, tj),
        flows[1].value(vi, vj, ti, tj),
        flows[2].value(vi, vj, ti, tj),
        flows[3].value(vi, vj, ti, tj),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_grid::branch::Branch;

    fn admittance() -> BranchAdmittance {
        Branch::line(1, 2, 0.02, 0.12, 0.05, 100.0).admittance()
    }

    fn sample_points() -> Vec<(f64, f64, f64, f64)> {
        vec![
            (1.0, 1.0, 0.0, 0.0),
            (1.05, 0.97, 0.1, -0.05),
            (0.92, 1.08, -0.3, 0.2),
            (1.1, 1.1, 0.5, 0.45),
        ]
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let y = admittance();
        let h = 1e-6;
        for kind in FlowKind::all() {
            let f = BranchFlow::from_admittance(&y, kind);
            for &(vi, vj, ti, tj) in &sample_points() {
                let g = f.gradient(vi, vj, ti, tj);
                let fd_vi = (f.value(vi + h, vj, ti, tj) - f.value(vi - h, vj, ti, tj)) / (2.0 * h);
                let fd_vj = (f.value(vi, vj + h, ti, tj) - f.value(vi, vj - h, ti, tj)) / (2.0 * h);
                let fd_ti = (f.value(vi, vj, ti + h, tj) - f.value(vi, vj, ti - h, tj)) / (2.0 * h);
                let fd_tj = (f.value(vi, vj, ti, tj + h) - f.value(vi, vj, ti, tj - h)) / (2.0 * h);
                assert!((g.dvi - fd_vi).abs() < 1e-6, "{kind:?} dvi");
                assert!((g.dvj - fd_vj).abs() < 1e-6, "{kind:?} dvj");
                assert!((g.dti - fd_ti).abs() < 1e-6, "{kind:?} dti");
                assert!((g.dtj - fd_tj).abs() < 1e-6, "{kind:?} dtj");
            }
        }
    }

    #[test]
    fn hessian_matches_finite_difference_of_gradient() {
        let y = admittance();
        let h = 1e-6;
        for kind in FlowKind::all() {
            let f = BranchFlow::from_admittance(&y, kind);
            for &(vi, vj, ti, tj) in &sample_points() {
                let hess = f.hessian(vi, vj, ti, tj).to_dense();
                // Finite differences of the gradient in each of the four
                // variables.
                let grad_at = |vi: f64, vj: f64, ti: f64, tj: f64| {
                    let g = f.gradient(vi, vj, ti, tj);
                    [g.dvi, g.dvj, g.dti, g.dtj]
                };
                let base_args = [vi, vj, ti, tj];
                for k in 0..4 {
                    let mut plus = base_args;
                    let mut minus = base_args;
                    plus[k] += h;
                    minus[k] -= h;
                    let gp = grad_at(plus[0], plus[1], plus[2], plus[3]);
                    let gm = grad_at(minus[0], minus[1], minus[2], minus[3]);
                    for r in 0..4 {
                        let fd = (gp[r] - gm[r]) / (2.0 * h);
                        assert!(
                            (hess[r][k] - fd).abs() < 1e-5,
                            "{kind:?} H[{r}][{k}] = {} vs fd {fd}",
                            hess[r][k]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hessian_is_symmetric() {
        let y = admittance();
        for kind in FlowKind::all() {
            let f = BranchFlow::from_admittance(&y, kind);
            let h = f.hessian(1.03, 0.98, 0.2, -0.1).to_dense();
            for (r, row) in h.iter().enumerate() {
                for (c, v) in row.iter().enumerate() {
                    assert_eq!(*v, h[c][r]);
                }
            }
        }
    }

    #[test]
    fn flows_match_w_space_formulation() {
        // Values computed through the paper's w-variables must equal the
        // polar evaluation.
        let y = admittance();
        let (vi, vj, ti, tj): (f64, f64, f64, f64) = (1.04, 0.97, 0.15, -0.08);
        let theta = ti - tj;
        let wi = vi * vi;
        let wj = vj * vj;
        let wr = vi * vj * theta.cos();
        let wim = vi * vj * theta.sin();
        let expected = [
            y.gii * wi + y.gij * wr + y.bij * wim,
            -y.bii * wi - y.bij * wr + y.gij * wim,
            y.gjj * wj + y.gji * wr - y.bji * wim,
            -y.bjj * wj - y.bji * wr - y.gji * wim,
        ];
        let got = branch_flows(&y, vi, vj, ti, tj);
        for (e, g) in expected.iter().zip(&got) {
            assert!((e - g).abs() < 1e-12, "{e} vs {g}");
        }
    }

    #[test]
    fn lossless_line_conserves_real_power_at_zero_charging() {
        // r = 0, b = 0: p_ij + p_ji = 0 for any voltages.
        let y = Branch::line(1, 2, 0.0, 0.2, 0.0, 0.0).admittance();
        for &(vi, vj, ti, tj) in &sample_points() {
            let f = branch_flows(&y, vi, vj, ti, tj);
            assert!((f[0] + f[2]).abs() < 1e-12, "loss {}", f[0] + f[2]);
        }
    }

    #[test]
    fn lossy_line_has_positive_losses() {
        let y = admittance();
        for &(vi, vj, ti, tj) in &sample_points() {
            let f = branch_flows(&y, vi, vj, ti, tj);
            assert!(f[0] + f[2] >= -1e-12, "negative loss {}", f[0] + f[2]);
        }
    }

    #[test]
    fn angle_symmetry_of_flows() {
        // Swapping the roles of the two buses (and negating the angle
        // difference) on a symmetric (no-tap) line swaps from/to flows.
        let y = Branch::line(1, 2, 0.03, 0.2, 0.04, 0.0).admittance();
        let (vi, vj, ti, tj) = (1.02, 0.99, 0.12, -0.07);
        let fwd = branch_flows(&y, vi, vj, ti, tj);
        let rev = branch_flows(&y, vj, vi, tj, ti);
        assert!((fwd[0] - rev[2]).abs() < 1e-12);
        assert!((fwd[1] - rev[3]).abs() < 1e-12);
        assert!((fwd[2] - rev[0]).abs() < 1e-12);
        assert!((fwd[3] - rev[1]).abs() < 1e-12);
    }
}
