//! Solution-quality metrics: maximum constraint violation and objective gap.
//!
//! These are the quantities the paper reports in Table II (`‖c(x)‖∞` and
//! `|f − f*| / f*`) and tracks over time in Figures 2 and 3.

use crate::solution::OpfSolution;
use gridsim_grid::network::Network;
use serde::{Deserialize, Serialize};

/// A breakdown of the worst violation of each constraint family, all in per
/// unit (voltage limits in p.u., powers in p.u. on the system base).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SolutionQuality {
    /// Maximum absolute real power balance mismatch.
    pub max_p_mismatch: f64,
    /// Maximum absolute reactive power balance mismatch.
    pub max_q_mismatch: f64,
    /// Maximum apparent-power line-limit violation (in squared p.u. flow,
    /// measured as `max(0, sqrt(p²+q²) − rate)`).
    pub max_line_violation: f64,
    /// Maximum violation of voltage magnitude bounds.
    pub max_voltage_violation: f64,
    /// Maximum violation of generator real/reactive power bounds.
    pub max_gen_bound_violation: f64,
    /// Objective value ($/hr).
    pub objective: f64,
}

impl SolutionQuality {
    /// Evaluate every constraint family of formulation (1) at `sol`.
    pub fn evaluate(net: &Network, sol: &OpfSolution) -> SolutionQuality {
        let flows = sol.branch_flows(net);
        let (dp, dq) = sol.power_mismatch_with_flows(net, &flows);
        let max_p_mismatch = dp.iter().map(|v| v.abs()).fold(0.0, f64::max);
        let max_q_mismatch = dq.iter().map(|v| v.abs()).fold(0.0, f64::max);

        let mut max_line_violation: f64 = 0.0;
        for l in 0..net.nbranch {
            if !net.rate_a[l].is_finite() {
                continue;
            }
            let sij = (flows.pij[l] * flows.pij[l] + flows.qij[l] * flows.qij[l]).sqrt();
            let sji = (flows.pji[l] * flows.pji[l] + flows.qji[l] * flows.qji[l]).sqrt();
            max_line_violation = max_line_violation
                .max((sij - net.rate_a[l]).max(0.0))
                .max((sji - net.rate_a[l]).max(0.0));
        }

        let mut max_voltage_violation: f64 = 0.0;
        for b in 0..net.nbus {
            max_voltage_violation = max_voltage_violation
                .max((net.vmin[b] - sol.vm[b]).max(0.0))
                .max((sol.vm[b] - net.vmax[b]).max(0.0));
        }

        let mut max_gen_bound_violation: f64 = 0.0;
        for g in 0..net.ngen {
            max_gen_bound_violation = max_gen_bound_violation
                .max((net.pmin[g] - sol.pg[g]).max(0.0))
                .max((sol.pg[g] - net.pmax[g]).max(0.0))
                .max((net.qmin[g] - sol.qg[g]).max(0.0))
                .max((sol.qg[g] - net.qmax[g]).max(0.0));
        }

        SolutionQuality {
            max_p_mismatch,
            max_q_mismatch,
            max_line_violation,
            max_voltage_violation,
            max_gen_bound_violation,
            objective: sol.objective(net),
        }
    }

    /// The paper's `‖c(x)‖∞`: the worst violation across all constraint
    /// families.
    pub fn max_violation(&self) -> f64 {
        self.max_p_mismatch
            .max(self.max_q_mismatch)
            .max(self.max_line_violation)
            .max(self.max_voltage_violation)
            .max(self.max_gen_bound_violation)
    }
}

/// Relative objective gap `|f − f*| / f*` (the paper's Table II metric),
/// reported as a fraction (multiply by 100 for percent).
pub fn relative_gap(f: f64, f_star: f64) -> f64 {
    if f_star.abs() < 1e-300 {
        f.abs()
    } else {
        (f - f_star).abs() / f_star.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_grid::cases;

    #[test]
    fn flat_point_violation_is_the_largest_load() {
        let net = cases::case9().compile().unwrap();
        let sol = OpfSolution::flat(&net);
        let q = SolutionQuality::evaluate(&net, &sol);
        // At a flat point with zero generation, the worst real mismatch is
        // the largest bus load: 125 MW = 1.25 p.u.
        assert!((q.max_p_mismatch - 1.25).abs() < 1e-9);
        assert!(q.max_voltage_violation < 1e-12);
        assert!(q.max_gen_bound_violation > 0.0, "pg=0 violates pmin=10MW");
        assert!(q.max_violation() >= q.max_p_mismatch);
    }

    #[test]
    fn bound_violations_detected() {
        let net = cases::case9().compile().unwrap();
        let mut sol = OpfSolution::flat(&net);
        sol.vm[3] = 1.3; // above vmax = 1.1
        sol.pg[0] = 50.0; // far above pmax = 2.5 p.u.
        let q = SolutionQuality::evaluate(&net, &sol);
        assert!((q.max_voltage_violation - 0.2).abs() < 1e-9);
        assert!(q.max_gen_bound_violation > 40.0);
    }

    #[test]
    fn line_violation_detected_for_extreme_angle() {
        let net = cases::two_bus().compile().unwrap();
        let mut sol = OpfSolution::flat(&net);
        sol.va[0] = 0.6; // large angle difference drives a large flow
        sol.pg[0] = 1.0;
        let q = SolutionQuality::evaluate(&net, &sol);
        assert!(q.max_line_violation > 0.0);
    }

    #[test]
    fn relative_gap_basic_properties() {
        assert!((relative_gap(101.0, 100.0) - 0.01).abs() < 1e-12);
        assert!((relative_gap(99.0, 100.0) - 0.01).abs() < 1e-12);
        assert_eq!(relative_gap(100.0, 100.0), 0.0);
    }

    #[test]
    fn quality_objective_matches_solution_objective() {
        let net = cases::case14().compile().unwrap();
        let mut sol = OpfSolution::flat(&net);
        for g in 0..net.ngen {
            sol.pg[g] = 0.5;
        }
        let q = SolutionQuality::evaluate(&net, &sol);
        assert!((q.objective - sol.objective(&net)).abs() < 1e-9);
    }
}
