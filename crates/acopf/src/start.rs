//! Cold-start and warm-start handling.
//!
//! Section IV-B of the paper initializes both solvers from the same flat
//! point: real and reactive generation and voltage magnitudes at the midpoint
//! of their bounds, angles at zero (reference angle fixed to zero). Section
//! IV-C warm-starts each time period from the previous period's solution and
//! enforces a generator ramp limit of 2 % of the upper real-power bound per
//! period.

use crate::solution::OpfSolution;
use gridsim_grid::network::Network;

/// The paper's cold start: midpoints of bounds for dispatch and voltage
/// magnitude, zero angles.
pub fn cold_start(net: &Network) -> OpfSolution {
    OpfSolution {
        vm: (0..net.nbus)
            .map(|b| 0.5 * (net.vmin[b] + net.vmax[b]))
            .collect(),
        va: vec![0.0; net.nbus],
        pg: (0..net.ngen)
            .map(|g| 0.5 * (net.pmin[g] + net.pmax[g]))
            .collect(),
        qg: (0..net.ngen)
            .map(|g| 0.5 * (net.qmin[g] + net.qmax[g]))
            .collect(),
    }
}

/// Generator real-power bounds tightened by a ramp limit around the previous
/// dispatch: `|pg_{t+1} − pg_t| ≤ ramp_fraction · pmax`, intersected with the
/// static bounds. Returns `(pmin_t, pmax_t)`.
pub fn ramp_limited_bounds(
    net: &Network,
    previous_pg: &[f64],
    ramp_fraction: f64,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(previous_pg.len(), net.ngen);
    let mut lo = Vec::with_capacity(net.ngen);
    let mut hi = Vec::with_capacity(net.ngen);
    for (g, &pg) in previous_pg.iter().enumerate() {
        let ramp = ramp_fraction * net.pmax[g];
        lo.push((pg - ramp).max(net.pmin[g]));
        hi.push((pg + ramp).min(net.pmax[g]));
    }
    (lo, hi)
}

/// Warm-start state carried between time periods of the tracking experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    /// The previous period's operating point (primal warm start).
    pub solution: OpfSolution,
    /// ADMM consensus multipliers `y` from the previous period (empty when
    /// warm-starting a centralized solver).
    pub multipliers: Vec<f64>,
    /// Outer-level multipliers `λ` from the previous period.
    pub outer_multipliers: Vec<f64>,
}

impl WarmStart {
    /// A warm start holding only a primal point.
    pub fn primal_only(solution: OpfSolution) -> WarmStart {
        WarmStart {
            solution,
            multipliers: Vec::new(),
            outer_multipliers: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_grid::cases;

    #[test]
    fn cold_start_is_midpoint_of_bounds() {
        let net = cases::case9().compile().unwrap();
        let s = cold_start(&net);
        for b in 0..net.nbus {
            assert!((s.vm[b] - 1.0).abs() < 1e-12); // (0.9 + 1.1)/2
            assert_eq!(s.va[b], 0.0);
        }
        for g in 0..net.ngen {
            assert!((s.pg[g] - 0.5 * (net.pmin[g] + net.pmax[g])).abs() < 1e-12);
            assert!((s.qg[g] - 0.0).abs() < 1e-12); // symmetric q bounds
        }
    }

    #[test]
    fn ramp_bounds_shrink_around_previous_dispatch() {
        let net = cases::case9().compile().unwrap();
        let prev = vec![1.0, 1.5, 0.8];
        let (lo, hi) = ramp_limited_bounds(&net, &prev, 0.02);
        for g in 0..net.ngen {
            let ramp = 0.02 * net.pmax[g];
            assert!(lo[g] >= net.pmin[g] - 1e-12);
            assert!(hi[g] <= net.pmax[g] + 1e-12);
            assert!(hi[g] - lo[g] <= 2.0 * ramp + 1e-12);
            assert!(lo[g] <= prev[g] + 1e-12);
            assert!(hi[g] >= prev[g] - 1e-12);
        }
    }

    #[test]
    fn ramp_bounds_respect_static_limits_at_extremes() {
        let net = cases::case9().compile().unwrap();
        // Previous dispatch at pmax: the upper ramp bound must not exceed it.
        let prev: Vec<f64> = net.pmax.clone();
        let (_, hi) = ramp_limited_bounds(&net, &prev, 0.02);
        for (hig, pmaxg) in hi.iter().zip(&net.pmax) {
            assert!(hig <= &(pmaxg + 1e-12));
        }
    }

    #[test]
    fn warm_start_primal_only_has_no_multipliers() {
        let net = cases::case9().compile().unwrap();
        let w = WarmStart::primal_only(cold_start(&net));
        assert!(w.multipliers.is_empty());
        assert!(w.outer_multipliers.is_empty());
    }
}
