//! # gridsim-acopf
//!
//! The ACOPF model layer shared by the ADMM solver (the paper's contribution)
//! and the centralized interior-point baseline:
//!
//! * [`flows`] — branch power-flow functions in polar voltage variables with
//!   analytic gradients and Hessians (the nonlinear heart of formulation (1)),
//! * [`solution`] — a full operating point (voltages + dispatch), flow
//!   recomputation from bus voltages, and objective evaluation,
//! * [`violations`] — the solution-quality metrics reported in Table II and
//!   Figures 2–3: maximum constraint violation `‖c(x)‖∞` and relative
//!   objective gap,
//! * [`start`] — the cold (flat) start used in Section IV-B and warm-start
//!   bookkeeping with generator ramp limits used in Section IV-C.

pub mod flows;
pub mod solution;
pub mod start;
pub mod violations;

pub use flows::{BranchFlow, FlowGrad, FlowHess, FlowKind};
pub use solution::OpfSolution;
pub use start::{cold_start, ramp_limited_bounds, WarmStart};
pub use violations::{relative_gap, SolutionQuality};
