//! Property-based tests of the ACOPF model layer: flow Hessians, solution
//! metrics, and start-point invariants on randomized networks.

use gridsim_acopf::flows::{BranchFlow, FlowKind};
use gridsim_acopf::solution::OpfSolution;
use gridsim_acopf::start::{cold_start, ramp_limited_bounds};
use gridsim_acopf::violations::SolutionQuality;
use gridsim_grid::branch::Branch;
use gridsim_grid::synthetic::SyntheticSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flow Hessians match finite differences of the gradients for arbitrary
    /// branch parameters (second-derivative analogue of the gradient test in
    /// the unit suite).
    #[test]
    fn flow_hessians_match_finite_differences(
        r in 0.0f64..0.08,
        x in 0.02f64..0.3,
        b in 0.0f64..0.15,
        vi in 0.92f64..1.08,
        vj in 0.92f64..1.08,
        dt in -0.3f64..0.3,
    ) {
        let y = Branch::line(1, 2, r, x, b, 0.0).admittance();
        let h = 1e-5;
        for kind in FlowKind::all() {
            let f = BranchFlow::from_admittance(&y, kind);
            let hess = f.hessian(vi, vj, dt, 0.0).to_dense();
            // d(grad)/dvi column via finite differences.
            let gp = f.gradient(vi + h, vj, dt, 0.0);
            let gm = f.gradient(vi - h, vj, dt, 0.0);
            let fd = [
                (gp.dvi - gm.dvi) / (2.0 * h),
                (gp.dvj - gm.dvj) / (2.0 * h),
                (gp.dti - gm.dti) / (2.0 * h),
                (gp.dtj - gm.dtj) / (2.0 * h),
            ];
            for rix in 0..4 {
                prop_assert!(
                    (hess[rix][0] - fd[rix]).abs() < 1e-4 * (1.0 + fd[rix].abs()),
                    "{:?} H[{rix}][0] {} vs {}", kind, hess[rix][0], fd[rix]
                );
            }
        }
    }

    /// The cold start of any synthetic network is inside every bound and the
    /// ramp-limited bounds always bracket the previous dispatch.
    #[test]
    fn cold_start_and_ramp_bounds_invariants(
        nbus in 10usize..50,
        seed in 0u64..300,
        ramp in 0.005f64..0.1,
    ) {
        let spec = SyntheticSpec {
            name: "prop".into(),
            nbus,
            ngen: (nbus / 5).max(2),
            nbranch: nbus + nbus / 3,
            seed,
            ..Default::default()
        };
        let net = spec.generate().compile().unwrap();
        let start = cold_start(&net);
        for b in 0..net.nbus {
            prop_assert!(start.vm[b] >= net.vmin[b] && start.vm[b] <= net.vmax[b]);
            prop_assert_eq!(start.va[b], 0.0);
        }
        for g in 0..net.ngen {
            prop_assert!(start.pg[g] >= net.pmin[g] && start.pg[g] <= net.pmax[g]);
            prop_assert!(start.qg[g] >= net.qmin[g] && start.qg[g] <= net.qmax[g]);
        }
        let (lo, hi) = ramp_limited_bounds(&net, &start.pg, ramp);
        for g in 0..net.ngen {
            prop_assert!(lo[g] <= start.pg[g] + 1e-12);
            prop_assert!(hi[g] >= start.pg[g] - 1e-12);
            prop_assert!(lo[g] >= net.pmin[g] - 1e-12);
            prop_assert!(hi[g] <= net.pmax[g] + 1e-12);
        }
    }

    /// The quality metric is monotone: adding generation imbalance can only
    /// increase the maximum violation.
    #[test]
    fn violation_monotone_in_imbalance(extra in 0.0f64..2.0) {
        let net = gridsim_grid::cases::case9().compile().unwrap();
        let mut sol = OpfSolution::flat(&net);
        for g in 0..net.ngen {
            sol.pg[g] = net.pmin[g];
        }
        let base = SolutionQuality::evaluate(&net, &sol).max_violation();
        sol.pg[0] += extra;
        let bumped = SolutionQuality::evaluate(&net, &sol);
        // Bus 0 hosts generator 0 and has no load; pushing extra power into
        // it without any flow increases its mismatch once it dominates.
        prop_assert!(bumped.max_p_mismatch >= base.min(extra) - 1e-9);
    }
}

#[test]
fn quality_of_a_balanced_two_bus_dispatch_is_small() {
    // Hand-build an (approximately) balanced operating point on the two-bus
    // case by searching the angle that transfers the load, then confirm the
    // violation metric sees it as nearly feasible.
    let net = gridsim_grid::cases::two_bus().compile().unwrap();
    let mut best = (f64::INFINITY, 0.0f64);
    let mut angle = -0.0005f64;
    while angle > -0.3 {
        let mut sol = OpfSolution::flat(&net);
        sol.va[1] = angle;
        let flows = sol.branch_flows(&net);
        sol.pg[0] = flows.pij[0];
        sol.qg[0] = flows.qij[0];
        let q = SolutionQuality::evaluate(&net, &sol);
        // Only the load bus mismatch remains unmodelled here.
        if q.max_p_mismatch < best.0 {
            best = (q.max_p_mismatch, angle);
        }
        angle -= 0.0005;
    }
    assert!(
        best.0 < 2e-2,
        "best achievable mismatch {} at angle {}",
        best.0,
        best.1
    );
}
