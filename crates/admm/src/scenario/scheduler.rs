//! The ADMM scenario fleet on the solver-agnostic execution engine.
//!
//! [`ScenarioScheduler`] maps a scenario set onto a [`DevicePool`] through
//! [`gridsim_engine::Engine`]: the engine owns the round-robin sharding,
//! the lane caps, and the streaming admission protocol
//! ([`gridsim_engine::plan`] spells the decisions out as pure functions);
//! this module contributes the *solver* side as the private `AdmmFleet`'s
//! [`LaneSolver`] implementation —
//!
//! * **shard state** — slot-major device buffers covering the shard's
//!   lanes, built with one bulk upload per buffer,
//! * **step** — one batched inner iteration over every active lane (the
//!   eight kernel launches of Algorithm 1's lines 3–6 spanning `L × n`
//!   elements) plus the per-lane inner/outer control that decides which
//!   lanes finished,
//! * **admit / extract** — ranged uploads into a freed slot's buffer
//!   segments, ranged reads out of a finished slot's.
//!
//! Because every scenario's iterates depend only on its own buffer segment
//! and control state, the per-scenario results are **bitwise identical**
//! for *any* device count, lane count, and admission order — and equal to
//! a [`super::ScenarioBatch`] solve of the same scenarios, which is itself
//! the K-scenarios-on-one-device, all-admitted-at-once special case of this
//! scheduler. The property suite asserts exactly that.

use super::problem::{ScenarioData, ScenarioProblem};
use super::{ScenarioBatchResult, ScenarioResult};
use crate::kernels::{self, AlmSettings, BranchState, BusState, GenState};
use crate::params::AdmmParams;
use crate::solver::{AdmmStatus, WarmState};
use gridsim_acopf::violations::SolutionQuality;
use gridsim_batch::{Device, DeviceBuffer, DeviceConfig, DevicePool};
use gridsim_engine::{Engine, FleetRequest, LaneSolver, StoreAccess};
use gridsim_grid::fingerprint::ScenarioFingerprint;
use gridsim_grid::network::Network;
use gridsim_store::{StoreRunStats, StoreView};
use gridsim_tron::TronSolver;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Per-slot control state of the outer/inner loop (one live scenario).
#[derive(Debug, Clone)]
struct ScenCtl {
    beta: f64,
    outer_done: usize,
    inner_in_outer: usize,
    total_inner: usize,
    z_inf_prev: f64,
    z_inf: f64,
    primres: f64,
    status: AdmmStatus,
}

impl ScenCtl {
    fn fresh(params: &AdmmParams) -> ScenCtl {
        ScenCtl {
            beta: params.beta_init,
            outer_done: 0,
            inner_in_outer: 0,
            total_inner: 0,
            z_inf_prev: f64::INFINITY,
            z_inf: f64::INFINITY,
            primres: f64::INFINITY,
            status: AdmmStatus::MaxOuterIterations,
        }
    }
}

/// Slot-major device state of one shard.
struct SlotState {
    gens: DeviceBuffer<GenState>,
    branches: DeviceBuffer<BranchState>,
    buses: DeviceBuffer<BusState>,
    u: DeviceBuffer<f64>,
    v: DeviceBuffer<f64>,
    z: DeviceBuffer<f64>,
    z_prev: DeviceBuffer<f64>,
    y: DeviceBuffer<f64>,
    lam: DeviceBuffer<f64>,
    rho: DeviceBuffer<f64>,
}

/// Host-side initial state of one scenario segment.
struct SegmentHost {
    gens: Vec<GenState>,
    branches: Vec<BranchState>,
    buses: Vec<BusState>,
    u: Vec<f64>,
    v: Vec<f64>,
    z: Vec<f64>,
    y: Vec<f64>,
    lam: Vec<f64>,
}

/// Precomputed element-index → owning-slot lookup tables, one per buffer
/// geometry. The tick closures run over global slot-major indices; a `u32`
/// load here replaces a per-element integer division (which adds up across
/// the ~10⁹ cheap kernel elements of a large solve), and the looked-up
/// value is the same integer the division would produce, so results are
/// unchanged bitwise.
struct SegMaps {
    gen: Vec<u32>,
    branch: Vec<u32>,
    bus: Vec<u32>,
    cons: Vec<u32>,
}

impl SegMaps {
    fn build(ll: usize, problem: &ScenarioProblem) -> SegMaps {
        let seg_of = |n: usize| (0..ll * n).map(|i| (i / n) as u32).collect();
        SegMaps {
            gen: seg_of(problem.ngen),
            branch: seg_of(problem.nbranch),
            bus: seg_of(problem.nbus),
            cons: seg_of(problem.m),
        }
    }
}

/// The multi-device scenario execution front end for the ADMM fleet.
#[derive(Debug, Clone)]
pub struct ScenarioScheduler {
    /// Algorithm parameters (shared by every scenario).
    pub params: AdmmParams,
    /// The device pool scenarios are sharded across.
    pub pool: DevicePool,
    lanes_per_device: Option<usize>,
}

impl ScenarioScheduler {
    /// A scheduler on the environment-selected pool (`GRIDSIM_DEVICES`
    /// logical parallel devices, default 1).
    pub fn new(params: AdmmParams) -> Self {
        Self::with_pool(params, DevicePool::from_env())
    }

    /// A scheduler on a specific device pool.
    pub fn with_pool(params: AdmmParams, pool: DevicePool) -> Self {
        ScenarioScheduler {
            params,
            pool,
            lanes_per_device: None,
        }
    }

    /// Cap the number of concurrent scenario slots per device. With fewer
    /// lanes than scenarios per shard, the scheduler streams: finished
    /// slots are refilled from the pending queue. Without a cap (the
    /// default) each device admits its whole shard at once.
    pub fn with_lanes(mut self, lanes_per_device: usize) -> Self {
        assert!(lanes_per_device >= 1, "need at least one lane");
        self.lanes_per_device = Some(lanes_per_device);
        self
    }

    /// The configured lane cap, if any.
    pub fn lanes_per_device(&self) -> Option<usize> {
        self.lanes_per_device
    }

    /// Solve one [`FleetRequest`]. Networks must share the first one's
    /// dimensions and topology (panics otherwise); results are in input
    /// order and bitwise independent of the device/lane configuration.
    ///
    /// With a [`StoreAccess::Live`] binding, every admission (initial and
    /// streamed) consults the store and, on a hit, re-seeds its slot from
    /// the nearest stored [`WarmState`] instead of the cold start; every
    /// converged scenario is committed back under the request's case id
    /// after the run. Determinism: lookups go against a [`StoreView`]
    /// snapshot frozen before the run (this run's own results are invisible
    /// to its own lookups) and inserts commit in input order afterwards, so
    /// — like every other path through this scheduler — both the results
    /// and the post-run store contents are bitwise independent of the
    /// device count, lane cap, and launch backend. With an empty store
    /// every lookup misses and the run is bitwise identical to a store-less
    /// request. A [`StoreAccess::Snapshot`] binding does the lookup side
    /// only: nothing is committed, the caller owns the write side.
    ///
    /// A [`FleetRequest::mode`] override rebuilds this scheduler's devices
    /// on the requested backend (same device count and lane cap) for this
    /// run.
    pub fn run(&self, request: FleetRequest<'_, WarmState>) -> ScenarioBatchResult {
        let nets = request.nets;
        let pool = match request.mode {
            Some(mode) => DevicePool::new(self.pool.len(), DeviceConfig::with_mode(mode)),
            None => self.pool.clone(),
        };
        let case_id = request.store_case_id();
        match request.store {
            StoreAccess::None => self.execute(&pool, nets, None, None, None),
            StoreAccess::Snapshot(view) => {
                let fps: Vec<ScenarioFingerprint> =
                    nets.iter().map(ScenarioFingerprint::of_network).collect();
                self.execute(
                    &pool,
                    nets,
                    None,
                    None,
                    Some((case_id.expect("store_case_id checked"), view, &fps)),
                )
            }
            StoreAccess::Live(store) => {
                let case_id = case_id.expect("store_case_id checked");
                let fps: Vec<ScenarioFingerprint> =
                    nets.iter().map(ScenarioFingerprint::of_network).collect();
                let view = store.view();
                let mut result =
                    self.execute(&pool, nets, None, None, Some((case_id, &view, &fps)));
                // Commit converged scenarios back in input order:
                // deterministic store contents regardless of
                // device/lane/thread scheduling.
                for (fp, r) in fps.iter().zip(&result.results) {
                    if r.status == AdmmStatus::Converged {
                        store.insert(case_id, fp, r.warm_state.clone());
                        result.store.inserts += 1;
                    }
                }
                result
            }
        }
    }

    /// Solve all scenarios warm-started from one shared [`WarmState`],
    /// optionally with per-scenario ramp-limited generator bounds
    /// (`pg_bounds[s]` applies to scenario `s`).
    pub fn solve_warm(
        &self,
        nets: &[Network],
        warm: &WarmState,
        pg_bounds: Option<&[(Vec<f64>, Vec<f64>)]>,
    ) -> ScenarioBatchResult {
        self.execute(&self.pool, nets, Some(warm), pg_bounds, None)
    }

    /// Drive the engine over `nets` on `pool`, with lookups against the
    /// frozen view when present. Commits nothing.
    fn execute(
        &self,
        pool: &DevicePool,
        nets: &[Network],
        warm: Option<&WarmState>,
        pg_bounds: Option<&[(Vec<f64>, Vec<f64>)]>,
        lookup: Option<(&str, &StoreView<WarmState>, &[ScenarioFingerprint])>,
    ) -> ScenarioBatchResult {
        let start_time = Instant::now();
        // The step loop performs one inner iteration per round before it
        // checks the caps, so zero-iteration budgets (which the single
        // solver answers with an immediate return) cannot be honored here.
        assert!(
            self.params.max_inner >= 1 && self.params.max_outer >= 1,
            "ScenarioScheduler needs max_inner >= 1 and max_outer >= 1"
        );
        let problem = ScenarioProblem::build(nets, &self.params, pg_bounds);
        let fleet = AdmmFleet {
            params: &self.params,
            problem: &problem,
            nets,
            warm,
            tron: TronSolver::new(self.params.tron.clone()),
            alm: AlmSettings::from_params(&self.params),
            store: lookup.map(|(case_id, view, fps)| AdmmStoreBinding {
                case_id,
                view,
                fps,
                hits: AtomicUsize::new(0),
                misses: AtomicUsize::new(0),
            }),
        };
        let mut engine = Engine::with_pool(pool.clone());
        if let Some(l) = self.lanes_per_device {
            engine = engine.with_lanes(l);
        }
        let run = engine.run(&fleet, nets.len());
        let mut stats = StoreRunStats::default();
        if let Some(binding) = &fleet.store {
            stats.hits = binding.hits.load(Ordering::Relaxed);
            stats.misses = binding.misses.load(Ordering::Relaxed);
        }
        ScenarioBatchResult {
            results: run.outputs,
            solve_time: start_time.elapsed(),
            ticks: run.ticks,
            store: stats,
        }
    }
}

/// The store side of one fleet run: the frozen lookup snapshot, the
/// scenarios' fingerprints, and the run's traffic counters (atomics: shards
/// on different devices admit concurrently, and sums are order-independent
/// so the totals stay deterministic).
struct AdmmStoreBinding<'a> {
    case_id: &'a str,
    view: &'a StoreView<WarmState>,
    fps: &'a [ScenarioFingerprint],
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// The ADMM scenario fleet: one borrowed problem/parameter view driving
/// every shard the engine opens.
struct AdmmFleet<'a> {
    params: &'a AdmmParams,
    problem: &'a ScenarioProblem,
    nets: &'a [Network],
    warm: Option<&'a WarmState>,
    tron: TronSolver,
    alm: AlmSettings,
    store: Option<AdmmStoreBinding<'a>>,
}

/// One device's shard: slot-major buffers plus per-lane control state.
struct AdmmShard {
    device: Device,
    st: SlotState,
    ctl: Vec<ScenCtl>,
    slot_data: Vec<ScenarioData>,
    segs: SegMaps,
    ll: usize,
}

impl AdmmFleet<'_> {
    /// Fresh per-slot control state. When the whole run is seeded from a
    /// shared warm state, new slots resume its β schedule — mirroring what
    /// `AdmmSolver::solve_warm` does for a single scenario.
    fn fresh_ctl(&self) -> ScenCtl {
        let mut ctl = ScenCtl::fresh(self.params);
        if let Some(w) = self.warm {
            ctl.beta = w.beta;
        }
        ctl
    }
}

impl LaneSolver for AdmmFleet<'_> {
    type Shard = AdmmShard;
    type Output = ScenarioResult;

    fn open_shard(&self, device: &Device, initial: &[usize]) -> AdmmShard {
        let problem = self.problem;
        let (ngen, nbranch, nbus, m) = (problem.ngen, problem.nbranch, problem.nbus, problem.m);
        let ll = initial.len();
        let stats = device.stats().clone();

        // Fill the initial lanes host-side, then create the slot-major
        // buffers with one bulk upload each.
        let mut gen_host: Vec<GenState> = Vec::with_capacity(ll * ngen);
        let mut branch_host: Vec<BranchState> = Vec::with_capacity(ll * nbranch);
        let mut bus_host: Vec<BusState> = Vec::with_capacity(ll * nbus);
        let mut u_host = Vec::with_capacity(ll * m);
        let mut v_host = Vec::with_capacity(ll * m);
        let mut z_host = Vec::with_capacity(ll * m);
        let mut y_host = Vec::with_capacity(ll * m);
        let mut lam_host = Vec::with_capacity(ll * m);
        let mut rho_host = Vec::with_capacity(ll * m);
        for &idx in initial {
            let seg = init_segment(&self.nets[idx], &problem.data[idx], problem, self.warm);
            gen_host.extend(seg.gens);
            branch_host.extend(seg.branches);
            bus_host.extend(seg.buses);
            u_host.extend(seg.u);
            v_host.extend(seg.v);
            z_host.extend(seg.z);
            y_host.extend(seg.y);
            lam_host.extend(seg.lam);
            rho_host.extend_from_slice(&problem.rho);
        }
        let st = SlotState {
            gens: DeviceBuffer::from_host(stats.clone(), &gen_host),
            branches: DeviceBuffer::from_host(stats.clone(), &branch_host),
            buses: DeviceBuffer::from_host(stats.clone(), &bus_host),
            u: DeviceBuffer::from_host(stats.clone(), &u_host),
            v: DeviceBuffer::from_host(stats.clone(), &v_host),
            z: DeviceBuffer::from_host(stats.clone(), &z_host),
            z_prev: DeviceBuffer::zeroed(stats.clone(), ll * m),
            y: DeviceBuffer::from_host(stats.clone(), &y_host),
            lam: DeviceBuffer::from_host(stats.clone(), &lam_host),
            rho: DeviceBuffer::from_host(stats, &rho_host),
        };
        AdmmShard {
            device: device.clone(),
            st,
            ctl: (0..ll).map(|_| self.fresh_ctl()).collect(),
            slot_data: initial.iter().map(|&i| problem.data[i].clone()).collect(),
            segs: SegMaps::build(ll, problem),
            ll,
        }
    }

    fn step(&self, shard: &mut AdmmShard, active: &[bool]) -> Vec<bool> {
        let params = self.params;
        let m = self.problem.m;
        let ll = shard.ll;
        tick(
            &shard.device,
            &mut shard.st,
            self.problem,
            &shard.slot_data,
            &shard.segs,
            &self.tron,
            &self.alm,
            active,
            &shard.ctl,
        );
        let (device, st, ctl, segs) = (&shard.device, &shard.st, &mut shard.ctl, &shard.segs);

        // Residuals, per slot.
        let prim = device.reduce_max_segments("primal_residual", &st.z, m, active, {
            let u = st.u.as_slice();
            let v = st.v.as_slice();
            move |k, zk| (u[k] - v[k] + zk).abs()
        });
        let dual = device.reduce_max_segments("dual_residual", &st.z, m, active, {
            let zp = st.z_prev.as_slice();
            let rho = st.rho.as_slice();
            move |k, zk| (rho[k] * (zk - zp[k])).abs()
        });

        // Per-slot control: inner bookkeeping, outer boundaries.
        let mut boundary = vec![false; ll];
        for s in 0..ll {
            if !active[s] {
                continue;
            }
            let c = &mut ctl[s];
            c.total_inner += 1;
            c.inner_in_outer += 1;
            c.primres = prim[s];
            let inner_converged = prim[s] <= params.eps_inner && dual[s] <= params.eps_inner;
            if inner_converged || c.inner_in_outer >= params.max_inner {
                boundary[s] = true;
            }
        }
        let mut finished = vec![false; ll];
        if !boundary.iter().any(|&b| b) {
            return finished;
        }

        // Outer-level update and termination for slots at a boundary.
        let z_inf = device.reduce_max_segments("z_norm", &st.z, m, &boundary, |_, zk| zk.abs());
        let mut lambda_mask = vec![false; ll];
        for s in 0..ll {
            if !boundary[s] {
                continue;
            }
            let c = &mut ctl[s];
            c.z_inf = z_inf[s];
            c.inner_in_outer = 0;
            c.outer_done += 1;
            if c.z_inf <= params.eps_outer {
                c.status = AdmmStatus::Converged;
                finished[s] = true;
            } else {
                lambda_mask[s] = true;
            }
        }
        if lambda_mask.iter().any(|&b| b) {
            let betas: Vec<f64> = ctl.iter().map(|c| c.beta).collect();
            let bound = params.lambda_bound;
            let z = shard.st.z.as_slice();
            let cons = segs.cons.as_slice();
            device.launch_map_segments("lambda_update", &mut shard.st.lam, m, &lambda_mask, {
                move |k, lk| kernels::lambda_element(z[k], betas[cons[k] as usize], bound, lk)
            });
            for s in 0..ll {
                if !lambda_mask[s] {
                    continue;
                }
                let c = &mut ctl[s];
                if c.z_inf > params.z_decrease_factor * c.z_inf_prev {
                    c.beta *= params.beta_factor;
                }
                c.z_inf_prev = c.z_inf;
                if c.outer_done >= params.max_outer {
                    finished[s] = true;
                }
            }
        }
        finished
    }

    fn extract(&self, shard: &mut AdmmShard, slot: usize, scenario: usize) -> ScenarioResult {
        extract_slot(
            &shard.st,
            slot,
            &self.nets[scenario],
            &shard.ctl[slot],
            self.problem,
        )
    }

    fn admit(&self, shard: &mut AdmmShard, slot: usize, scenario: usize) {
        let seg = init_segment(
            &self.nets[scenario],
            &self.problem.data[scenario],
            self.problem,
            self.warm,
        );
        admit_into_slot(&mut shard.st, slot, &seg, self.problem);
        shard.slot_data[slot] = self.problem.data[scenario].clone();
        shard.ctl[slot] = self.fresh_ctl();
    }

    fn on_admit(&self, shard: &mut AdmmShard, slot: usize, scenario: usize) {
        let Some(binding) = &self.store else {
            return;
        };
        match binding
            .view
            .nearest(binding.case_id, &binding.fps[scenario])
        {
            Some(hit) => {
                // Rebuild the slot's segment from the stored warm state and
                // replace the cold/shared-warm seed with a ranged re-upload.
                // Control state stays fresh (the hit changes the starting
                // point, not the iteration budget) except for β, which
                // resumes the stored schedule along with the multipliers.
                let seg = init_segment(
                    &self.nets[scenario],
                    &self.problem.data[scenario],
                    self.problem,
                    Some(&hit.entry.payload),
                );
                admit_into_slot(&mut shard.st, slot, &seg, self.problem);
                shard.ctl[slot].beta = hit.entry.payload.beta;
                binding.hits.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                binding.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Host-side initial state of one scenario, bitwise identical to the state
/// the single driver's init kernels would produce for it.
fn init_segment(
    net: &Network,
    data: &ScenarioData,
    problem: &ScenarioProblem,
    warm: Option<&WarmState>,
) -> SegmentHost {
    let m = problem.m;
    let (gens, branches, mut buses, y, lam, z) = match warm {
        Some(w) => {
            let (gens, branches, buses) = kernels::warm_states(net, w);
            (
                gens,
                branches,
                buses,
                w.y.clone(),
                w.lam.clone(),
                w.z.clone(),
            )
        }
        None => {
            let gens: Vec<GenState> = data.gens.iter().map(kernels::cold_gen_state).collect();
            let branches: Vec<BranchState> = data
                .branches
                .iter()
                .map(kernels::cold_branch_state)
                .collect();
            let buses: Vec<BusState> = (0..problem.nbus)
                .map(|b| {
                    kernels::cold_bus_state(
                        net.vmin[b],
                        net.vmax[b],
                        problem.layout.bus_plans[b].num_copies,
                    )
                })
                .collect();
            (
                gens,
                branches,
                buses,
                vec![0.0; m],
                vec![0.0; m],
                vec![0.0; m],
            )
        }
    };
    let mut u = vec![0.0f64; m];
    for (k, uk) in u.iter_mut().enumerate() {
        *uk = kernels::u_element(k, problem.ngen, &gens, &branches);
    }
    if warm.is_none() {
        // Seed the bus copies from the consistent component values so a
        // cold start begins from consensus agreement.
        for (b, bus) in buses.iter_mut().enumerate() {
            kernels::seed_bus_copies(&data.buses[b], &u, bus);
        }
    }
    let mut v = vec![0.0f64; m];
    for (k, vk) in v.iter_mut().enumerate() {
        let (bus, slot) = problem.vplan[k];
        *vk = kernels::v_element(&buses[bus], slot);
    }
    SegmentHost {
        gens,
        branches,
        buses,
        u,
        v,
        z,
        y,
        lam,
    }
}

/// Admit a scenario into slot `s` of an existing shard state: one ranged
/// host-to-device upload per live buffer. (`rho` is layout-derived and
/// identical for every scenario; `z_prev` is overwritten from `z` on the
/// slot's first tick before any read.)
fn admit_into_slot(st: &mut SlotState, s: usize, seg: &SegmentHost, problem: &ScenarioProblem) {
    let (ngen, nbranch, nbus, m) = (problem.ngen, problem.nbranch, problem.nbus, problem.m);
    st.gens.upload_range(s * ngen, &seg.gens);
    st.branches.upload_range(s * nbranch, &seg.branches);
    st.buses.upload_range(s * nbus, &seg.buses);
    st.u.upload_range(s * m, &seg.u);
    st.v.upload_range(s * m, &seg.v);
    st.z.upload_range(s * m, &seg.z);
    st.y.upload_range(s * m, &seg.y);
    st.lam.upload_range(s * m, &seg.lam);
}

/// Extract slot `s`'s finished scenario: one ranged device-to-host read per
/// result-bearing buffer.
fn extract_slot(
    st: &SlotState,
    s: usize,
    net: &Network,
    ctl: &ScenCtl,
    problem: &ScenarioProblem,
) -> ScenarioResult {
    let (ngen, nbranch, nbus, m) = (problem.ngen, problem.nbranch, problem.nbus, problem.m);
    let gens = st.gens.to_host_range(s * ngen, ngen);
    let branches = st.branches.to_host_range(s * nbranch, nbranch);
    let buses = st.buses.to_host_range(s * nbus, nbus);
    let y = st.y.to_host_range(s * m, m);
    let lam = st.lam.to_host_range(s * m, m);
    let z = st.z.to_host_range(s * m, m);
    let (solution, warm_state) =
        kernels::extract_segment(&gens, &branches, &buses, &y, &lam, &z, ctl.beta);
    let quality = SolutionQuality::evaluate(net, &solution);
    ScenarioResult {
        name: net.name.clone(),
        objective: solution.objective(net),
        quality,
        solution,
        status: ctl.status,
        inner_iterations: ctl.total_inner,
        outer_iterations: ctl.outer_done,
        z_inf: ctl.z_inf,
        primal_residual: ctl.primres,
        warm_state,
    }
}

/// One batched inner iteration over every active slot: the eight kernel
/// launches of Algorithm 1's lines 3–6, each spanning `L × n` elements.
#[allow(clippy::too_many_arguments)]
fn tick(
    device: &Device,
    st: &mut SlotState,
    problem: &ScenarioProblem,
    slot_data: &[ScenarioData],
    segs: &SegMaps,
    tron: &TronSolver,
    alm: &AlmSettings,
    active: &[bool],
    ctl: &[ScenCtl],
) {
    let (ngen, nbranch, nbus, m) = (problem.ngen, problem.nbranch, problem.nbus, problem.m);
    // x block: generators and branches.
    {
        let v = st.v.as_slice();
        let z = st.z.as_slice();
        let y = st.y.as_slice();
        let rho = st.rho.as_slice();
        let gen_seg = segs.gen.as_slice();
        device.launch_map_segments("generator_update", &mut st.gens, ngen, active, {
            move |g, state| {
                let s = gen_seg[g] as usize;
                kernels::generator_element(
                    &slot_data[s].gens[g - s * ngen],
                    s * m,
                    v,
                    z,
                    y,
                    rho,
                    state,
                )
            }
        });
        let branch_seg = segs.branch.as_slice();
        device.launch_blocks_segments("branch_tron", &mut st.branches, nbranch, active, {
            move |l, state| {
                let s = branch_seg[l] as usize;
                kernels::branch_element(
                    &slot_data[s].branches[l - s * nbranch],
                    s * m,
                    v,
                    z,
                    y,
                    rho,
                    tron,
                    alm,
                    state,
                )
            }
        });
    }
    {
        let gens = st.gens.as_slice();
        let branches = st.branches.as_slice();
        let cons = segs.cons.as_slice();
        device.launch_map_segments("u_scatter", &mut st.u, m, active, move |k, uk| {
            let s = cons[k] as usize;
            *uk = kernels::u_element(
                k - s * m,
                ngen,
                &gens[s * ngen..(s + 1) * ngen],
                &branches[s * nbranch..(s + 1) * nbranch],
            );
        });
    }
    // x̄ block: buses.
    {
        let u = st.u.as_slice();
        let z = st.z.as_slice();
        let y = st.y.as_slice();
        let rho = st.rho.as_slice();
        let bus_seg = segs.bus.as_slice();
        device.launch_map_segments("bus_update", &mut st.buses, nbus, active, {
            move |b, state| {
                let s = bus_seg[b] as usize;
                kernels::bus_element(
                    &slot_data[s].buses[b - s * nbus],
                    s * m,
                    u,
                    z,
                    y,
                    rho,
                    state,
                )
            }
        });
    }
    {
        let buses = st.buses.as_slice();
        let vplan = problem.vplan.as_slice();
        let cons = segs.cons.as_slice();
        device.launch_map_segments("v_scatter", &mut st.v, m, active, move |k, vk| {
            let s = cons[k] as usize;
            let (bus, slot) = vplan[k - s * m];
            *vk = kernels::v_element(&buses[s * nbus + bus], slot);
        });
    }
    // z and multiplier updates.
    {
        // Device-side copy of the active segments (free, like the single
        // driver's z_prev copy).
        let z = st.z.as_slice();
        let zp = st.z_prev.as_mut_slice();
        for (s, &a) in active.iter().enumerate() {
            if a {
                zp[s * m..(s + 1) * m].copy_from_slice(&z[s * m..(s + 1) * m]);
            }
        }
    }
    {
        let betas: Vec<f64> = ctl.iter().map(|c| c.beta).collect();
        let u = st.u.as_slice();
        let v = st.v.as_slice();
        let y = st.y.as_slice();
        let lam = st.lam.as_slice();
        let rho = st.rho.as_slice();
        let cons = segs.cons.as_slice();
        device.launch_map_segments("z_update", &mut st.z, m, active, move |k, zk| {
            *zk = kernels::z_element(k, u, v, y, lam, rho, betas[cons[k] as usize]);
        });
    }
    {
        let u = st.u.as_slice();
        let v = st.v.as_slice();
        let z = st.z.as_slice();
        let rho = st.rho.as_slice();
        device.launch_map_segments("y_update", &mut st.y, m, active, move |k, yk| {
            kernels::y_element(k, u, v, z, rho, yk);
        });
    }
}
