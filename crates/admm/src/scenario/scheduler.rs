//! The multi-device scenario scheduler: sharding plus streaming admission.
//!
//! [`ScenarioScheduler`] maps a scenario set onto a [`DevicePool`]:
//!
//! * **sharding** — scenarios are dealt round-robin across the pool's
//!   logical devices; shards execute concurrently, each billing its kernel
//!   work to its own device's statistics stream,
//! * **streaming admission** — each device runs a fixed number of *slots*
//!   (lanes). When a slot's scenario terminates, its result is extracted
//!   from that slot's buffer segment and the next pending scenario of the
//!   shard is admitted into the freed slot, so the device never idles lanes
//!   on converged scenarios while work is still queued.
//!
//! Because every scenario's iterates depend only on its own buffer segment
//! and control state, the per-scenario results are **bitwise identical**
//! for *any* device count, lane count, and admission order — and equal to
//! a [`super::ScenarioBatch`] solve of the same scenarios, which is itself
//! the K-scenarios-on-one-device, all-admitted-at-once special case of this
//! scheduler. The property suite asserts exactly that.

use super::problem::{ScenarioData, ScenarioProblem};
use super::{ScenarioBatchResult, ScenarioResult};
use crate::kernels::{self, AlmSettings, BranchState, BusState, GenState};
use crate::params::AdmmParams;
use crate::solver::{AdmmStatus, WarmState};
use gridsim_acopf::violations::SolutionQuality;
use gridsim_batch::{Device, DeviceBuffer, DevicePool};
use gridsim_grid::network::Network;
use gridsim_tron::TronSolver;
use std::time::Instant;

/// Per-slot control state of the outer/inner loop (one live scenario).
#[derive(Debug, Clone)]
struct ScenCtl {
    beta: f64,
    outer_done: usize,
    inner_in_outer: usize,
    total_inner: usize,
    z_inf_prev: f64,
    z_inf: f64,
    primres: f64,
    status: AdmmStatus,
}

impl ScenCtl {
    fn fresh(params: &AdmmParams) -> ScenCtl {
        ScenCtl {
            beta: params.beta_init,
            outer_done: 0,
            inner_in_outer: 0,
            total_inner: 0,
            z_inf_prev: f64::INFINITY,
            z_inf: f64::INFINITY,
            primres: f64::INFINITY,
            status: AdmmStatus::MaxOuterIterations,
        }
    }
}

/// Slot-major device state of one shard.
struct SlotState {
    gens: DeviceBuffer<GenState>,
    branches: DeviceBuffer<BranchState>,
    buses: DeviceBuffer<BusState>,
    u: DeviceBuffer<f64>,
    v: DeviceBuffer<f64>,
    z: DeviceBuffer<f64>,
    z_prev: DeviceBuffer<f64>,
    y: DeviceBuffer<f64>,
    lam: DeviceBuffer<f64>,
    rho: DeviceBuffer<f64>,
}

/// Host-side initial state of one scenario segment.
struct SegmentHost {
    gens: Vec<GenState>,
    branches: Vec<BranchState>,
    buses: Vec<BusState>,
    u: Vec<f64>,
    v: Vec<f64>,
    z: Vec<f64>,
    y: Vec<f64>,
    lam: Vec<f64>,
}

/// Precomputed element-index → owning-slot lookup tables, one per buffer
/// geometry. The tick closures run over global slot-major indices; a `u32`
/// load here replaces a per-element integer division (which adds up across
/// the ~10⁹ cheap kernel elements of a large solve), and the looked-up
/// value is the same integer the division would produce, so results are
/// unchanged bitwise.
struct SegMaps {
    gen: Vec<u32>,
    branch: Vec<u32>,
    bus: Vec<u32>,
    cons: Vec<u32>,
}

impl SegMaps {
    fn build(ll: usize, problem: &ScenarioProblem) -> SegMaps {
        let seg_of = |n: usize| (0..ll * n).map(|i| (i / n) as u32).collect();
        SegMaps {
            gen: seg_of(problem.ngen),
            branch: seg_of(problem.nbranch),
            bus: seg_of(problem.nbus),
            cons: seg_of(problem.m),
        }
    }
}

/// The multi-device scenario execution engine.
#[derive(Debug, Clone)]
pub struct ScenarioScheduler {
    /// Algorithm parameters (shared by every scenario).
    pub params: AdmmParams,
    /// The device pool scenarios are sharded across.
    pub pool: DevicePool,
    lanes_per_device: Option<usize>,
}

impl ScenarioScheduler {
    /// A scheduler on the environment-selected pool (`GRIDSIM_DEVICES`
    /// logical parallel devices, default 1).
    pub fn new(params: AdmmParams) -> Self {
        Self::with_pool(params, DevicePool::from_env())
    }

    /// A scheduler on a specific device pool.
    pub fn with_pool(params: AdmmParams, pool: DevicePool) -> Self {
        ScenarioScheduler {
            params,
            pool,
            lanes_per_device: None,
        }
    }

    /// Cap the number of concurrent scenario slots per device. With fewer
    /// lanes than scenarios per shard, the scheduler streams: finished
    /// slots are refilled from the pending queue. Without a cap (the
    /// default) each device admits its whole shard at once.
    pub fn with_lanes(mut self, lanes_per_device: usize) -> Self {
        assert!(lanes_per_device >= 1, "need at least one lane");
        self.lanes_per_device = Some(lanes_per_device);
        self
    }

    /// The configured lane cap, if any.
    pub fn lanes_per_device(&self) -> Option<usize> {
        self.lanes_per_device
    }

    /// Solve all scenarios from a cold start. Networks must share the first
    /// one's dimensions and topology (panics otherwise); results are in
    /// input order and bitwise independent of the device/lane configuration.
    pub fn solve(&self, nets: &[Network]) -> ScenarioBatchResult {
        self.run(nets, None, None)
    }

    /// Solve all scenarios warm-started from one shared [`WarmState`],
    /// optionally with per-scenario ramp-limited generator bounds
    /// (`pg_bounds[s]` applies to scenario `s`).
    pub fn solve_warm(
        &self,
        nets: &[Network],
        warm: &WarmState,
        pg_bounds: Option<&[(Vec<f64>, Vec<f64>)]>,
    ) -> ScenarioBatchResult {
        self.run(nets, Some(warm), pg_bounds)
    }

    fn run(
        &self,
        nets: &[Network],
        warm: Option<&WarmState>,
        pg_bounds: Option<&[(Vec<f64>, Vec<f64>)]>,
    ) -> ScenarioBatchResult {
        let start_time = Instant::now();
        // The tick loop performs one inner iteration per round before it
        // checks the caps, so zero-iteration budgets (which the single
        // solver answers with an immediate return) cannot be honored here.
        assert!(
            self.params.max_inner >= 1 && self.params.max_outer >= 1,
            "ScenarioScheduler needs max_inner >= 1 and max_outer >= 1"
        );
        let problem = ScenarioProblem::build(nets, &self.params, pg_bounds);
        let ndev = self.pool.len().min(nets.len());
        // Deal scenarios round-robin across the devices.
        let shards: Vec<Vec<usize>> = (0..ndev)
            .map(|d| (d..nets.len()).step_by(ndev).collect())
            .collect();

        let mut slots: Vec<Option<ScenarioResult>> = nets.iter().map(|_| None).collect();
        let mut ticks = 0usize;
        if ndev == 1 {
            let (results, t) = run_shard(
                &self.params,
                self.pool.device(0),
                &problem,
                nets,
                &shards[0],
                self.lanes_per_device,
                warm,
            );
            ticks = t;
            for (idx, r) in results {
                slots[idx] = Some(r);
            }
        } else {
            // One host thread per device shard; each shard's kernel work is
            // billed to its own device stream.
            let shard_outputs = std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .enumerate()
                    .map(|(d, shard)| {
                        let device = self.pool.device(d);
                        let params = &self.params;
                        let problem = &problem;
                        let lanes = self.lanes_per_device;
                        scope.spawn(move || {
                            run_shard(params, device, problem, nets, shard, lanes, warm)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("device shard thread panicked"))
                    .collect::<Vec<_>>()
            });
            for (results, t) in shard_outputs {
                // Shards run concurrently: the batch's tick count is the
                // longest device's, the wall-clock analogue.
                ticks = ticks.max(t);
                for (idx, r) in results {
                    slots[idx] = Some(r);
                }
            }
        }
        ScenarioBatchResult {
            results: slots
                .into_iter()
                .map(|r| r.expect("every scenario produces a result"))
                .collect(),
            solve_time: start_time.elapsed(),
            ticks,
        }
    }
}

/// Host-side initial state of one scenario, bitwise identical to the state
/// the single driver's init kernels would produce for it.
fn init_segment(
    net: &Network,
    data: &ScenarioData,
    problem: &ScenarioProblem,
    warm: Option<&WarmState>,
) -> SegmentHost {
    let m = problem.m;
    let (gens, branches, mut buses, y, lam, z) = match warm {
        Some(w) => {
            let (gens, branches, buses) = kernels::warm_states(net, w);
            (
                gens,
                branches,
                buses,
                w.y.clone(),
                w.lam.clone(),
                w.z.clone(),
            )
        }
        None => {
            let gens: Vec<GenState> = data.gens.iter().map(kernels::cold_gen_state).collect();
            let branches: Vec<BranchState> = data
                .branches
                .iter()
                .map(kernels::cold_branch_state)
                .collect();
            let buses: Vec<BusState> = (0..problem.nbus)
                .map(|b| {
                    kernels::cold_bus_state(
                        net.vmin[b],
                        net.vmax[b],
                        problem.layout.bus_plans[b].num_copies,
                    )
                })
                .collect();
            (
                gens,
                branches,
                buses,
                vec![0.0; m],
                vec![0.0; m],
                vec![0.0; m],
            )
        }
    };
    let mut u = vec![0.0f64; m];
    for (k, uk) in u.iter_mut().enumerate() {
        *uk = kernels::u_element(k, problem.ngen, &gens, &branches);
    }
    if warm.is_none() {
        // Seed the bus copies from the consistent component values so a
        // cold start begins from consensus agreement.
        for (b, bus) in buses.iter_mut().enumerate() {
            kernels::seed_bus_copies(&data.buses[b], &u, bus);
        }
    }
    let mut v = vec![0.0f64; m];
    for (k, vk) in v.iter_mut().enumerate() {
        let (bus, slot) = problem.vplan[k];
        *vk = kernels::v_element(&buses[bus], slot);
    }
    SegmentHost {
        gens,
        branches,
        buses,
        u,
        v,
        z,
        y,
        lam,
    }
}

/// Admit a scenario into slot `s` of an existing shard state: one ranged
/// host-to-device upload per live buffer. (`rho` is layout-derived and
/// identical for every scenario; `z_prev` is overwritten from `z` on the
/// slot's first tick before any read.)
fn admit_into_slot(st: &mut SlotState, s: usize, seg: &SegmentHost, problem: &ScenarioProblem) {
    let (ngen, nbranch, nbus, m) = (problem.ngen, problem.nbranch, problem.nbus, problem.m);
    st.gens.upload_range(s * ngen, &seg.gens);
    st.branches.upload_range(s * nbranch, &seg.branches);
    st.buses.upload_range(s * nbus, &seg.buses);
    st.u.upload_range(s * m, &seg.u);
    st.v.upload_range(s * m, &seg.v);
    st.z.upload_range(s * m, &seg.z);
    st.y.upload_range(s * m, &seg.y);
    st.lam.upload_range(s * m, &seg.lam);
}

/// Extract slot `s`'s finished scenario: one ranged device-to-host read per
/// result-bearing buffer.
fn extract_slot(
    st: &SlotState,
    s: usize,
    net: &Network,
    ctl: &ScenCtl,
    problem: &ScenarioProblem,
) -> ScenarioResult {
    let (ngen, nbranch, nbus, m) = (problem.ngen, problem.nbranch, problem.nbus, problem.m);
    let gens = st.gens.to_host_range(s * ngen, ngen);
    let branches = st.branches.to_host_range(s * nbranch, nbranch);
    let buses = st.buses.to_host_range(s * nbus, nbus);
    let y = st.y.to_host_range(s * m, m);
    let lam = st.lam.to_host_range(s * m, m);
    let z = st.z.to_host_range(s * m, m);
    let (solution, warm_state) = kernels::extract_segment(&gens, &branches, &buses, &y, &lam, &z);
    let quality = SolutionQuality::evaluate(net, &solution);
    ScenarioResult {
        name: net.name.clone(),
        objective: solution.objective(net),
        quality,
        solution,
        status: ctl.status,
        inner_iterations: ctl.total_inner,
        outer_iterations: ctl.outer_done,
        z_inf: ctl.z_inf,
        primal_residual: ctl.primres,
        warm_state,
    }
}

/// Run one device's shard with streaming admission; returns the finished
/// scenarios tagged with their input indices, plus the shard's tick count.
fn run_shard(
    params: &AdmmParams,
    device: &Device,
    problem: &ScenarioProblem,
    nets: &[Network],
    shard: &[usize],
    lanes: Option<usize>,
    warm: Option<&WarmState>,
) -> (Vec<(usize, ScenarioResult)>, usize) {
    let (ngen, nbranch, nbus, m) = (problem.ngen, problem.nbranch, problem.nbus, problem.m);
    let ll = lanes.unwrap_or(shard.len()).min(shard.len());
    let tron = TronSolver::new(params.tron.clone());
    let alm = AlmSettings::from_params(params);
    let stats = device.stats().clone();

    // Fill the initial lanes host-side, then create the slot-major buffers
    // with one bulk upload each.
    let mut queue = shard.iter().copied();
    let mut occupant: Vec<usize> = Vec::with_capacity(ll);
    let mut gen_host: Vec<GenState> = Vec::with_capacity(ll * ngen);
    let mut branch_host: Vec<BranchState> = Vec::with_capacity(ll * nbranch);
    let mut bus_host: Vec<BusState> = Vec::with_capacity(ll * nbus);
    let mut u_host = Vec::with_capacity(ll * m);
    let mut v_host = Vec::with_capacity(ll * m);
    let mut z_host = Vec::with_capacity(ll * m);
    let mut y_host = Vec::with_capacity(ll * m);
    let mut lam_host = Vec::with_capacity(ll * m);
    let mut rho_host = Vec::with_capacity(ll * m);
    for _ in 0..ll {
        let idx = queue.next().expect("lanes never exceed the shard");
        let seg = init_segment(&nets[idx], &problem.data[idx], problem, warm);
        occupant.push(idx);
        gen_host.extend(seg.gens);
        branch_host.extend(seg.branches);
        bus_host.extend(seg.buses);
        u_host.extend(seg.u);
        v_host.extend(seg.v);
        z_host.extend(seg.z);
        y_host.extend(seg.y);
        lam_host.extend(seg.lam);
        rho_host.extend_from_slice(&problem.rho);
    }
    let mut st = SlotState {
        gens: DeviceBuffer::from_host(stats.clone(), &gen_host),
        branches: DeviceBuffer::from_host(stats.clone(), &branch_host),
        buses: DeviceBuffer::from_host(stats.clone(), &bus_host),
        u: DeviceBuffer::from_host(stats.clone(), &u_host),
        v: DeviceBuffer::from_host(stats.clone(), &v_host),
        z: DeviceBuffer::from_host(stats.clone(), &z_host),
        z_prev: DeviceBuffer::zeroed(stats.clone(), ll * m),
        y: DeviceBuffer::from_host(stats.clone(), &y_host),
        lam: DeviceBuffer::from_host(stats.clone(), &lam_host),
        rho: DeviceBuffer::from_host(stats, &rho_host),
    };

    let mut slot_data: Vec<ScenarioData> =
        occupant.iter().map(|&i| problem.data[i].clone()).collect();
    let segs = SegMaps::build(ll, problem);
    let mut ctl: Vec<ScenCtl> = (0..ll).map(|_| ScenCtl::fresh(params)).collect();
    let mut active = vec![true; ll];
    let mut out: Vec<(usize, ScenarioResult)> = Vec::with_capacity(shard.len());
    let mut ticks = 0usize;

    while active.iter().any(|&a| a) {
        ticks += 1;
        tick(
            device, &mut st, problem, &slot_data, &segs, &tron, &alm, &active, &ctl,
        );

        // Residuals, per slot.
        let prim = device.reduce_max_segments("primal_residual", &st.z, m, &active, {
            let u = st.u.as_slice();
            let v = st.v.as_slice();
            move |k, zk| (u[k] - v[k] + zk).abs()
        });
        let dual = device.reduce_max_segments("dual_residual", &st.z, m, &active, {
            let zp = st.z_prev.as_slice();
            let rho = st.rho.as_slice();
            move |k, zk| (rho[k] * (zk - zp[k])).abs()
        });

        // Per-slot control: inner bookkeeping, outer boundaries.
        let mut boundary = vec![false; ll];
        for s in 0..ll {
            if !active[s] {
                continue;
            }
            let c = &mut ctl[s];
            c.total_inner += 1;
            c.inner_in_outer += 1;
            c.primres = prim[s];
            let inner_converged = prim[s] <= params.eps_inner && dual[s] <= params.eps_inner;
            if inner_converged || c.inner_in_outer >= params.max_inner {
                boundary[s] = true;
            }
        }
        if !boundary.iter().any(|&b| b) {
            continue;
        }

        // Outer-level update and termination for slots at a boundary.
        let z_inf = device.reduce_max_segments("z_norm", &st.z, m, &boundary, |_, zk| zk.abs());
        let mut lambda_mask = vec![false; ll];
        let mut finished = vec![false; ll];
        for s in 0..ll {
            if !boundary[s] {
                continue;
            }
            let c = &mut ctl[s];
            c.z_inf = z_inf[s];
            c.inner_in_outer = 0;
            c.outer_done += 1;
            if c.z_inf <= params.eps_outer {
                c.status = AdmmStatus::Converged;
                finished[s] = true;
            } else {
                lambda_mask[s] = true;
            }
        }
        if lambda_mask.iter().any(|&b| b) {
            let betas: Vec<f64> = ctl.iter().map(|c| c.beta).collect();
            let bound = params.lambda_bound;
            let z = st.z.as_slice();
            let cons = segs.cons.as_slice();
            device.launch_map_segments("lambda_update", &mut st.lam, m, &lambda_mask, {
                move |k, lk| kernels::lambda_element(z[k], betas[cons[k] as usize], bound, lk)
            });
            for s in 0..ll {
                if !lambda_mask[s] {
                    continue;
                }
                let c = &mut ctl[s];
                if c.z_inf > params.z_decrease_factor * c.z_inf_prev {
                    c.beta *= params.beta_factor;
                }
                c.z_inf_prev = c.z_inf;
                if c.outer_done >= params.max_outer {
                    finished[s] = true;
                }
            }
        }

        // Extract finished slots and stream the next pending scenarios in.
        for s in 0..ll {
            if !finished[s] {
                continue;
            }
            let idx = occupant[s];
            out.push((idx, extract_slot(&st, s, &nets[idx], &ctl[s], problem)));
            match queue.next() {
                Some(next) => {
                    let seg = init_segment(&nets[next], &problem.data[next], problem, warm);
                    admit_into_slot(&mut st, s, &seg, problem);
                    occupant[s] = next;
                    slot_data[s] = problem.data[next].clone();
                    ctl[s] = ScenCtl::fresh(params);
                }
                None => active[s] = false,
            }
        }
    }
    (out, ticks)
}

/// One batched inner iteration over every active slot: the eight kernel
/// launches of Algorithm 1's lines 3–6, each spanning `L × n` elements.
#[allow(clippy::too_many_arguments)]
fn tick(
    device: &Device,
    st: &mut SlotState,
    problem: &ScenarioProblem,
    slot_data: &[ScenarioData],
    segs: &SegMaps,
    tron: &TronSolver,
    alm: &AlmSettings,
    active: &[bool],
    ctl: &[ScenCtl],
) {
    let (ngen, nbranch, nbus, m) = (problem.ngen, problem.nbranch, problem.nbus, problem.m);
    // x block: generators and branches.
    {
        let v = st.v.as_slice();
        let z = st.z.as_slice();
        let y = st.y.as_slice();
        let rho = st.rho.as_slice();
        let gen_seg = segs.gen.as_slice();
        device.launch_map_segments("generator_update", &mut st.gens, ngen, active, {
            move |g, state| {
                let s = gen_seg[g] as usize;
                kernels::generator_element(
                    &slot_data[s].gens[g - s * ngen],
                    s * m,
                    v,
                    z,
                    y,
                    rho,
                    state,
                )
            }
        });
        let branch_seg = segs.branch.as_slice();
        device.launch_blocks_segments("branch_tron", &mut st.branches, nbranch, active, {
            move |l, state| {
                let s = branch_seg[l] as usize;
                kernels::branch_element(
                    &slot_data[s].branches[l - s * nbranch],
                    s * m,
                    v,
                    z,
                    y,
                    rho,
                    tron,
                    alm,
                    state,
                )
            }
        });
    }
    {
        let gens = st.gens.as_slice();
        let branches = st.branches.as_slice();
        let cons = segs.cons.as_slice();
        device.launch_map_segments("u_scatter", &mut st.u, m, active, move |k, uk| {
            let s = cons[k] as usize;
            *uk = kernels::u_element(
                k - s * m,
                ngen,
                &gens[s * ngen..(s + 1) * ngen],
                &branches[s * nbranch..(s + 1) * nbranch],
            );
        });
    }
    // x̄ block: buses.
    {
        let u = st.u.as_slice();
        let z = st.z.as_slice();
        let y = st.y.as_slice();
        let rho = st.rho.as_slice();
        let bus_seg = segs.bus.as_slice();
        device.launch_map_segments("bus_update", &mut st.buses, nbus, active, {
            move |b, state| {
                let s = bus_seg[b] as usize;
                kernels::bus_element(
                    &slot_data[s].buses[b - s * nbus],
                    s * m,
                    u,
                    z,
                    y,
                    rho,
                    state,
                )
            }
        });
    }
    {
        let buses = st.buses.as_slice();
        let vplan = problem.vplan.as_slice();
        let cons = segs.cons.as_slice();
        device.launch_map_segments("v_scatter", &mut st.v, m, active, move |k, vk| {
            let s = cons[k] as usize;
            let (bus, slot) = vplan[k - s * m];
            *vk = kernels::v_element(&buses[s * nbus + bus], slot);
        });
    }
    // z and multiplier updates.
    {
        // Device-side copy of the active segments (free, like the single
        // driver's z_prev copy).
        let z = st.z.as_slice();
        let zp = st.z_prev.as_mut_slice();
        for (s, &a) in active.iter().enumerate() {
            if a {
                zp[s * m..(s + 1) * m].copy_from_slice(&z[s * m..(s + 1) * m]);
            }
        }
    }
    {
        let betas: Vec<f64> = ctl.iter().map(|c| c.beta).collect();
        let u = st.u.as_slice();
        let v = st.v.as_slice();
        let y = st.y.as_slice();
        let lam = st.lam.as_slice();
        let rho = st.rho.as_slice();
        let cons = segs.cons.as_slice();
        device.launch_map_segments("z_update", &mut st.z, m, active, move |k, zk| {
            *zk = kernels::z_element(k, u, v, y, lam, rho, betas[cons[k] as usize]);
        });
    }
    {
        let u = st.u.as_slice();
        let v = st.v.as_slice();
        let z = st.z.as_slice();
        let rho = st.rho.as_slice();
        device.launch_map_segments("y_update", &mut st.y, m, active, move |k, yk| {
            kernels::y_element(k, u, v, z, rho, yk);
        });
    }
}
