//! Batched multi-scenario ADMM: the execution engine that solves *K*
//! load/contingency scenarios of one network through batched kernel
//! launches, sharded across a pool of logical devices.
//!
//! The paper's solver already expresses every algorithmic step as a batch
//! kernel over one network's components; this module widens each of those
//! launches to span many scenarios in **slot-major** device buffers (slot
//! `s` owns elements `[s·n, (s+1)·n)`), in the style of the SIMD abstraction
//! of Shin et al. (arXiv:2307.16830), and splits *what* a scenario solve is
//! from *where and when* it runs:
//!
//! * [`problem::ScenarioProblem`] — shared, `Arc`-deduplicated read-only
//!   problem data, built once per scenario set (**what**),
//! * [`scheduler::ScenarioScheduler`] — the ADMM
//!   [`LaneSolver`](gridsim_engine::LaneSolver) on the solver-agnostic
//!   [`gridsim_engine::Engine`], which shards scenarios across a
//!   [`gridsim_batch::DevicePool`] and streams pending scenarios into slots
//!   as earlier ones converge (**where and when**),
//! * [`ScenarioBatch`] — the K-scenarios-on-one-device, everything-admitted
//!   special case of the scheduler, kept as the convenience front end.
//!
//! Three properties make this a fleet solver rather than `K` loops:
//!
//! * **one launch per algorithmic step per device** — the generator/bus/z/
//!   multiplier `launch_map`s and the TRON `launch_blocks` branch solves
//!   cover every active slot at once, so per-launch overhead is amortized
//!   and the parallel backend sees `L×` more elements to fan out across the
//!   worker pool,
//! * **per-scenario convergence masks and streaming admission** — each
//!   scenario carries its own inner/outer counters, penalty `β`, and
//!   termination status; converged scenarios stop consuming kernel work and
//!   (under a lane cap) hand their slot to the next pending scenario, so a
//!   busy device never shrinks below full occupancy,
//! * **bitwise-identical arithmetic** — the per-element update bodies are
//!   shared with [`AdmmSolver`](crate::solver::AdmmSolver) through
//!   `crate::kernels`, and every scenario's iterates depend only on its
//!   own buffer segment, so results are bit-for-bit independent of the
//!   device count, lane count, and admission order — and a K=1 batch
//!   reproduces a plain solve exactly on every launch backend.
//!
//! Warm starts: [`ScenarioBatch::solve_warm`] seeds every scenario from one
//! shared [`WarmState`] (e.g. the solved nominal case) with optional
//! per-scenario ramp-limited generator bounds; [`ScenarioBatch::solve_chained`]
//! instead threads the warm state from scenario `k−1` into scenario `k`
//! (ramp-limited), trading batch width for warm-start depth — the right mode
//! for ordered scenario sweeps such as monotone load ramps.

pub mod problem;
pub mod scheduler;

pub use problem::ScenarioProblem;
pub use scheduler::ScenarioScheduler;

use crate::params::AdmmParams;
use crate::solver::{AdmmStatus, WarmState};
use gridsim_acopf::solution::OpfSolution;
use gridsim_acopf::start::ramp_limited_bounds;
use gridsim_acopf::violations::SolutionQuality;
use gridsim_batch::{Device, DevicePool};
use gridsim_engine::FleetRequest;
use gridsim_grid::network::Network;
use gridsim_store::StoreRunStats;
use std::time::{Duration, Instant};

/// Result of one scenario inside a batched solve. Field-for-field the
/// scenario-local counterpart of [`crate::solver::AdmmResult`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ScenarioResult {
    /// Name of the scenario's network.
    pub name: String,
    /// The extracted operating point.
    pub solution: OpfSolution,
    /// Objective value ($/hr).
    pub objective: f64,
    /// Solution-quality metrics.
    pub quality: SolutionQuality,
    /// Termination status.
    pub status: AdmmStatus,
    /// Cumulative inner ADMM iterations of this scenario.
    pub inner_iterations: usize,
    /// Outer (augmented-Lagrangian) iterations of this scenario.
    pub outer_iterations: usize,
    /// Final `‖z‖∞` of this scenario.
    pub z_inf: f64,
    /// Final primal residual of this scenario.
    pub primal_residual: f64,
    /// State snapshot for warm-starting a follow-up solve.
    pub warm_state: WarmState,
}

/// Result of a batched multi-scenario solve.
#[derive(Debug, Clone)]
pub struct ScenarioBatchResult {
    /// Per-scenario results, in input order.
    pub results: Vec<ScenarioResult>,
    /// Wall-clock time of the whole batch.
    pub solve_time: Duration,
    /// Number of batched inner-iteration ticks executed. Each tick launches
    /// one batched round of kernels covering every still-active slot, so
    /// for a single-device all-admitted batch `ticks` equals the *maximum*
    /// per-scenario inner iteration count, not the sum; with streaming
    /// admission it also covers the refilled scenarios' rounds, and for a
    /// sharded multi-device run it is the longest device's count (shards
    /// run concurrently). [`ScenarioBatch::solve_chained`] runs its
    /// scenarios as consecutive K=1 batches instead, so there `ticks` is
    /// the sum over the chain (every tick still launches one kernel round).
    pub ticks: usize,
    /// Solution-store traffic for this run: admissions seeded from a stored
    /// neighbor (hits), admissions that consulted the store and found no
    /// eligible neighbor (misses), and converged scenarios committed back
    /// (inserts). All zero for the store-less solve paths.
    pub store: StoreRunStats,
}

impl ScenarioBatchResult {
    /// Sum of per-scenario inner iterations (the work a sequential driver
    /// would have spread over as many kernel rounds).
    pub fn total_inner_iterations(&self) -> usize {
        self.results.iter().map(|r| r.inner_iterations).sum()
    }

    /// Worst max-violation across scenarios.
    pub fn worst_violation(&self) -> f64 {
        self.results
            .iter()
            .map(|r| r.quality.max_violation())
            .fold(0.0, f64::max)
    }

    /// True when every scenario converged.
    pub fn all_converged(&self) -> bool {
        self.results
            .iter()
            .all(|r| r.status == AdmmStatus::Converged)
    }
}

/// The batched multi-scenario driver: the K-scenarios-on-one-device,
/// everything-admitted-at-once special case of [`ScenarioScheduler`].
#[derive(Debug, Clone)]
pub struct ScenarioBatch {
    /// Algorithm parameters (shared by every scenario).
    pub params: AdmmParams,
    /// Batch device executing the kernels.
    pub device: Device,
}

impl ScenarioBatch {
    /// Create a batched driver on an auto-resolved device
    /// (`GRIDSIM_BACKEND` override → worker count; backends are bitwise
    /// interchangeable, so the choice affects speed only).
    pub fn new(params: AdmmParams) -> Self {
        ScenarioBatch {
            params,
            device: Device::default(),
        }
    }

    /// Create a batched driver on a specific device.
    pub fn with_device(params: AdmmParams, device: Device) -> Self {
        ScenarioBatch { params, device }
    }

    /// The equivalent scheduler: this driver's device as a single-device
    /// pool, no lane cap.
    fn scheduler(&self) -> ScenarioScheduler {
        ScenarioScheduler::with_pool(self.params.clone(), DevicePool::single(self.device.clone()))
    }

    /// Solve one [`FleetRequest`] — see [`ScenarioScheduler::run`] for the
    /// store and execution-mode semantics.
    ///
    /// Every network must share the dimensions and topology of the first
    /// (same buses, generators and branch endpoints); loads, admittances,
    /// shunts and generator data may differ. Panics otherwise.
    pub fn run(&self, request: FleetRequest<'_, WarmState>) -> ScenarioBatchResult {
        self.scheduler().run(request)
    }

    /// Solve all scenarios warm-started from one shared [`WarmState`] (e.g.
    /// the solved nominal case), optionally with per-scenario ramp-limited
    /// generator bounds (`pg_bounds[s]` applies to scenario `s`).
    pub fn solve_warm(
        &self,
        nets: &[Network],
        warm: &WarmState,
        pg_bounds: Option<&[(Vec<f64>, Vec<f64>)]>,
    ) -> ScenarioBatchResult {
        self.scheduler().solve_warm(nets, warm, pg_bounds)
    }

    /// Solve the scenarios in order, seeding scenario `k` from scenario
    /// `k−1`'s warm state with ramp-limited generator bounds (`base` seeds
    /// scenario 0). This trades the batch width of [`ScenarioBatch::run`]
    /// for warm-start depth — each solve is a K=1 batch — and fits ordered
    /// sweeps such as monotone load ramps, where adjacent scenarios are
    /// nearly identical.
    pub fn solve_chained(
        &self,
        nets: &[Network],
        base: &WarmState,
        ramp_fraction: f64,
    ) -> ScenarioBatchResult {
        let start = Instant::now();
        let scheduler = self.scheduler();
        let mut results = Vec::with_capacity(nets.len());
        let mut ticks = 0usize;
        let mut prev = base.clone();
        for net in nets {
            let bounds = ramp_limited_bounds(net, prev.previous_pg(), ramp_fraction);
            let one = scheduler.solve_warm(std::slice::from_ref(net), &prev, Some(&[bounds][..]));
            ticks += one.ticks;
            let r = one.results.into_iter().next().expect("one scenario");
            prev = r.warm_state.clone();
            results.push(r);
        }
        ScenarioBatchResult {
            results,
            solve_time: start.elapsed(),
            ticks,
            store: StoreRunStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::AdmmSolver;
    use gridsim_grid::cases;

    fn nets_for(case: &gridsim_grid::Case, mults: &[f64]) -> Vec<Network> {
        mults
            .iter()
            .map(|&f| case.scale_load(f).compile().unwrap())
            .collect()
    }

    #[test]
    fn k1_batch_reproduces_single_solver_bitwise() {
        let net = cases::case9().compile().unwrap();
        // Bitwise identity holds at every iterate, so a bounded budget keeps
        // this unit test cheap; the converged-profile K=1 identity is covered
        // by the property suite.
        let params = AdmmParams {
            max_outer: 3,
            max_inner: 60,
            ..AdmmParams::default()
        };
        let single = AdmmSolver::new(params.clone()).solve(&net);
        let batch = ScenarioBatch::new(params).run(FleetRequest::over(std::slice::from_ref(&net)));
        assert_eq!(batch.results.len(), 1);
        let r = &batch.results[0];
        assert_eq!(r.inner_iterations, single.inner_iterations);
        assert_eq!(r.outer_iterations, single.outer_iterations);
        assert_eq!(r.status, single.status);
        assert_eq!(r.solution.pg, single.solution.pg);
        assert_eq!(r.solution.qg, single.solution.qg);
        assert_eq!(r.solution.vm, single.solution.vm);
        assert_eq!(r.solution.va, single.solution.va);
        assert_eq!(r.z_inf.to_bits(), single.z_inf.to_bits());
        assert_eq!(r.warm_state, single.warm_state);
    }

    #[test]
    fn batch_matches_per_scenario_sequential_solves() {
        let base = cases::case9();
        let nets = nets_for(&base, &[0.98, 1.0, 1.03]);
        let params = AdmmParams::test_profile();
        let batch = ScenarioBatch::new(params.clone()).run(FleetRequest::over(&nets));
        let solver = AdmmSolver::new(params);
        for (r, net) in batch.results.iter().zip(&nets) {
            let single = solver.solve(net);
            assert_eq!(r.inner_iterations, single.inner_iterations);
            assert_eq!(r.solution.pg, single.solution.pg);
            assert_eq!(r.solution.vm, single.solution.vm);
        }
        // Ticks equal the slowest scenario, not the sum.
        let max_inner = batch
            .results
            .iter()
            .map(|r| r.inner_iterations)
            .max()
            .unwrap();
        assert_eq!(batch.ticks, max_inner);
        assert!(batch.total_inner_iterations() > batch.ticks);
    }

    #[test]
    fn converged_scenarios_stop_consuming_kernel_work() {
        let base = cases::case9();
        // A spread of loads so convergence times differ across scenarios.
        let nets = nets_for(&base, &[1.0, 1.05, 0.95]);
        let batcher = ScenarioBatch::new(AdmmParams::test_profile());
        let before = batcher.device.stats().snapshot();
        let result = batcher.run(FleetRequest::over(&nets));
        let delta = batcher.device.stats().snapshot().since(&before);
        // Masked launches record only the active elements: the branch-TRON
        // block count equals the sum of per-scenario inner iterations times
        // branches, strictly less than ticks × K × nbranch.
        let nbranch = nets[0].nbranch as u64;
        let expected: u64 = result
            .results
            .iter()
            .map(|r| r.inner_iterations as u64 * nbranch)
            .sum();
        assert_eq!(delta.kernels["branch_tron"].blocks, expected);
        assert!(
            expected < result.ticks as u64 * nets.len() as u64 * nbranch,
            "masking saved no work"
        );
        // One launch per tick, regardless of K.
        assert_eq!(delta.kernels["z_update"].launches, result.ticks as u64);
    }

    #[test]
    fn transfers_scale_with_scenarios_not_iterations() {
        let nets = nets_for(&cases::case9(), &[1.0, 1.02]);
        let params = AdmmParams {
            max_outer: 2,
            max_inner: 30,
            ..AdmmParams::default()
        };
        let batcher = ScenarioBatch::new(params);
        let before = batcher.device.stats().snapshot();
        let result = batcher.run(FleetRequest::over(&nets));
        let delta = batcher.device.stats().snapshot().since(&before);
        // Uploads happen once at setup (9 slot-major buffers) and reads once
        // per finished scenario (6 result-bearing buffers) — never per
        // iteration, even over dozens of ticks.
        assert!(result.ticks > 10, "want a solve with many ticks");
        assert_eq!(delta.host_to_device_transfers, 9, "h2d grew with ticks");
        assert_eq!(
            delta.device_to_host_transfers,
            6 * nets.len() as u64,
            "d2h grew with ticks"
        );
    }

    #[test]
    fn shared_warm_start_cuts_iterations() {
        let base = cases::case9();
        let nominal = base.compile().unwrap();
        let cold = AdmmSolver::new(AdmmParams::test_profile()).solve(&nominal);
        let nets = nets_for(&base, &[1.005, 1.01, 1.015]);
        let batcher = ScenarioBatch::new(AdmmParams::test_profile());
        let warm = batcher.solve_warm(&nets, &cold.warm_state, None);
        let coldb = batcher.run(FleetRequest::over(&nets));
        for (w, c) in warm.results.iter().zip(&coldb.results) {
            assert!(w.quality.max_violation() < 2e-2);
            assert!(
                w.inner_iterations <= c.inner_iterations,
                "warm {} vs cold {}",
                w.inner_iterations,
                c.inner_iterations
            );
        }
        assert!(warm.ticks < coldb.ticks);
    }

    #[test]
    fn chained_solve_respects_ramp_limits() {
        let base = cases::case9();
        let nominal = base.compile().unwrap();
        let cold = AdmmSolver::new(AdmmParams::test_profile()).solve(&nominal);
        let nets = nets_for(&base, &[1.005, 1.01]);
        let ramp = 0.02;
        let chained = ScenarioBatch::new(AdmmParams::test_profile()).solve_chained(
            &nets,
            &cold.warm_state,
            ramp,
        );
        assert_eq!(chained.results.len(), 2);
        let mut prev_pg = cold.warm_state.previous_pg().to_vec();
        for (r, net) in chained.results.iter().zip(&nets) {
            let (lo, hi) = ramp_limited_bounds(net, &prev_pg, ramp);
            for g in 0..net.ngen {
                assert!(r.solution.pg[g] >= lo[g] - 1e-9);
                assert!(r.solution.pg[g] <= hi[g] + 1e-9);
            }
            prev_pg = r.solution.pg.clone();
        }
    }

    #[test]
    #[should_panic(expected = "topology differs")]
    fn mismatched_topology_panics() {
        let a = cases::case9().compile().unwrap();
        let mut case_b = cases::case9();
        case_b.branches.swap(0, 3);
        let b = case_b.compile().unwrap();
        let _ = ScenarioBatch::new(AdmmParams::default()).run(FleetRequest::over(&[a, b]));
    }
}
