//! Shared, `Arc`-deduplicated read-only problem data for scenario execution.
//!
//! Every scenario of a batch perturbs the same base network, so most of the
//! read-only data the kernels consume is identical across scenarios: the
//! consensus [`Layout`], the `v`-scatter plan, and the per-constraint `ρ`
//! vector depend only on the topology and are built **once** per scenario
//! set; the per-component data vectors (generators, branches, buses) are
//! built per scenario but *interned* — a scenario whose generator data
//! equals an earlier scenario's shares that scenario's `Arc` instead of
//! carrying a copy. Load-ramp scenarios share one generator and one branch
//! vector; N−1 outage scenarios additionally share one bus vector. The
//! kernels can consume shared data from any slot because every stored index
//! is scenario-local (the element functions add the slot's base offset at
//! call time, see `crate::kernels`).

use crate::kernels::{self, BranchData, BusData, GenData, ProblemData};
use crate::layout::{BusSlot, Layout};
use crate::params::AdmmParams;
use gridsim_grid::network::Network;
use std::sync::Arc;

/// Read-only per-scenario kernel data; cheap to clone (three `Arc`s).
#[derive(Debug, Clone)]
pub(crate) struct ScenarioData {
    pub(crate) gens: Arc<Vec<GenData>>,
    pub(crate) branches: Arc<Vec<BranchData>>,
    pub(crate) buses: Arc<Vec<BusData>>,
}

/// The shared problem of a scenario set: one layout/scatter-plan/ρ-vector
/// for the whole set plus interned per-scenario component data.
#[derive(Debug)]
pub struct ScenarioProblem {
    pub(crate) layout: Arc<Layout>,
    /// Scenario-local `v`-scatter plan (one copy serves every slot).
    pub(crate) vplan: Arc<Vec<(usize, BusSlot)>>,
    /// Per-constraint penalties of one scenario segment.
    pub(crate) rho: Arc<Vec<f64>>,
    pub(crate) data: Vec<ScenarioData>,
    pub(crate) nbus: usize,
    pub(crate) ngen: usize,
    pub(crate) nbranch: usize,
    /// Constraints per scenario segment.
    pub(crate) m: usize,
    distinct: (usize, usize, usize),
}

/// Intern `v` into `pool`: return the existing `Arc` when an equal vector
/// was already built, otherwise store and return a new one.
///
/// The scan is linear in the number of *distinct* vectors, and each
/// comparison early-exits on the first differing element (for all-distinct
/// sets, e.g. random per-bus perturbations, the first bus's load already
/// differs), so build cost stays far below one solve tick even at thousands
/// of scenarios. Revisit with hashing if scenario counts grow past that.
fn intern<T: PartialEq>(pool: &mut Vec<Arc<Vec<T>>>, v: Vec<T>) -> Arc<Vec<T>> {
    if let Some(existing) = pool.iter().find(|a| ***a == v) {
        return Arc::clone(existing);
    }
    let a = Arc::new(v);
    pool.push(Arc::clone(&a));
    a
}

impl ScenarioProblem {
    /// Build the shared problem for `nets` (one scenario per network).
    /// Panics unless every network shares the first one's dimensions and
    /// topology; `pg_bounds[s]`, when given, applies to scenario `s`.
    pub fn build(
        nets: &[Network],
        params: &AdmmParams,
        pg_bounds: Option<&[(Vec<f64>, Vec<f64>)]>,
    ) -> ScenarioProblem {
        let (nbus, ngen, nbranch) = check_compatible(nets);
        if let Some(b) = pg_bounds {
            assert_eq!(b.len(), nets.len(), "one pg bound pair per scenario");
        }
        let layout = Arc::new(Layout::build(&nets[0], params));
        let m = layout.num_constraints();
        let vplan = Arc::new(kernels::v_plan(&layout));
        let rho = Arc::new(layout.rho_vector());
        let mut gen_pool: Vec<Arc<Vec<GenData>>> = Vec::new();
        let mut branch_pool: Vec<Arc<Vec<BranchData>>> = Vec::new();
        let mut bus_pool: Vec<Arc<Vec<BusData>>> = Vec::new();
        let data = nets
            .iter()
            .enumerate()
            .map(|(s, net)| {
                let bounds = pg_bounds.map(|b| &b[s]);
                let d = ProblemData::build(net, &layout, params, bounds);
                ScenarioData {
                    gens: intern(&mut gen_pool, d.gens),
                    branches: intern(&mut branch_pool, d.branches),
                    buses: intern(&mut bus_pool, d.buses),
                }
            })
            .collect();
        ScenarioProblem {
            layout,
            vplan,
            rho,
            data,
            nbus,
            ngen,
            nbranch,
            m,
            distinct: (gen_pool.len(), branch_pool.len(), bus_pool.len()),
        }
    }

    /// Number of scenarios.
    pub fn num_scenarios(&self) -> usize {
        self.data.len()
    }

    /// Number of *distinct* (generator, branch, bus) data vectors actually
    /// stored after deduplication — at most one per scenario each, exactly
    /// one each when all scenarios share the respective data.
    pub fn distinct_data_vecs(&self) -> (usize, usize, usize) {
        self.distinct
    }
}

/// Validate that every scenario network shares the first one's dimensions
/// and topology; returns `(nbus, ngen, nbranch)`.
pub(crate) fn check_compatible(nets: &[Network]) -> (usize, usize, usize) {
    assert!(!nets.is_empty(), "need at least one scenario");
    let first = &nets[0];
    for (s, net) in nets.iter().enumerate().skip(1) {
        assert!(
            net.nbus == first.nbus && net.ngen == first.ngen && net.nbranch == first.nbranch,
            "scenario {s} dimensions ({}, {}, {}) differ from scenario 0 ({}, {}, {})",
            net.nbus,
            net.ngen,
            net.nbranch,
            first.nbus,
            first.ngen,
            first.nbranch
        );
        assert!(
            net.gen_bus == first.gen_bus
                && net.br_from == first.br_from
                && net.br_to == first.br_to,
            "scenario {s} topology differs from scenario 0; scenarios must share \
             the base network's buses, generators and branch endpoints"
        );
    }
    (first.nbus, first.ngen, first.nbranch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_grid::cases;
    use gridsim_grid::scenario::ScenarioSet;

    #[test]
    fn load_ramp_shares_generator_and_branch_data() {
        let set = ScenarioSet::load_ramp(cases::case9(), 4, 0.95, 1.05);
        let nets = set.networks().unwrap();
        let p = ScenarioProblem::build(&nets, &AdmmParams::default(), None);
        // Loads differ per scenario; generator and branch data do not.
        assert_eq!(p.distinct_data_vecs(), (1, 1, 4));
        assert!(Arc::ptr_eq(&p.data[0].gens, &p.data[3].gens));
        assert!(Arc::ptr_eq(&p.data[0].branches, &p.data[3].branches));
        assert!(!Arc::ptr_eq(&p.data[0].buses, &p.data[1].buses));
    }

    #[test]
    fn outages_share_bus_and_generator_data() {
        let set = ScenarioSet::branch_outages(cases::case9(), 3);
        let nets = set.networks().unwrap();
        assert_eq!(nets.len(), 3);
        let p = ScenarioProblem::build(&nets, &AdmmParams::default(), None);
        // Outages keep nominal loads (shared buses) but open distinct lines.
        let (gens, branches, buses) = p.distinct_data_vecs();
        assert_eq!(gens, 1);
        assert_eq!(buses, 1);
        assert_eq!(branches, 3);
        assert!(Arc::ptr_eq(&p.data[0].buses, &p.data[2].buses));
    }

    #[test]
    fn per_scenario_pg_bounds_split_generator_data() {
        let net = cases::case9().compile().unwrap();
        let nets = vec![net.clone(), net];
        let lo: Vec<f64> = nets[0].pmin.clone();
        let hi: Vec<f64> = nets[0].pmax.iter().map(|&p| p * 0.9).collect();
        let bounds = vec![(nets[0].pmin.clone(), nets[0].pmax.clone()), (lo, hi)];
        let p = ScenarioProblem::build(&nets, &AdmmParams::default(), Some(&bounds));
        assert_eq!(
            p.distinct_data_vecs().0,
            2,
            "tightened bounds must not dedup"
        );
    }

    #[test]
    #[should_panic(expected = "topology differs")]
    fn mismatched_topology_panics() {
        let a = cases::case9().compile().unwrap();
        let mut case_b = cases::case9();
        case_b.branches.swap(0, 3);
        let b = case_b.compile().unwrap();
        let _ = ScenarioProblem::build(&[a, b], &AdmmParams::default(), None);
    }
}
