//! The branch subproblem (4): a 6-variable bound-constrained nonconvex
//! problem solved by the batch TRON solver.
//!
//! Variables, in order: `[v_i, v_j, θ_i, θ_j, s_ij, s_ji]`. The objective is
//! the sum of
//!
//! * ADMM consensus terms `y (u − t) + ρ/2 (u − t)²` for the four flow
//!   consensus constraints (where `u` is the flow computed from the branch
//!   voltages and `t = v_bus − z` is fixed during the branch solve),
//! * the analogous terms for the four voltage/angle consensus constraints,
//! * inner augmented-Lagrangian terms
//!   `λ̃ (p² + q² + s) + ρ̃/2 (p² + q² + s)²` for the two line-limit slack
//!   equalities (only when the branch has a finite rating).
//!
//! Slack bounds are `s ∈ [−(margin·rate)², 0]`, so that `p² + q² ≤ (margin·
//! rate)²` at a feasible point.

use gridsim_acopf::flows::BranchFlow;
use gridsim_grid::branch::BranchAdmittance;
use gridsim_sparse::dense::SmallMatrix;
use gridsim_tron::BoundProblem;

/// Per-constraint ADMM data seen by the branch problem: the combined target
/// `t = v − z` of the consensus term, the multiplier `y`, and the penalty ρ.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConsensusTerm {
    /// Target value `v − z` (fixed during the branch solve).
    pub target: f64,
    /// ADMM multiplier `y`.
    pub y: f64,
    /// ADMM penalty ρ.
    pub rho: f64,
}

impl ConsensusTerm {
    /// Value of the term at x-side value `u`.
    #[inline]
    fn value(&self, u: f64) -> f64 {
        let r = u - self.target;
        self.y * r + 0.5 * self.rho * r * r
    }

    /// Derivative of the term with respect to `u`.
    #[inline]
    fn deriv(&self, u: f64) -> f64 {
        self.y + self.rho * (u - self.target)
    }
}

/// The branch subproblem of one branch in one ADMM iteration.
#[derive(Debug, Clone)]
pub struct BranchProblem {
    /// The four flow functions in the order `[p_ij, q_ij, p_ji, q_ji]`.
    pub flows: [BranchFlow; 4],
    /// Consensus terms of the four flow constraints (same order).
    pub flow_terms: [ConsensusTerm; 4],
    /// Consensus terms of `[w_i, θ_i, w_j, θ_j]`.
    pub volt_terms: [ConsensusTerm; 4],
    /// Voltage magnitude bounds `[v_i^min, v_i^max, v_j^min, v_j^max]`.
    pub v_bounds: [f64; 4],
    /// Inner augmented-Lagrangian multipliers for the from/to line limits.
    pub alm_lambda: [f64; 2],
    /// Inner augmented-Lagrangian penalty.
    pub alm_rho: f64,
    /// Squared (tightened) line limit; `f64::INFINITY` when unlimited.
    pub limit_sq: f64,
}

impl BranchProblem {
    /// Build a problem skeleton from a branch admittance. Consensus and ALM
    /// data must be filled in by the caller before each solve.
    pub fn new(y: &BranchAdmittance, vmin_i: f64, vmax_i: f64, vmin_j: f64, vmax_j: f64) -> Self {
        BranchProblem {
            flows: BranchFlow::all_from_admittance(y),
            flow_terms: [ConsensusTerm::default(); 4],
            volt_terms: [ConsensusTerm::default(); 4],
            v_bounds: [vmin_i, vmax_i, vmin_j, vmax_j],
            alm_lambda: [0.0; 2],
            alm_rho: 0.0,
            limit_sq: f64::INFINITY,
        }
    }

    /// True when this branch has a finite line limit (and therefore slack
    /// variables and ALM terms).
    pub fn has_limit(&self) -> bool {
        self.limit_sq.is_finite()
    }

    /// The four flow values at the given voltages.
    pub fn flow_values(&self, x: &[f64]) -> [f64; 4] {
        let (vi, vj, ti, tj) = (x[0], x[1], x[2], x[3]);
        [
            self.flows[0].value(vi, vj, ti, tj),
            self.flows[1].value(vi, vj, ti, tj),
            self.flows[2].value(vi, vj, ti, tj),
            self.flows[3].value(vi, vj, ti, tj),
        ]
    }

    /// Line-limit slack residuals `p² + q² + s` for the from and to sides.
    pub fn slack_residuals(&self, x: &[f64]) -> [f64; 2] {
        if !self.has_limit() {
            return [0.0; 2];
        }
        let f = self.flow_values(x);
        [
            f[0] * f[0] + f[1] * f[1] + x[4],
            f[2] * f[2] + f[3] * f[3] + x[5],
        ]
    }
}

impl BoundProblem for BranchProblem {
    fn dim(&self) -> usize {
        6
    }

    fn lower(&self, i: usize) -> f64 {
        match i {
            0 => self.v_bounds[0],
            1 => self.v_bounds[2],
            2 | 3 => -2.0 * std::f64::consts::PI,
            _ => {
                if self.has_limit() {
                    -self.limit_sq
                } else {
                    0.0
                }
            }
        }
    }

    fn upper(&self, i: usize) -> f64 {
        match i {
            0 => self.v_bounds[1],
            1 => self.v_bounds[3],
            2 | 3 => 2.0 * std::f64::consts::PI,
            _ => 0.0,
        }
    }

    fn objective(&self, x: &[f64]) -> f64 {
        let (vi, vj, ti, tj) = (x[0], x[1], x[2], x[3]);
        let flows = self.flow_values(x);
        let mut obj = 0.0;
        for (term, &flow) in self.flow_terms.iter().zip(&flows) {
            obj += term.value(flow);
        }
        obj += self.volt_terms[0].value(vi * vi);
        obj += self.volt_terms[1].value(ti);
        obj += self.volt_terms[2].value(vj * vj);
        obj += self.volt_terms[3].value(tj);
        if self.has_limit() {
            let res = self.slack_residuals(x);
            for (&lambda, &r) in self.alm_lambda.iter().zip(&res) {
                obj += lambda * r + 0.5 * self.alm_rho * r * r;
            }
        }
        obj
    }

    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        g.fill(0.0);
        let (vi, vj, ti, tj) = (x[0], x[1], x[2], x[3]);
        let flows = self.flow_values(x);
        // Flow gradients with respect to (v_i, v_j, θ_i, θ_j).
        let grads: Vec<[f64; 4]> = self
            .flows
            .iter()
            .map(|f| {
                let fg = f.gradient(vi, vj, ti, tj);
                [fg.dvi, fg.dvj, fg.dti, fg.dtj]
            })
            .collect();
        // Consensus terms on the flows.
        for k in 0..4 {
            let w = self.flow_terms[k].deriv(flows[k]);
            for d in 0..4 {
                g[d] += w * grads[k][d];
            }
        }
        // Voltage/angle consensus terms.
        g[0] += self.volt_terms[0].deriv(vi * vi) * 2.0 * vi;
        g[2] += self.volt_terms[1].deriv(ti);
        g[1] += self.volt_terms[2].deriv(vj * vj) * 2.0 * vj;
        g[3] += self.volt_terms[3].deriv(tj);
        // ALM terms on the line limits.
        if self.has_limit() {
            let res = self.slack_residuals(x);
            for side in 0..2 {
                let w = self.alm_lambda[side] + self.alm_rho * res[side];
                let (pk, qk) = (2 * side, 2 * side + 1);
                for d in 0..4 {
                    g[d] += w * (2.0 * flows[pk] * grads[pk][d] + 2.0 * flows[qk] * grads[qk][d]);
                }
                g[4 + side] += w;
            }
        }
    }

    fn hessian(&self, x: &[f64], h: &mut SmallMatrix) {
        h.data.fill(0.0);
        let (vi, vj, ti, tj) = (x[0], x[1], x[2], x[3]);
        let flows = self.flow_values(x);
        let grads: Vec<[f64; 4]> = self
            .flows
            .iter()
            .map(|f| {
                let fg = f.gradient(vi, vj, ti, tj);
                [fg.dvi, fg.dvj, fg.dti, fg.dtj]
            })
            .collect();
        let hesses: Vec<[[f64; 4]; 4]> = self
            .flows
            .iter()
            .map(|f| f.hessian(vi, vj, ti, tj).to_dense())
            .collect();
        // Consensus terms on the flows:
        // rho * grad grad^T + (y + rho (u - t)) * hess.
        for k in 0..4 {
            let w1 = self.flow_terms[k].rho;
            let w2 = self.flow_terms[k].deriv(flows[k]);
            for r in 0..4 {
                for c in 0..4 {
                    h[(r, c)] += w1 * grads[k][r] * grads[k][c] + w2 * hesses[k][r][c];
                }
            }
        }
        // Voltage terms: d²/dvi² [y(vi²−t) + rho/2 (vi²−t)²]
        //  = 2(y + rho(vi²−t)) + rho (2 vi)².
        h[(0, 0)] +=
            2.0 * self.volt_terms[0].deriv(vi * vi) + self.volt_terms[0].rho * 4.0 * vi * vi;
        h[(1, 1)] +=
            2.0 * self.volt_terms[2].deriv(vj * vj) + self.volt_terms[2].rho * 4.0 * vj * vj;
        h[(2, 2)] += self.volt_terms[1].rho;
        h[(3, 3)] += self.volt_terms[3].rho;
        // ALM terms.
        if self.has_limit() {
            let res = self.slack_residuals(x);
            for side in 0..2 {
                let w = self.alm_lambda[side] + self.alm_rho * res[side];
                let (pk, qk) = (2 * side, 2 * side + 1);
                // Gradient of the residual r = p² + q² + s over all 6 vars.
                let mut gr = [0.0f64; 6];
                for d in 0..4 {
                    gr[d] = 2.0 * flows[pk] * grads[pk][d] + 2.0 * flows[qk] * grads[qk][d];
                }
                gr[4 + side] = 1.0;
                // rho * gr gr^T
                for r in 0..6 {
                    for c in 0..6 {
                        h[(r, c)] += self.alm_rho * gr[r] * gr[c];
                    }
                }
                // w * hess(r): 2 grad p grad p^T + 2 p hess p + same for q.
                for r in 0..4 {
                    for c in 0..4 {
                        h[(r, c)] += w
                            * (2.0 * grads[pk][r] * grads[pk][c]
                                + 2.0 * flows[pk] * hesses[pk][r][c]
                                + 2.0 * grads[qk][r] * grads[qk][c]
                                + 2.0 * flows[qk] * hesses[qk][r][c]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_grid::branch::Branch;

    fn sample_problem(with_limit: bool) -> BranchProblem {
        let y = Branch::line(1, 2, 0.02, 0.12, 0.05, 130.0).admittance();
        let mut p = BranchProblem::new(&y, 0.9, 1.1, 0.9, 1.1);
        for k in 0..4 {
            p.flow_terms[k] = ConsensusTerm {
                target: 0.1 * (k as f64) - 0.15,
                y: 0.2 - 0.05 * k as f64,
                rho: 10.0,
            };
        }
        p.volt_terms = [
            ConsensusTerm {
                target: 1.02,
                y: 0.5,
                rho: 1000.0,
            },
            ConsensusTerm {
                target: 0.05,
                y: -0.3,
                rho: 1000.0,
            },
            ConsensusTerm {
                target: 0.98,
                y: 0.1,
                rho: 1000.0,
            },
            ConsensusTerm {
                target: -0.02,
                y: 0.2,
                rho: 1000.0,
            },
        ];
        if with_limit {
            p.limit_sq = (0.99f64 * 1.3).powi(2);
            p.alm_lambda = [0.4, -0.2];
            p.alm_rho = 25.0;
        }
        p
    }

    fn sample_x() -> Vec<f64> {
        vec![1.03, 0.97, 0.08, -0.03, -0.4, -0.6]
    }

    #[test]
    fn gradient_matches_finite_difference() {
        for with_limit in [false, true] {
            let p = sample_problem(with_limit);
            let x = sample_x();
            let mut g = vec![0.0; 6];
            p.gradient(&x, &mut g);
            let h = 1e-6;
            for i in 0..6 {
                let mut xp = x.clone();
                let mut xm = x.clone();
                xp[i] += h;
                xm[i] -= h;
                let fd = (p.objective(&xp) - p.objective(&xm)) / (2.0 * h);
                assert!(
                    (g[i] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "limit={with_limit} var {i}: {} vs {fd}",
                    g[i]
                );
            }
        }
    }

    #[test]
    fn hessian_matches_finite_difference() {
        for with_limit in [false, true] {
            let p = sample_problem(with_limit);
            let x = sample_x();
            let mut hess = SmallMatrix::zeros(6);
            p.hessian(&x, &mut hess);
            let h = 1e-5;
            let mut gp = vec![0.0; 6];
            let mut gm = vec![0.0; 6];
            for c in 0..6 {
                let mut xp = x.clone();
                let mut xm = x.clone();
                xp[c] += h;
                xm[c] -= h;
                p.gradient(&xp, &mut gp);
                p.gradient(&xm, &mut gm);
                for r in 0..6 {
                    let fd = (gp[r] - gm[r]) / (2.0 * h);
                    assert!(
                        (hess[(r, c)] - fd).abs() < 2e-3 * (1.0 + fd.abs()),
                        "limit={with_limit} H({r},{c}) = {} vs {fd}",
                        hess[(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    fn hessian_is_symmetric() {
        let p = sample_problem(true);
        let mut h = SmallMatrix::zeros(6);
        p.hessian(&sample_x(), &mut h);
        for r in 0..6 {
            for c in 0..6 {
                assert!((h[(r, c)] - h[(c, r)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bounds_reflect_limit_presence() {
        let with = sample_problem(true);
        let without = sample_problem(false);
        assert!(with.has_limit());
        assert!(!without.has_limit());
        // With a limit the slack range is [-(0.99*rate)^2, 0].
        assert!(with.lower(4) < 0.0);
        assert_eq!(with.upper(4), 0.0);
        // Without a limit the slacks are pinned to zero.
        assert_eq!(without.lower(4), 0.0);
        assert_eq!(without.upper(4), 0.0);
        // Voltage bounds pass through.
        assert_eq!(with.lower(0), 0.9);
        assert_eq!(with.upper(1), 1.1);
    }

    #[test]
    fn tron_solves_branch_problem_to_first_order() {
        use gridsim_tron::{TronOptions, TronSolver};
        let p = sample_problem(true);
        let solver = TronSolver::new(TronOptions {
            gtol: 1e-8,
            max_iter: 200,
            ..Default::default()
        });
        let res = solver.solve(&p, &[1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        assert!(
            res.pg_norm < 1e-6,
            "projected gradient norm {}",
            res.pg_norm
        );
        // The result respects every bound.
        for i in 0..6 {
            assert!(res.x[i] >= p.lower(i) - 1e-10);
            assert!(res.x[i] <= p.upper(i) + 1e-10);
        }
    }

    #[test]
    fn consensus_pull_moves_solution_toward_targets() {
        // With huge voltage penalties and no flow/limit terms the optimal
        // vi², θ must match their targets.
        let y = Branch::line(1, 2, 0.01, 0.1, 0.0, 0.0).admittance();
        let mut p = BranchProblem::new(&y, 0.9, 1.1, 0.9, 1.1);
        p.volt_terms = [
            ConsensusTerm {
                target: 1.0404, // 1.02^2
                y: 0.0,
                rho: 1e6,
            },
            ConsensusTerm {
                target: 0.03,
                y: 0.0,
                rho: 1e6,
            },
            ConsensusTerm {
                target: 0.9604, // 0.98^2
                y: 0.0,
                rho: 1e6,
            },
            ConsensusTerm {
                target: -0.01,
                y: 0.0,
                rho: 1e6,
            },
        ];
        use gridsim_tron::{TronOptions, TronSolver};
        let solver = TronSolver::new(TronOptions {
            gtol: 1e-10,
            max_iter: 300,
            ..Default::default()
        });
        let res = solver.solve(&p, &[1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((res.x[0] - 1.02).abs() < 1e-3, "vi = {}", res.x[0]);
        assert!((res.x[1] - 0.98).abs() < 1e-3, "vj = {}", res.x[1]);
        assert!((res.x[2] - 0.03).abs() < 1e-3, "ti = {}", res.x[2]);
        assert!((res.x[3] + 0.01).abs() < 1e-3, "tj = {}", res.x[3]);
    }
}
