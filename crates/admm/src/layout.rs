//! Consensus-constraint layout of the component-based decomposition.
//!
//! Every coupling (consensus) constraint of Section II-C has the form
//! `u_k − v_k + z_k = 0`, where `u_k` is produced by a generator or branch
//! subproblem (the *x* block of the two-level formulation) and `v_k` by a bus
//! subproblem (the *x̄* block). This module assigns a dense index `k` to every
//! constraint, records which component produces each side, and groups the
//! constraints owned by every bus so the bus QP (7) can be assembled.
//!
//! Ordering: the two generator constraints of generator `g` occupy
//! `2g, 2g+1`; the eight constraints of branch `l` occupy
//! `2·ngen + 8l .. 2·ngen + 8l + 8` in the order
//! `[p_ij, q_ij, p_ji, q_ji, w_i, θ_i, w_j, θ_j]`.

use crate::params::AdmmParams;
use gridsim_grid::network::Network;

/// What a consensus constraint couples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintKind {
    /// Generator real power vs its bus copy.
    GenP,
    /// Generator reactive power vs its bus copy.
    GenQ,
    /// Branch from-side real power flow vs its bus copy.
    FlowPij,
    /// Branch from-side reactive power flow vs its bus copy.
    FlowQij,
    /// Branch to-side real power flow vs its bus copy.
    FlowPji,
    /// Branch to-side reactive power flow vs its bus copy.
    FlowQji,
    /// Branch from-side squared voltage magnitude vs the bus variable `w_i`.
    Wi,
    /// Branch from-side angle copy vs the bus variable `θ_i`.
    ThetaI,
    /// Branch to-side squared voltage magnitude vs `w_j`.
    Wj,
    /// Branch to-side angle copy vs `θ_j`.
    ThetaJ,
}

impl ConstraintKind {
    /// True when the constraint couples powers (penalty ρ_pq), false when it
    /// couples voltage quantities (penalty ρ_va).
    pub fn is_power(&self) -> bool {
        matches!(
            self,
            ConstraintKind::GenP
                | ConstraintKind::GenQ
                | ConstraintKind::FlowPij
                | ConstraintKind::FlowQij
                | ConstraintKind::FlowPji
                | ConstraintKind::FlowQji
        )
    }
}

/// Where the bus side of a constraint comes from inside the bus state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusSlot {
    /// One of the bus's duplicated copies (index into its copy array).
    Copy(usize),
    /// The bus variable `w` (squared voltage magnitude).
    W,
    /// The bus variable `θ`.
    Theta,
}

/// Per-constraint metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstraintInfo {
    /// What this constraint couples.
    pub kind: ConstraintKind,
    /// The bus that owns the x̄ side.
    pub bus: usize,
    /// Where in the bus state the x̄ side lives.
    pub slot: BusSlot,
    /// ADMM penalty ρ of this constraint.
    pub rho: f64,
}

/// Everything the bus-update kernel needs to know about one bus.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BusPlan {
    /// Constraint indices of the real-power copies (generators first, then
    /// branch ends, in copy order).
    pub p_copies: Vec<usize>,
    /// Constraint indices of the reactive-power copies (same order).
    pub q_copies: Vec<usize>,
    /// Constraint indices of the `w` consensus constraints at this bus.
    pub w_constraints: Vec<usize>,
    /// Constraint indices of the `θ` consensus constraints at this bus.
    pub theta_constraints: Vec<usize>,
    /// Total number of copies stored by this bus (`2 * (gens + branch ends)`).
    pub num_copies: usize,
}

/// The complete constraint layout of a network.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Per-constraint metadata, length [`Layout::num_constraints`].
    pub constraints: Vec<ConstraintInfo>,
    /// Per-bus assembly plan.
    pub bus_plans: Vec<BusPlan>,
    /// Number of generators.
    pub ngen: usize,
    /// Number of branches.
    pub nbranch: usize,
}

impl Layout {
    /// Index of generator `g`'s real-power constraint.
    #[inline]
    pub fn gen_p(&self, g: usize) -> usize {
        2 * g
    }

    /// Index of generator `g`'s reactive-power constraint.
    #[inline]
    pub fn gen_q(&self, g: usize) -> usize {
        2 * g + 1
    }

    /// Base index of branch `l`'s eight constraints.
    #[inline]
    pub fn branch_base(&self, l: usize) -> usize {
        2 * self.ngen + 8 * l
    }

    /// Total number of consensus constraints.
    pub fn num_constraints(&self) -> usize {
        2 * self.ngen + 8 * self.nbranch
    }

    /// Build the layout for a network with the given penalties.
    pub fn build(net: &Network, params: &AdmmParams) -> Layout {
        let ngen = net.ngen;
        let nbranch = net.nbranch;
        let m = 2 * ngen + 8 * nbranch;
        let mut constraints = Vec::with_capacity(m);
        let mut bus_plans = vec![BusPlan::default(); net.nbus];
        // Track the next copy slot of each bus.
        let mut next_copy = vec![0usize; net.nbus];

        // Generators.
        for g in 0..ngen {
            let bus = net.gen_bus[g];
            let slot_p = next_copy[bus];
            let slot_q = slot_p + 1;
            next_copy[bus] += 2;
            constraints.push(ConstraintInfo {
                kind: ConstraintKind::GenP,
                bus,
                slot: BusSlot::Copy(slot_p),
                rho: params.rho_pq,
            });
            constraints.push(ConstraintInfo {
                kind: ConstraintKind::GenQ,
                bus,
                slot: BusSlot::Copy(slot_q),
                rho: params.rho_pq,
            });
            bus_plans[bus].p_copies.push(2 * g);
            bus_plans[bus].q_copies.push(2 * g + 1);
        }
        // Branches.
        for l in 0..nbranch {
            let f = net.br_from[l];
            let t = net.br_to[l];
            let base = 2 * ngen + 8 * l;
            // From-side flow copies live on bus f.
            let slot_pf = next_copy[f];
            let slot_qf = slot_pf + 1;
            next_copy[f] += 2;
            // To-side flow copies live on bus t.
            let slot_pt = next_copy[t];
            let slot_qt = slot_pt + 1;
            next_copy[t] += 2;
            let entries = [
                (
                    ConstraintKind::FlowPij,
                    f,
                    BusSlot::Copy(slot_pf),
                    params.rho_pq,
                ),
                (
                    ConstraintKind::FlowQij,
                    f,
                    BusSlot::Copy(slot_qf),
                    params.rho_pq,
                ),
                (
                    ConstraintKind::FlowPji,
                    t,
                    BusSlot::Copy(slot_pt),
                    params.rho_pq,
                ),
                (
                    ConstraintKind::FlowQji,
                    t,
                    BusSlot::Copy(slot_qt),
                    params.rho_pq,
                ),
                (ConstraintKind::Wi, f, BusSlot::W, params.rho_va),
                (ConstraintKind::ThetaI, f, BusSlot::Theta, params.rho_va),
                (ConstraintKind::Wj, t, BusSlot::W, params.rho_va),
                (ConstraintKind::ThetaJ, t, BusSlot::Theta, params.rho_va),
            ];
            for (kind, bus, slot, rho) in entries {
                constraints.push(ConstraintInfo {
                    kind,
                    bus,
                    slot,
                    rho,
                });
            }
            bus_plans[f].p_copies.push(base);
            bus_plans[f].q_copies.push(base + 1);
            bus_plans[t].p_copies.push(base + 2);
            bus_plans[t].q_copies.push(base + 3);
            bus_plans[f].w_constraints.push(base + 4);
            bus_plans[f].theta_constraints.push(base + 5);
            bus_plans[t].w_constraints.push(base + 6);
            bus_plans[t].theta_constraints.push(base + 7);
        }
        for (b, plan) in bus_plans.iter_mut().enumerate() {
            plan.num_copies = next_copy[b];
        }
        Layout {
            constraints,
            bus_plans,
            ngen,
            nbranch,
        }
    }

    /// The per-constraint penalty vector ρ.
    pub fn rho_vector(&self) -> Vec<f64> {
        self.constraints.iter().map(|c| c.rho).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_grid::cases;
    use gridsim_grid::network::BranchEnd;

    fn layout9() -> (gridsim_grid::Network, Layout) {
        let net = cases::case9().compile().unwrap();
        let layout = Layout::build(&net, &AdmmParams::default());
        (net, layout)
    }

    #[test]
    fn constraint_count_matches_formula() {
        let (net, layout) = layout9();
        assert_eq!(layout.num_constraints(), 2 * net.ngen + 8 * net.nbranch);
        assert_eq!(layout.constraints.len(), layout.num_constraints());
    }

    #[test]
    fn generator_constraints_point_at_their_bus() {
        let (net, layout) = layout9();
        for g in 0..net.ngen {
            let kp = layout.gen_p(g);
            let kq = layout.gen_q(g);
            assert_eq!(layout.constraints[kp].kind, ConstraintKind::GenP);
            assert_eq!(layout.constraints[kq].kind, ConstraintKind::GenQ);
            assert_eq!(layout.constraints[kp].bus, net.gen_bus[g]);
            assert_eq!(layout.constraints[kp].rho, 10.0);
        }
    }

    #[test]
    fn branch_constraints_follow_documented_order() {
        let (net, layout) = layout9();
        let l = 3;
        let base = layout.branch_base(l);
        let kinds: Vec<ConstraintKind> =
            (0..8).map(|k| layout.constraints[base + k].kind).collect();
        assert_eq!(
            kinds,
            vec![
                ConstraintKind::FlowPij,
                ConstraintKind::FlowQij,
                ConstraintKind::FlowPji,
                ConstraintKind::FlowQji,
                ConstraintKind::Wi,
                ConstraintKind::ThetaI,
                ConstraintKind::Wj,
                ConstraintKind::ThetaJ
            ]
        );
        // From-side constraints sit on the from bus, to-side on the to bus.
        assert_eq!(layout.constraints[base].bus, net.br_from[l]);
        assert_eq!(layout.constraints[base + 2].bus, net.br_to[l]);
        assert_eq!(layout.constraints[base + 4].bus, net.br_from[l]);
        assert_eq!(layout.constraints[base + 6].bus, net.br_to[l]);
        // Voltage constraints use the voltage penalty.
        assert_eq!(layout.constraints[base + 4].rho, 1000.0);
        assert!(layout.constraints[base].kind.is_power());
        assert!(!layout.constraints[base + 5].kind.is_power());
    }

    #[test]
    fn bus_plans_cover_every_copy_exactly_once() {
        let (net, layout) = layout9();
        for (b, plan) in layout.bus_plans.iter().enumerate() {
            let ends = net.branches_at_bus[b].len();
            let gens = net.gens_at_bus[b].len();
            assert_eq!(plan.p_copies.len(), gens + ends);
            assert_eq!(plan.q_copies.len(), gens + ends);
            assert_eq!(plan.w_constraints.len(), ends);
            assert_eq!(plan.theta_constraints.len(), ends);
            assert_eq!(plan.num_copies, 2 * (gens + ends));
        }
        // Every copy slot of every bus is referenced by exactly one
        // constraint.
        let mut seen = vec![std::collections::HashSet::new(); net.nbus];
        for info in &layout.constraints {
            if let BusSlot::Copy(s) = info.slot {
                assert!(seen[info.bus].insert(s), "duplicate slot {s}");
            }
        }
        for (b, set) in seen.iter().enumerate() {
            assert_eq!(set.len(), layout.bus_plans[b].num_copies);
        }
    }

    #[test]
    fn rho_vector_has_expected_split() {
        let (net, layout) = layout9();
        let rho = layout.rho_vector();
        let n_pq = rho.iter().filter(|&&r| r == 10.0).count();
        let n_va = rho.iter().filter(|&&r| r == 1000.0).count();
        assert_eq!(n_pq, 2 * net.ngen + 4 * net.nbranch);
        assert_eq!(n_va, 4 * net.nbranch);
    }

    #[test]
    fn end_kind_consistency_with_network_adjacency() {
        // Constraints attributed to a bus through BranchEnd must match the
        // network adjacency lists.
        let (net, layout) = layout9();
        for b in 0..net.nbus {
            let from_ends = net.branches_at_bus[b]
                .iter()
                .filter(|(_, e)| *e == BranchEnd::From)
                .count();
            let wi_here = layout.bus_plans[b]
                .w_constraints
                .iter()
                .filter(|&&k| layout.constraints[k].kind == ConstraintKind::Wi)
                .count();
            assert_eq!(from_ends, wi_here);
        }
    }
}
