//! The two-level ADMM driver (Algorithm 1 of the paper).
//!
//! All per-iteration work is expressed as kernels on the simulated batch
//! device: generator, bus, z and multiplier updates map one thread per
//! element; branch subproblems map one thread block per branch and are solved
//! by the batch TRON solver. Residual norms are device-side reductions, so no
//! host–device transfer happens inside the solve.

use crate::branch_problem::{BranchProblem, ConsensusTerm};
use crate::layout::{BusSlot, ConstraintKind, Layout};
use crate::params::AdmmParams;
use gridsim_acopf::flows::branch_flows;
use gridsim_acopf::solution::OpfSolution;
use gridsim_acopf::violations::SolutionQuality;
use gridsim_batch::{Device, DeviceBuffer};
use gridsim_grid::branch::BranchAdmittance;
use gridsim_grid::network::Network;
use gridsim_sparse::dense::solve2;
use gridsim_tron::TronSolver;
use std::time::{Duration, Instant};

/// Termination status of an ADMM solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmmStatus {
    /// The outer loop drove `‖z‖∞` below the tolerance.
    Converged,
    /// The maximum number of outer iterations was reached.
    MaxOuterIterations,
}

/// Host-side snapshot of the full ADMM state, used for warm starting the next
/// period of the tracking experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmState {
    gen_pg: Vec<f64>,
    gen_qg: Vec<f64>,
    branch_x: Vec<[f64; 6]>,
    branch_alm_lambda: Vec<[f64; 2]>,
    branch_alm_rho: Vec<f64>,
    bus_w: Vec<f64>,
    bus_theta: Vec<f64>,
    bus_copies: Vec<Vec<f64>>,
    y: Vec<f64>,
    lam: Vec<f64>,
    z: Vec<f64>,
}

/// Result of an ADMM solve.
#[derive(Debug, Clone)]
pub struct AdmmResult {
    /// The extracted operating point (dispatch from generator subproblems,
    /// voltages from bus subproblems).
    pub solution: OpfSolution,
    /// Objective value ($/hr) of the extracted solution.
    pub objective: f64,
    /// Solution-quality metrics of the extracted solution.
    pub quality: SolutionQuality,
    /// Termination status.
    pub status: AdmmStatus,
    /// Cumulative number of inner ADMM iterations (the paper's Table II
    /// "Iterations" column).
    pub inner_iterations: usize,
    /// Number of outer (augmented-Lagrangian) iterations.
    pub outer_iterations: usize,
    /// Final `‖z‖∞`.
    pub z_inf: f64,
    /// Final primal residual `‖u − v + z‖∞`.
    pub primal_residual: f64,
    /// Wall-clock solve time.
    pub solve_time: Duration,
    /// State snapshot for warm-starting the next solve.
    pub warm_state: WarmState,
}

// ---------------------------------------------------------------------------
// read-only per-component data
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct GenData {
    pmin: f64,
    pmax: f64,
    qmin: f64,
    qmax: f64,
    c2: f64,
    c1: f64,
    k_p: usize,
    k_q: usize,
}

#[derive(Debug, Clone)]
struct BranchData {
    y: BranchAdmittance,
    limit_sq: f64,
    k_base: usize,
    vmin_i: f64,
    vmax_i: f64,
    vmin_j: f64,
    vmax_j: f64,
}

#[derive(Debug, Clone)]
struct BusData {
    pd: f64,
    qd: f64,
    gs: f64,
    bs: f64,
    /// Constraint indices of real-power copies with their balance
    /// coefficient (+1 for generator copies, −1 for flow copies).
    p_terms: Vec<(usize, f64)>,
    /// Same for reactive-power copies.
    q_terms: Vec<(usize, f64)>,
    w_constraints: Vec<usize>,
    theta_constraints: Vec<usize>,
}

struct ProblemData {
    gens: Vec<GenData>,
    branches: Vec<BranchData>,
    buses: Vec<BusData>,
}

impl ProblemData {
    fn build(
        net: &Network,
        layout: &Layout,
        params: &AdmmParams,
        pg_bounds: Option<&(Vec<f64>, Vec<f64>)>,
    ) -> ProblemData {
        // Internal objective scaling (see `AdmmParams::obj_scale`): keep the
        // largest marginal cost comparable to rho_pq so the generator
        // consensus converges at the same rate as the rest of the algorithm.
        let obj_scale = params.obj_scale.unwrap_or_else(|| {
            let grad_max = (0..net.ngen)
                .map(|g| 2.0 * net.cost_c2[g] * net.pmax[g] + net.cost_c1[g].abs())
                .fold(1.0f64, f64::max);
            (10.0 * params.rho_pq / grad_max).min(1.0)
        });
        let gens = (0..net.ngen)
            .map(|g| {
                let (pmin, pmax) = match pg_bounds {
                    Some((lo, hi)) => (lo[g], hi[g]),
                    None => (net.pmin[g], net.pmax[g]),
                };
                GenData {
                    pmin,
                    pmax,
                    qmin: net.qmin[g],
                    qmax: net.qmax[g],
                    c2: obj_scale * net.cost_c2[g],
                    c1: obj_scale * net.cost_c1[g],
                    k_p: layout.gen_p(g),
                    k_q: layout.gen_q(g),
                }
            })
            .collect();
        let branches = (0..net.nbranch)
            .map(|l| {
                let f = net.br_from[l];
                let t = net.br_to[l];
                BranchData {
                    y: net.br_y[l],
                    limit_sq: net.rate_limit_sq(l, params.line_limit_margin),
                    k_base: layout.branch_base(l),
                    vmin_i: net.vmin[f],
                    vmax_i: net.vmax[f],
                    vmin_j: net.vmin[t],
                    vmax_j: net.vmax[t],
                }
            })
            .collect();
        let buses = (0..net.nbus)
            .map(|b| {
                let plan = &layout.bus_plans[b];
                let sign = |k: usize| -> f64 {
                    match layout.constraints[k].kind {
                        ConstraintKind::GenP | ConstraintKind::GenQ => 1.0,
                        _ => -1.0,
                    }
                };
                BusData {
                    pd: net.pd[b],
                    qd: net.qd[b],
                    gs: net.gs[b],
                    bs: net.bs[b],
                    p_terms: plan.p_copies.iter().map(|&k| (k, sign(k))).collect(),
                    q_terms: plan.q_copies.iter().map(|&k| (k, sign(k))).collect(),
                    w_constraints: plan.w_constraints.clone(),
                    theta_constraints: plan.theta_constraints.clone(),
                }
            })
            .collect();
        ProblemData {
            gens,
            branches,
            buses,
        }
    }
}

// ---------------------------------------------------------------------------
// mutable per-component device state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct GenState {
    pg: f64,
    qg: f64,
}

#[derive(Debug, Clone)]
struct BranchState {
    x: [f64; 6],
    flows: [f64; 4],
    alm_lambda: [f64; 2],
    alm_rho: f64,
}

impl Default for BranchState {
    fn default() -> Self {
        BranchState {
            x: [1.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            flows: [0.0; 4],
            alm_lambda: [0.0; 2],
            alm_rho: 0.0,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct BusState {
    w: f64,
    theta: f64,
    copies: Vec<f64>,
}

struct DeviceState {
    gens: DeviceBuffer<GenState>,
    branches: DeviceBuffer<BranchState>,
    buses: DeviceBuffer<BusState>,
    u: DeviceBuffer<f64>,
    v: DeviceBuffer<f64>,
    z: DeviceBuffer<f64>,
    z_prev: DeviceBuffer<f64>,
    y: DeviceBuffer<f64>,
    lam: DeviceBuffer<f64>,
    rho: DeviceBuffer<f64>,
}

/// The component-based two-level ADMM solver.
#[derive(Debug, Clone)]
pub struct AdmmSolver {
    /// Algorithm parameters.
    pub params: AdmmParams,
    /// Batch device executing the kernels.
    pub device: Device,
}

impl AdmmSolver {
    /// Create a solver with the given parameters on a parallel device.
    pub fn new(params: AdmmParams) -> Self {
        AdmmSolver {
            params,
            device: Device::parallel(),
        }
    }

    /// Create a solver on a specific device (e.g. sequential for
    /// deterministic tests).
    pub fn with_device(params: AdmmParams, device: Device) -> Self {
        AdmmSolver { params, device }
    }

    /// Solve from a cold start (Section IV-B).
    pub fn solve(&self, net: &Network) -> AdmmResult {
        self.solve_inner(net, None, None)
    }

    /// Solve warm-started from a previous period's state, optionally with
    /// ramp-limited generator bounds (Section IV-C).
    pub fn solve_warm(
        &self,
        net: &Network,
        warm: &WarmState,
        pg_bounds: Option<(Vec<f64>, Vec<f64>)>,
    ) -> AdmmResult {
        self.solve_inner(net, Some(warm), pg_bounds)
    }

    fn solve_inner(
        &self,
        net: &Network,
        warm: Option<&WarmState>,
        pg_bounds: Option<(Vec<f64>, Vec<f64>)>,
    ) -> AdmmResult {
        let start_time = Instant::now();
        let params = &self.params;
        let layout = Layout::build(net, params);
        let data = ProblemData::build(net, &layout, params, pg_bounds.as_ref());
        let mut st = self.init_state(net, &layout, &data, warm);
        let tron = TronSolver::new(params.tron.clone());

        let mut beta = params.beta_init;
        let mut total_inner = 0usize;
        let mut outer_done = 0usize;
        let mut z_inf_prev = f64::INFINITY;
        let mut z_inf = f64::INFINITY;
        let mut primres = f64::INFINITY;
        let mut status = AdmmStatus::MaxOuterIterations;

        for outer in 0..params.max_outer {
            outer_done = outer + 1;
            for _inner in 0..params.max_inner {
                total_inner += 1;
                // x block: generators and branches (lines 3 of Algorithm 1).
                self.generator_update(&mut st, &data);
                self.branch_update(&mut st, &data, &tron, params);
                self.scatter_u(&mut st, &data);
                // x̄ block: buses (line 4).
                self.bus_update(&mut st, &data, &layout);
                self.scatter_v(&mut st, &layout);
                // z and multiplier updates (lines 5-6).
                st.z_prev.as_mut_slice().copy_from_slice(st.z.as_slice());
                self.z_update(&mut st, beta);
                self.y_update(&mut st);
                // Residuals.
                primres = self.device.reduce_max("primal_residual", &st.z, {
                    let u = st.u.as_slice();
                    let v = st.v.as_slice();
                    move |k, zk| (u[k] - v[k] + zk).abs()
                });
                let dualres = self.device.reduce_max("dual_residual", &st.z, {
                    let zp = st.z_prev.as_slice();
                    let rho = st.rho.as_slice();
                    move |k, zk| (rho[k] * (zk - zp[k])).abs()
                });
                if primres <= params.eps_inner && dualres <= params.eps_inner {
                    break;
                }
            }
            // Outer-level update (line 8) and termination (line 9).
            z_inf = self.device.reduce_max("z_norm", &st.z, |_, zk| zk.abs());
            if z_inf <= params.eps_outer {
                status = AdmmStatus::Converged;
                break;
            }
            self.lambda_update(&mut st, beta, params.lambda_bound);
            if z_inf > params.z_decrease_factor * z_inf_prev {
                beta *= params.beta_factor;
            }
            z_inf_prev = z_inf;
        }

        let (solution, warm_state) = self.extract(net, &st);
        let quality = SolutionQuality::evaluate(net, &solution);
        AdmmResult {
            objective: solution.objective(net),
            quality,
            solution,
            status,
            inner_iterations: total_inner,
            outer_iterations: outer_done,
            z_inf,
            primal_residual: primres,
            solve_time: start_time.elapsed(),
            warm_state,
        }
    }

    // -- state initialization ------------------------------------------------

    fn init_state(
        &self,
        net: &Network,
        layout: &Layout,
        data: &ProblemData,
        warm: Option<&WarmState>,
    ) -> DeviceState {
        let stats = self.device.stats().clone();
        let m = layout.num_constraints();

        let (gen_host, branch_host, bus_host, y_host, lam_host, z_host) = match warm {
            Some(w) => {
                let gens: Vec<GenState> = w
                    .gen_pg
                    .iter()
                    .zip(&w.gen_qg)
                    .map(|(&pg, &qg)| GenState { pg, qg })
                    .collect();
                let branches: Vec<BranchState> = (0..net.nbranch)
                    .map(|l| BranchState {
                        x: w.branch_x[l],
                        flows: {
                            let x = w.branch_x[l];
                            branch_flows(&net.br_y[l], x[0], x[1], x[2], x[3])
                        },
                        alm_lambda: w.branch_alm_lambda[l],
                        alm_rho: w.branch_alm_rho[l],
                    })
                    .collect();
                let buses: Vec<BusState> = (0..net.nbus)
                    .map(|b| BusState {
                        w: w.bus_w[b],
                        theta: w.bus_theta[b],
                        copies: w.bus_copies[b].clone(),
                    })
                    .collect();
                (
                    gens,
                    branches,
                    buses,
                    w.y.clone(),
                    w.lam.clone(),
                    w.z.clone(),
                )
            }
            None => {
                // Cold start: midpoints of bounds, zero angles, flows from
                // the initial voltages (Section IV-B).
                let gens: Vec<GenState> = data
                    .gens
                    .iter()
                    .map(|g| GenState {
                        pg: 0.5 * (g.pmin + g.pmax),
                        qg: 0.5 * (g.qmin + g.qmax),
                    })
                    .collect();
                let branches: Vec<BranchState> = data
                    .branches
                    .iter()
                    .map(|bd| {
                        let vi = 0.5 * (bd.vmin_i + bd.vmax_i);
                        let vj = 0.5 * (bd.vmin_j + bd.vmax_j);
                        let flows = branch_flows(&bd.y, vi, vj, 0.0, 0.0);
                        let mut x = [vi, vj, 0.0, 0.0, 0.0, 0.0];
                        if bd.limit_sq.is_finite() {
                            x[4] = (-(flows[0] * flows[0] + flows[1] * flows[1]))
                                .clamp(-bd.limit_sq, 0.0);
                            x[5] = (-(flows[2] * flows[2] + flows[3] * flows[3]))
                                .clamp(-bd.limit_sq, 0.0);
                        }
                        BranchState {
                            x,
                            flows,
                            alm_lambda: [0.0; 2],
                            alm_rho: 0.0,
                        }
                    })
                    .collect();
                let buses: Vec<BusState> = (0..net.nbus)
                    .map(|b| {
                        let vm = 0.5 * (net.vmin[b] + net.vmax[b]);
                        BusState {
                            w: vm * vm,
                            theta: 0.0,
                            copies: vec![0.0; layout.bus_plans[b].num_copies],
                        }
                    })
                    .collect();
                (
                    gens,
                    branches,
                    buses,
                    vec![0.0; m],
                    vec![0.0; m],
                    vec![0.0; m],
                )
            }
        };

        let mut st = DeviceState {
            gens: DeviceBuffer::from_host(stats.clone(), &gen_host),
            branches: DeviceBuffer::from_host(stats.clone(), &branch_host),
            buses: DeviceBuffer::from_host(stats.clone(), &bus_host),
            u: DeviceBuffer::zeroed(stats.clone(), m),
            v: DeviceBuffer::zeroed(stats.clone(), m),
            z: DeviceBuffer::from_host(stats.clone(), &z_host),
            z_prev: DeviceBuffer::zeroed(stats.clone(), m),
            y: DeviceBuffer::from_host(stats.clone(), &y_host),
            lam: DeviceBuffer::from_host(stats.clone(), &lam_host),
            rho: DeviceBuffer::from_host(stats, &layout.rho_vector()),
        };
        // Populate u from the component states and, for a cold start, seed
        // the bus copies with the consistent component values so the first
        // iteration starts from agreement.
        self.scatter_u(&mut st, data);
        if warm.is_none() {
            let u = st.u.as_slice().to_vec();
            let constraints = &layout.constraints;
            self.device
                .launch_map("bus_copy_seed", &mut st.buses, |b, bus| {
                    for (k, info) in constraints.iter().enumerate() {
                        if info.bus == b {
                            if let BusSlot::Copy(s) = info.slot {
                                bus.copies[s] = u[k];
                            }
                        }
                    }
                });
        }
        self.scatter_v(&mut st, layout);
        st
    }

    // -- kernels ---------------------------------------------------------------

    fn generator_update(&self, st: &mut DeviceState, data: &ProblemData) {
        let gens_data = &data.gens;
        let v = st.v.as_slice();
        let z = st.z.as_slice();
        let y = st.y.as_slice();
        let rho = st.rho.as_slice();
        self.device
            .launch_map("generator_update", &mut st.gens, move |g, state| {
                let d = &gens_data[g];
                // Closed form (6) for the box-constrained quadratic.
                let (kp, kq) = (d.k_p, d.k_q);
                let tp = v[kp] - z[kp];
                let pg = (rho[kp] * tp - y[kp] - d.c1) / (2.0 * d.c2 + rho[kp]);
                state.pg = pg.clamp(d.pmin, d.pmax);
                let tq = v[kq] - z[kq];
                let qg = tq - y[kq] / rho[kq];
                state.qg = qg.clamp(d.qmin, d.qmax);
            });
    }

    fn branch_update(
        &self,
        st: &mut DeviceState,
        data: &ProblemData,
        tron: &TronSolver,
        params: &AdmmParams,
    ) {
        let branches_data = &data.branches;
        let v = st.v.as_slice();
        let z = st.z.as_slice();
        let y = st.y.as_slice();
        let rho = st.rho.as_slice();
        let max_alm = params.max_alm_iter;
        let alm_tol = params.alm_tol;
        let alm_rho_init = params.alm_rho_init;
        let alm_rho_max = params.alm_rho_max;
        self.device
            .launch_blocks("branch_tron", &mut st.branches, move |l, state| {
                let d = &branches_data[l];
                let mut problem = BranchProblem::new(&d.y, d.vmin_i, d.vmax_i, d.vmin_j, d.vmax_j);
                problem.limit_sq = d.limit_sq;
                let term = |k: usize| ConsensusTerm {
                    target: v[k] - z[k],
                    y: y[k],
                    rho: rho[k],
                };
                for j in 0..4 {
                    problem.flow_terms[j] = term(d.k_base + j);
                    problem.volt_terms[j] = term(d.k_base + 4 + j);
                }
                problem.alm_lambda = state.alm_lambda;
                problem.alm_rho = if state.alm_rho > 0.0 {
                    state.alm_rho
                } else {
                    alm_rho_init
                };
                // Inner augmented-Lagrangian loop on the line-limit slack
                // equalities; a single TRON solve when there is no limit.
                let mut prev_viol = f64::INFINITY;
                let rounds = if problem.has_limit() { max_alm } else { 1 };
                for _ in 0..rounds {
                    let result = tron.solve(&problem, &state.x);
                    state.x = [
                        result.x[0],
                        result.x[1],
                        result.x[2],
                        result.x[3],
                        result.x[4],
                        result.x[5],
                    ];
                    if !problem.has_limit() {
                        break;
                    }
                    let res = problem.slack_residuals(&state.x);
                    let viol = res[0].abs().max(res[1].abs());
                    if viol < alm_tol {
                        break;
                    }
                    problem.alm_lambda[0] += problem.alm_rho * res[0];
                    problem.alm_lambda[1] += problem.alm_rho * res[1];
                    if viol > 0.25 * prev_viol {
                        problem.alm_rho = (problem.alm_rho * 10.0).min(alm_rho_max);
                    }
                    prev_viol = viol;
                }
                state.alm_lambda = problem.alm_lambda;
                state.alm_rho = problem.alm_rho;
                state.flows = problem.flow_values(&state.x);
            });
    }

    fn scatter_u(&self, st: &mut DeviceState, data: &ProblemData) {
        let ngen = data.gens.len();
        let gens = st.gens.as_slice();
        let branches = st.branches.as_slice();
        self.device
            .launch_map("u_scatter", &mut st.u, move |k, uk| {
                *uk = if k < 2 * ngen {
                    let g = &gens[k / 2];
                    if k % 2 == 0 {
                        g.pg
                    } else {
                        g.qg
                    }
                } else {
                    let l = (k - 2 * ngen) / 8;
                    let offset = (k - 2 * ngen) % 8;
                    let b = &branches[l];
                    match offset {
                        0..=3 => b.flows[offset],
                        4 => b.x[0] * b.x[0],
                        5 => b.x[2],
                        6 => b.x[1] * b.x[1],
                        _ => b.x[3],
                    }
                };
            });
    }

    fn bus_update(&self, st: &mut DeviceState, data: &ProblemData, layout: &Layout) {
        let buses_data = &data.buses;
        let constraints = &layout.constraints;
        let u = st.u.as_slice();
        let z = st.z.as_slice();
        let y = st.y.as_slice();
        let rho = st.rho.as_slice();
        self.device
            .launch_map("bus_update", &mut st.buses, move |b, state| {
                let d = &buses_data[b];
                // Linear/quadratic coefficients of each variable in the
                // separable objective:  0.5 * q * x² − c * x.
                let coef = |k: usize| -> (f64, f64) { (rho[k], rho[k] * (u[k] + z[k]) + y[k]) };

                // θ update: unconstrained, separable.
                let mut num = 0.0;
                let mut den = 0.0;
                for &k in &d.theta_constraints {
                    let (q, c) = coef(k);
                    num += c;
                    den += q;
                }
                if den > 0.0 {
                    state.theta = num / den;
                }

                // Equality-constrained diagonal QP (7) over w and the copies.
                let mut qw = 0.0;
                let mut cw = 0.0;
                for &k in &d.w_constraints {
                    let (q, c) = coef(k);
                    qw += q;
                    cw += c;
                }
                // A has two rows (P and Q balance). Coefficients on w:
                let aw = [-d.gs, d.bs];
                // Accumulate A Q^{-1} A^T and A Q^{-1} c.
                let mut aqat = [[0.0f64; 2]; 2];
                let mut aqc = [0.0f64; 2];
                if qw > 0.0 {
                    aqat[0][0] += aw[0] * aw[0] / qw;
                    aqat[0][1] += aw[0] * aw[1] / qw;
                    aqat[1][0] += aw[1] * aw[0] / qw;
                    aqat[1][1] += aw[1] * aw[1] / qw;
                    aqc[0] += aw[0] * cw / qw;
                    aqc[1] += aw[1] * cw / qw;
                }
                for &(k, sign) in &d.p_terms {
                    let (q, c) = coef(k);
                    aqat[0][0] += sign * sign / q;
                    aqc[0] += sign * c / q;
                }
                for &(k, sign) in &d.q_terms {
                    let (q, c) = coef(k);
                    aqat[1][1] += sign * sign / q;
                    aqc[1] += sign * c / q;
                }
                let rhs = [aqc[0] - d.pd, aqc[1] - d.qd];
                let mu = solve2(aqat, rhs).unwrap_or([0.0, 0.0]);
                // Recover the primal variables: x = Q^{-1}(c − A^T μ).
                if qw > 0.0 {
                    state.w = (cw - aw[0] * mu[0] - aw[1] * mu[1]) / qw;
                }
                for &(k, sign) in &d.p_terms {
                    let (q, c) = coef(k);
                    let value = (c - sign * mu[0]) / q;
                    if let BusSlot::Copy(s) = constraints[k].slot {
                        state.copies[s] = value;
                    }
                }
                for &(k, sign) in &d.q_terms {
                    let (q, c) = coef(k);
                    let value = (c - sign * mu[1]) / q;
                    if let BusSlot::Copy(s) = constraints[k].slot {
                        state.copies[s] = value;
                    }
                }
            });
    }

    fn scatter_v(&self, st: &mut DeviceState, layout: &Layout) {
        let constraints = &layout.constraints;
        let buses = st.buses.as_slice();
        self.device
            .launch_map("v_scatter", &mut st.v, move |k, vk| {
                let info = &constraints[k];
                let bus = &buses[info.bus];
                *vk = match info.slot {
                    BusSlot::Copy(s) => bus.copies[s],
                    BusSlot::W => bus.w,
                    BusSlot::Theta => bus.theta,
                };
            });
    }

    fn z_update(&self, st: &mut DeviceState, beta: f64) {
        let u = st.u.as_slice();
        let v = st.v.as_slice();
        let y = st.y.as_slice();
        let lam = st.lam.as_slice();
        let rho = st.rho.as_slice();
        self.device.launch_map("z_update", &mut st.z, move |k, zk| {
            *zk = -(lam[k] + y[k] + rho[k] * (u[k] - v[k])) / (beta + rho[k]);
        });
    }

    fn y_update(&self, st: &mut DeviceState) {
        let u = st.u.as_slice();
        let v = st.v.as_slice();
        let z = st.z.as_slice();
        let rho = st.rho.as_slice();
        self.device.launch_map("y_update", &mut st.y, move |k, yk| {
            *yk += rho[k] * (u[k] - v[k] + z[k]);
        });
    }

    fn lambda_update(&self, st: &mut DeviceState, beta: f64, bound: f64) {
        let z = st.z.as_slice();
        self.device
            .launch_map("lambda_update", &mut st.lam, move |k, lk| {
                *lk = (*lk + beta * z[k]).clamp(-bound, bound);
            });
    }

    // -- solution extraction -------------------------------------------------

    fn extract(&self, net: &Network, st: &DeviceState) -> (OpfSolution, WarmState) {
        let gens = st.gens.to_host();
        let branches = st.branches.to_host();
        let buses = st.buses.to_host();
        let solution = OpfSolution {
            vm: buses.iter().map(|b| b.w.max(0.0).sqrt()).collect(),
            va: buses.iter().map(|b| b.theta).collect(),
            pg: gens.iter().map(|g| g.pg).collect(),
            qg: gens.iter().map(|g| g.qg).collect(),
        };
        let warm = WarmState {
            gen_pg: gens.iter().map(|g| g.pg).collect(),
            gen_qg: gens.iter().map(|g| g.qg).collect(),
            branch_x: branches.iter().map(|b| b.x).collect(),
            branch_alm_lambda: branches.iter().map(|b| b.alm_lambda).collect(),
            branch_alm_rho: branches.iter().map(|b| b.alm_rho).collect(),
            bus_w: buses.iter().map(|b| b.w).collect(),
            bus_theta: buses.iter().map(|b| b.theta).collect(),
            bus_copies: buses.iter().map(|b| b.copies.clone()).collect(),
            y: st.y.to_host(),
            lam: st.lam.to_host(),
            z: st.z.to_host(),
        };
        let _ = net;
        (solution, warm)
    }
}

impl WarmState {
    /// Previous-period real-power dispatch (used to build ramp limits).
    pub fn previous_pg(&self) -> &[f64] {
        &self.gen_pg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_grid::cases;

    fn solve_case(case: gridsim_grid::Case, params: AdmmParams) -> (Network, AdmmResult) {
        let net = case.compile().unwrap();
        let solver = AdmmSolver::new(params);
        let result = solver.solve(&net);
        (net, result)
    }

    #[test]
    fn two_bus_admm_matches_physics() {
        let (net, result) = solve_case(cases::two_bus(), AdmmParams::default());
        assert!(
            result.quality.max_violation() < 2e-2,
            "violation {:?}",
            result.quality
        );
        // Generation covers the 0.8 p.u. load plus small losses.
        assert!(result.solution.pg[0] > 0.78 && result.solution.pg[0] < 0.9);
        let _ = net;
    }

    #[test]
    fn case9_admm_converges_to_feasible_point() {
        let (_net, result) = solve_case(cases::case9(), AdmmParams::default());
        assert!(
            result.quality.max_violation() < 2e-2,
            "violation {:?}",
            result.quality
        );
        let total_pg: f64 = result.solution.pg.iter().sum();
        assert!(total_pg > 3.1 && total_pg < 3.5, "total pg {total_pg}");
        assert!(result.inner_iterations > 10);
    }

    #[test]
    fn parallel_and_sequential_devices_agree() {
        let net = cases::two_bus().compile().unwrap();
        let params = AdmmParams {
            max_outer: 3,
            max_inner: 50,
            ..AdmmParams::default()
        };
        let par = AdmmSolver::with_device(params.clone(), Device::parallel()).solve(&net);
        let seq = AdmmSolver::with_device(params, Device::sequential()).solve(&net);
        assert_eq!(par.inner_iterations, seq.inner_iterations);
        for (a, b) in par.solution.pg.iter().zip(&seq.solution.pg) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in par.solution.vm.iter().zip(&seq.solution.vm) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn no_transfers_during_iterations() {
        let net = cases::two_bus().compile().unwrap();
        let params = AdmmParams {
            max_outer: 2,
            max_inner: 20,
            ..AdmmParams::default()
        };
        let solver = AdmmSolver::new(params);
        let before = solver.device.stats().snapshot();
        let _ = solver.solve(&net);
        let delta = solver.device.stats().snapshot().since(&before);
        // Transfers happen only at setup (host -> device) and extraction
        // (device -> host), never per iteration: with 40+ inner iterations the
        // transfer count stays equal to the fixed setup/teardown count.
        assert!(
            delta.host_to_device_transfers <= 12,
            "h2d {}",
            delta.host_to_device_transfers
        );
        assert!(
            delta.device_to_host_transfers <= 8,
            "d2h {}",
            delta.device_to_host_transfers
        );
        assert!(delta.kernels["z_update"].launches >= 20);
    }

    #[test]
    fn warm_start_converges_faster_after_small_load_change() {
        let base = cases::case9();
        let net = base.compile().unwrap();
        let solver = AdmmSolver::new(AdmmParams::default());
        let cold = solver.solve(&net);
        assert!(cold.quality.max_violation() < 2e-2);

        let bumped = base.scale_load(1.02).compile().unwrap();
        let warm = solver.solve_warm(&bumped, &cold.warm_state, None);
        assert!(warm.quality.max_violation() < 2e-2);
        assert!(
            warm.inner_iterations < cold.inner_iterations,
            "warm {} vs cold {}",
            warm.inner_iterations,
            cold.inner_iterations
        );

        let cold2 = solver.solve(&bumped);
        assert!(
            warm.inner_iterations <= cold2.inner_iterations,
            "warm {} vs cold-on-new-load {}",
            warm.inner_iterations,
            cold2.inner_iterations
        );
    }

    #[test]
    fn ramp_limits_are_respected_in_warm_solve() {
        let base = cases::case9();
        let net = base.compile().unwrap();
        let solver = AdmmSolver::new(AdmmParams::default());
        let cold = solver.solve(&net);
        let prev_pg = cold.warm_state.previous_pg().to_vec();
        let ramp = 0.02;
        let (lo, hi) = gridsim_acopf::start::ramp_limited_bounds(&net, &prev_pg, ramp);
        let bumped = base.scale_load(1.01).compile().unwrap();
        let warm = solver.solve_warm(&bumped, &cold.warm_state, Some((lo.clone(), hi.clone())));
        for g in 0..net.ngen {
            assert!(warm.solution.pg[g] >= lo[g] - 1e-9);
            assert!(warm.solution.pg[g] <= hi[g] + 1e-9);
        }
    }
}
