//! The two-level ADMM driver (Algorithm 1 of the paper).
//!
//! All per-iteration work is expressed as kernels on the simulated batch
//! device: generator, bus, z and multiplier updates map one thread per
//! element; branch subproblems map one thread block per branch and are solved
//! by the batch TRON solver. Residual norms are device-side reductions, so no
//! host–device transfer happens inside the solve.
//!
//! The per-element arithmetic lives in `crate::kernels` and is shared with
//! the batched multi-scenario driver ([`crate::scenario::ScenarioBatch`]),
//! which runs the same updates over scenario-major buffers.

use crate::kernels::{self, AlmSettings, BranchState, BusState, GenState, ProblemData};
use crate::layout::{BusSlot, Layout};
use crate::params::AdmmParams;
use gridsim_acopf::solution::OpfSolution;
use gridsim_acopf::violations::SolutionQuality;
use gridsim_batch::{Device, DeviceBuffer};
use gridsim_grid::network::Network;
use gridsim_tron::TronSolver;
use std::time::{Duration, Instant};

/// Termination status of an ADMM solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AdmmStatus {
    /// The outer loop drove `‖z‖∞` below the tolerance.
    Converged,
    /// The maximum number of outer iterations was reached.
    MaxOuterIterations,
}

/// Host-side snapshot of the full ADMM state, used for warm starting the next
/// period of the tracking experiment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WarmState {
    pub(crate) gen_pg: Vec<f64>,
    pub(crate) gen_qg: Vec<f64>,
    pub(crate) branch_x: Vec<[f64; 6]>,
    pub(crate) branch_alm_lambda: Vec<[f64; 2]>,
    pub(crate) branch_alm_rho: Vec<f64>,
    pub(crate) bus_w: Vec<f64>,
    pub(crate) bus_theta: Vec<f64>,
    pub(crate) bus_copies: Vec<Vec<f64>>,
    pub(crate) y: Vec<f64>,
    pub(crate) lam: Vec<f64>,
    pub(crate) z: Vec<f64>,
    /// Outer penalty at extraction time. A warm restart resumes the β
    /// schedule here instead of re-running it from `beta_init` — restarting
    /// the schedule from scratch at a converged point re-perturbs the
    /// multipliers and can walk a marginal case away from its fixed point
    /// (the ADMM analog of restarting the interior-point μ cascade).
    pub(crate) beta: f64,
}

/// Result of an ADMM solve.
#[derive(Debug, Clone)]
pub struct AdmmResult {
    /// The extracted operating point (dispatch from generator subproblems,
    /// voltages from bus subproblems).
    pub solution: OpfSolution,
    /// Objective value ($/hr) of the extracted solution.
    pub objective: f64,
    /// Solution-quality metrics of the extracted solution.
    pub quality: SolutionQuality,
    /// Termination status.
    pub status: AdmmStatus,
    /// Cumulative number of inner ADMM iterations (the paper's Table II
    /// "Iterations" column).
    pub inner_iterations: usize,
    /// Number of outer (augmented-Lagrangian) iterations.
    pub outer_iterations: usize,
    /// Final `‖z‖∞`.
    pub z_inf: f64,
    /// Final primal residual `‖u − v + z‖∞`.
    pub primal_residual: f64,
    /// Wall-clock solve time.
    pub solve_time: Duration,
    /// State snapshot for warm-starting the next solve.
    pub warm_state: WarmState,
}

struct DeviceState {
    gens: DeviceBuffer<GenState>,
    branches: DeviceBuffer<BranchState>,
    buses: DeviceBuffer<BusState>,
    u: DeviceBuffer<f64>,
    v: DeviceBuffer<f64>,
    z: DeviceBuffer<f64>,
    z_prev: DeviceBuffer<f64>,
    y: DeviceBuffer<f64>,
    lam: DeviceBuffer<f64>,
    rho: DeviceBuffer<f64>,
}

/// The component-based two-level ADMM solver.
#[derive(Debug, Clone)]
pub struct AdmmSolver {
    /// Algorithm parameters.
    pub params: AdmmParams,
    /// Batch device executing the kernels.
    pub device: Device,
}

impl AdmmSolver {
    /// Create a solver with the given parameters on an auto-resolved
    /// device (`GRIDSIM_BACKEND` override → worker count; every backend is
    /// bitwise identical, so the choice affects speed only).
    pub fn new(params: AdmmParams) -> Self {
        AdmmSolver {
            params,
            device: Device::default(),
        }
    }

    /// Create a solver on a specific device (e.g. sequential for
    /// deterministic tests).
    pub fn with_device(params: AdmmParams, device: Device) -> Self {
        AdmmSolver { params, device }
    }

    /// Solve from a cold start (Section IV-B).
    pub fn solve(&self, net: &Network) -> AdmmResult {
        self.solve_inner(net, None, None)
    }

    /// Solve warm-started from a previous period's state, optionally with
    /// ramp-limited generator bounds (Section IV-C).
    pub fn solve_warm(
        &self,
        net: &Network,
        warm: &WarmState,
        pg_bounds: Option<(Vec<f64>, Vec<f64>)>,
    ) -> AdmmResult {
        self.solve_inner(net, Some(warm), pg_bounds)
    }

    fn solve_inner(
        &self,
        net: &Network,
        warm: Option<&WarmState>,
        pg_bounds: Option<(Vec<f64>, Vec<f64>)>,
    ) -> AdmmResult {
        let start_time = Instant::now();
        let params = &self.params;
        let layout = Layout::build(net, params);
        let data = ProblemData::build(net, &layout, params, pg_bounds.as_ref());
        let vplan = kernels::v_plan(&layout);
        let mut st = self.init_state(net, &layout, &data, &vplan, warm);
        let tron = TronSolver::new(params.tron.clone());

        let mut beta = warm.map_or(params.beta_init, |w| w.beta);
        let mut total_inner = 0usize;
        let mut outer_done = 0usize;
        let mut z_inf_prev = f64::INFINITY;
        let mut z_inf = f64::INFINITY;
        let mut primres = f64::INFINITY;
        let mut status = AdmmStatus::MaxOuterIterations;

        for outer in 0..params.max_outer {
            outer_done = outer + 1;
            for _inner in 0..params.max_inner {
                total_inner += 1;
                // x block: generators and branches (lines 3 of Algorithm 1).
                self.generator_update(&mut st, &data);
                self.branch_update(&mut st, &data, &tron, params);
                self.scatter_u(&mut st, &data);
                // x̄ block: buses (line 4).
                self.bus_update(&mut st, &data);
                self.scatter_v(&mut st, &vplan);
                // z and multiplier updates (lines 5-6).
                st.z_prev.as_mut_slice().copy_from_slice(st.z.as_slice());
                self.z_update(&mut st, beta);
                self.y_update(&mut st);
                // Residuals.
                primres = self.device.reduce_max("primal_residual", &st.z, {
                    let u = st.u.as_slice();
                    let v = st.v.as_slice();
                    move |k, zk| (u[k] - v[k] + zk).abs()
                });
                let dualres = self.device.reduce_max("dual_residual", &st.z, {
                    let zp = st.z_prev.as_slice();
                    let rho = st.rho.as_slice();
                    move |k, zk| (rho[k] * (zk - zp[k])).abs()
                });
                if primres <= params.eps_inner && dualres <= params.eps_inner {
                    break;
                }
            }
            // Outer-level update (line 8) and termination (line 9).
            z_inf = self.device.reduce_max("z_norm", &st.z, |_, zk| zk.abs());
            if z_inf <= params.eps_outer {
                status = AdmmStatus::Converged;
                break;
            }
            self.lambda_update(&mut st, beta, params.lambda_bound);
            if z_inf > params.z_decrease_factor * z_inf_prev {
                beta *= params.beta_factor;
            }
            z_inf_prev = z_inf;
        }

        let (solution, warm_state) = self.extract(net, &st, beta);
        let quality = SolutionQuality::evaluate(net, &solution);
        AdmmResult {
            objective: solution.objective(net),
            quality,
            solution,
            status,
            inner_iterations: total_inner,
            outer_iterations: outer_done,
            z_inf,
            primal_residual: primres,
            solve_time: start_time.elapsed(),
            warm_state,
        }
    }

    // -- state initialization ------------------------------------------------

    fn init_state(
        &self,
        net: &Network,
        layout: &Layout,
        data: &ProblemData,
        vplan: &[(usize, BusSlot)],
        warm: Option<&WarmState>,
    ) -> DeviceState {
        let stats = self.device.stats().clone();
        let m = layout.num_constraints();

        let (gen_host, branch_host, bus_host, y_host, lam_host, z_host) = match warm {
            Some(w) => {
                let (gens, branches, buses) = kernels::warm_states(net, w);
                (
                    gens,
                    branches,
                    buses,
                    w.y.clone(),
                    w.lam.clone(),
                    w.z.clone(),
                )
            }
            None => {
                // Cold start: midpoints of bounds, zero angles, flows from
                // the initial voltages (Section IV-B).
                let gens: Vec<GenState> = data.gens.iter().map(kernels::cold_gen_state).collect();
                let branches: Vec<BranchState> = data
                    .branches
                    .iter()
                    .map(kernels::cold_branch_state)
                    .collect();
                let buses: Vec<BusState> = (0..net.nbus)
                    .map(|b| {
                        kernels::cold_bus_state(
                            net.vmin[b],
                            net.vmax[b],
                            layout.bus_plans[b].num_copies,
                        )
                    })
                    .collect();
                (
                    gens,
                    branches,
                    buses,
                    vec![0.0; m],
                    vec![0.0; m],
                    vec![0.0; m],
                )
            }
        };

        let mut st = DeviceState {
            gens: DeviceBuffer::from_host(stats.clone(), &gen_host),
            branches: DeviceBuffer::from_host(stats.clone(), &branch_host),
            buses: DeviceBuffer::from_host(stats.clone(), &bus_host),
            u: DeviceBuffer::zeroed(stats.clone(), m),
            v: DeviceBuffer::zeroed(stats.clone(), m),
            z: DeviceBuffer::from_host(stats.clone(), &z_host),
            z_prev: DeviceBuffer::zeroed(stats.clone(), m),
            y: DeviceBuffer::from_host(stats.clone(), &y_host),
            lam: DeviceBuffer::from_host(stats.clone(), &lam_host),
            rho: DeviceBuffer::from_host(stats, &layout.rho_vector()),
        };
        // Populate u from the component states and, for a cold start, seed
        // the bus copies with the consistent component values so the first
        // iteration starts from agreement.
        self.scatter_u(&mut st, data);
        if warm.is_none() {
            let buses_data = &data.buses;
            let u = st.u.as_slice();
            self.device
                .launch_map("bus_copy_seed", &mut st.buses, move |b, bus| {
                    kernels::seed_bus_copies(&buses_data[b], u, bus);
                });
        }
        self.scatter_v(&mut st, vplan);
        st
    }

    // -- kernels ---------------------------------------------------------------

    fn generator_update(&self, st: &mut DeviceState, data: &ProblemData) {
        let gens_data = &data.gens;
        let v = st.v.as_slice();
        let z = st.z.as_slice();
        let y = st.y.as_slice();
        let rho = st.rho.as_slice();
        self.device
            .launch_map("generator_update", &mut st.gens, move |g, state| {
                kernels::generator_element(&gens_data[g], 0, v, z, y, rho, state);
            });
    }

    fn branch_update(
        &self,
        st: &mut DeviceState,
        data: &ProblemData,
        tron: &TronSolver,
        params: &AdmmParams,
    ) {
        let branches_data = &data.branches;
        let v = st.v.as_slice();
        let z = st.z.as_slice();
        let y = st.y.as_slice();
        let rho = st.rho.as_slice();
        let alm = AlmSettings::from_params(params);
        self.device
            .launch_blocks("branch_tron", &mut st.branches, move |l, state| {
                kernels::branch_element(&branches_data[l], 0, v, z, y, rho, tron, &alm, state);
            });
    }

    fn scatter_u(&self, st: &mut DeviceState, data: &ProblemData) {
        let ngen = data.gens.len();
        let gens = st.gens.as_slice();
        let branches = st.branches.as_slice();
        self.device
            .launch_map("u_scatter", &mut st.u, move |k, uk| {
                *uk = kernels::u_element(k, ngen, gens, branches);
            });
    }

    fn bus_update(&self, st: &mut DeviceState, data: &ProblemData) {
        let buses_data = &data.buses;
        let u = st.u.as_slice();
        let z = st.z.as_slice();
        let y = st.y.as_slice();
        let rho = st.rho.as_slice();
        self.device
            .launch_map("bus_update", &mut st.buses, move |b, state| {
                kernels::bus_element(&buses_data[b], 0, u, z, y, rho, state);
            });
    }

    fn scatter_v(&self, st: &mut DeviceState, plan: &[(usize, BusSlot)]) {
        let buses = st.buses.as_slice();
        self.device
            .launch_map("v_scatter", &mut st.v, move |k, vk| {
                let (bus, slot) = plan[k];
                *vk = kernels::v_element(&buses[bus], slot);
            });
    }

    fn z_update(&self, st: &mut DeviceState, beta: f64) {
        let u = st.u.as_slice();
        let v = st.v.as_slice();
        let y = st.y.as_slice();
        let lam = st.lam.as_slice();
        let rho = st.rho.as_slice();
        self.device.launch_map("z_update", &mut st.z, move |k, zk| {
            *zk = kernels::z_element(k, u, v, y, lam, rho, beta);
        });
    }

    fn y_update(&self, st: &mut DeviceState) {
        let u = st.u.as_slice();
        let v = st.v.as_slice();
        let z = st.z.as_slice();
        let rho = st.rho.as_slice();
        self.device.launch_map("y_update", &mut st.y, move |k, yk| {
            kernels::y_element(k, u, v, z, rho, yk);
        });
    }

    fn lambda_update(&self, st: &mut DeviceState, beta: f64, bound: f64) {
        let z = st.z.as_slice();
        self.device
            .launch_map("lambda_update", &mut st.lam, move |k, lk| {
                kernels::lambda_element(z[k], beta, bound, lk);
            });
    }

    // -- solution extraction -------------------------------------------------

    fn extract(&self, net: &Network, st: &DeviceState, beta: f64) -> (OpfSolution, WarmState) {
        let gens = st.gens.to_host();
        let branches = st.branches.to_host();
        let buses = st.buses.to_host();
        let (solution, warm) = kernels::extract_segment(
            &gens,
            &branches,
            &buses,
            &st.y.to_host(),
            &st.lam.to_host(),
            &st.z.to_host(),
            beta,
        );
        let _ = net;
        (solution, warm)
    }
}

impl WarmState {
    /// Previous-period real-power dispatch (used to build ramp limits).
    pub fn previous_pg(&self) -> &[f64] {
        &self.gen_pg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_grid::cases;

    fn solve_case(case: gridsim_grid::Case, params: AdmmParams) -> (Network, AdmmResult) {
        let net = case.compile().unwrap();
        let solver = AdmmSolver::new(params);
        let result = solver.solve(&net);
        (net, result)
    }

    #[test]
    fn two_bus_admm_matches_physics() {
        let (net, result) = solve_case(cases::two_bus(), AdmmParams::default());
        assert!(
            result.quality.max_violation() < 2e-2,
            "violation {:?}",
            result.quality
        );
        // Generation covers the 0.8 p.u. load plus small losses.
        assert!(result.solution.pg[0] > 0.78 && result.solution.pg[0] < 0.9);
        let _ = net;
    }

    #[test]
    fn case9_admm_converges_to_feasible_point() {
        let (_net, result) = solve_case(cases::case9(), AdmmParams::default());
        assert!(
            result.quality.max_violation() < 2e-2,
            "violation {:?}",
            result.quality
        );
        let total_pg: f64 = result.solution.pg.iter().sum();
        assert!(total_pg > 3.1 && total_pg < 3.5, "total pg {total_pg}");
        assert!(result.inner_iterations > 10);
    }

    #[test]
    fn all_backends_agree_on_a_full_solve() {
        let net = cases::two_bus().compile().unwrap();
        let params = AdmmParams {
            max_outer: 3,
            max_inner: 50,
            ..AdmmParams::default()
        };
        let seq = AdmmSolver::with_device(params.clone(), Device::sequential()).solve(&net);
        for dev in [Device::parallel(), Device::vectorized()] {
            let label = dev.backend();
            let got = AdmmSolver::with_device(params.clone(), dev).solve(&net);
            assert_eq!(got.inner_iterations, seq.inner_iterations, "{label}");
            for (a, b) in got.solution.pg.iter().zip(&seq.solution.pg) {
                assert_eq!(a.to_bits(), b.to_bits(), "{label} pg diverged");
            }
            for (a, b) in got.solution.vm.iter().zip(&seq.solution.vm) {
                assert_eq!(a.to_bits(), b.to_bits(), "{label} vm diverged");
            }
        }
    }

    #[test]
    fn no_transfers_during_iterations() {
        let net = cases::two_bus().compile().unwrap();
        let params = AdmmParams {
            max_outer: 2,
            max_inner: 20,
            ..AdmmParams::default()
        };
        let solver = AdmmSolver::new(params);
        let before = solver.device.stats().snapshot();
        let _ = solver.solve(&net);
        let delta = solver.device.stats().snapshot().since(&before);
        // Transfers happen only at setup (host -> device) and extraction
        // (device -> host), never per iteration: with 40+ inner iterations the
        // transfer count stays equal to the fixed setup/teardown count.
        assert!(
            delta.host_to_device_transfers <= 12,
            "h2d {}",
            delta.host_to_device_transfers
        );
        assert!(
            delta.device_to_host_transfers <= 8,
            "d2h {}",
            delta.device_to_host_transfers
        );
        assert!(delta.kernels["z_update"].launches >= 20);
    }

    #[test]
    fn warm_start_converges_faster_after_small_load_change() {
        let base = cases::case9();
        let net = base.compile().unwrap();
        let solver = AdmmSolver::new(AdmmParams::default());
        let cold = solver.solve(&net);
        assert!(cold.quality.max_violation() < 2e-2);

        let bumped = base.scale_load(1.02).compile().unwrap();
        let warm = solver.solve_warm(&bumped, &cold.warm_state, None);
        assert!(warm.quality.max_violation() < 2e-2);
        assert!(
            warm.inner_iterations < cold.inner_iterations,
            "warm {} vs cold {}",
            warm.inner_iterations,
            cold.inner_iterations
        );

        let cold2 = solver.solve(&bumped);
        assert!(
            warm.inner_iterations <= cold2.inner_iterations,
            "warm {} vs cold-on-new-load {}",
            warm.inner_iterations,
            cold2.inner_iterations
        );
    }

    #[test]
    fn ramp_limits_are_respected_in_warm_solve() {
        let base = cases::case9();
        let net = base.compile().unwrap();
        let solver = AdmmSolver::new(AdmmParams::default());
        let cold = solver.solve(&net);
        let prev_pg = cold.warm_state.previous_pg().to_vec();
        let ramp = 0.02;
        let (lo, hi) = gridsim_acopf::start::ramp_limited_bounds(&net, &prev_pg, ramp);
        let bumped = base.scale_load(1.01).compile().unwrap();
        let warm = solver.solve_warm(&bumped, &cold.warm_state, Some((lo.clone(), hi.clone())));
        for g in 0..net.ngen {
            assert!(warm.solution.pg[g] >= lo[g] - 1e-9);
            assert!(warm.solution.pg[g] <= hi[g] + 1e-9);
        }
    }
}
