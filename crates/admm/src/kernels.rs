//! Shared per-element kernel bodies and problem data of the ADMM updates.
//!
//! Both the single-case driver ([`crate::solver::AdmmSolver`]) and the
//! batched multi-scenario engine ([`crate::scenario::ScenarioScheduler`])
//! launch these functions — the single driver over one network's buffers,
//! the scheduler over slot-major buffers spanning `L × n` elements. Every
//! constraint index stored in [`ProblemData`] is *scenario-local*; the
//! element functions take the owning slot's `base` offset (`0` for a single
//! solve, `slot · m` inside a batch) at call time. Keeping the data
//! scenario-local is what lets scenarios that share loads/outages share one
//! `Arc`'d copy of it regardless of which slot they run in, and keeping the
//! arithmetic in one place is what makes a K=1 batch bitwise identical to a
//! plain [`crate::solver::AdmmSolver::solve`].

use crate::branch_problem::{BranchProblem, ConsensusTerm};
use crate::layout::{BusSlot, ConstraintKind, Layout};
use crate::params::AdmmParams;
use crate::solver::WarmState;
use gridsim_acopf::flows::branch_flows;
use gridsim_acopf::solution::OpfSolution;
use gridsim_grid::branch::BranchAdmittance;
use gridsim_grid::network::Network;
use gridsim_sparse::dense::solve2;
use gridsim_tron::TronSolver;

// ---------------------------------------------------------------------------
// read-only per-component data
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct GenData {
    pub(crate) pmin: f64,
    pub(crate) pmax: f64,
    pub(crate) qmin: f64,
    pub(crate) qmax: f64,
    pub(crate) c2: f64,
    pub(crate) c1: f64,
    pub(crate) k_p: usize,
    pub(crate) k_q: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BranchData {
    pub(crate) y: BranchAdmittance,
    pub(crate) limit_sq: f64,
    pub(crate) k_base: usize,
    pub(crate) vmin_i: f64,
    pub(crate) vmax_i: f64,
    pub(crate) vmin_j: f64,
    pub(crate) vmax_j: f64,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BusData {
    pub(crate) pd: f64,
    pub(crate) qd: f64,
    pub(crate) gs: f64,
    pub(crate) bs: f64,
    /// `(constraint index, balance coefficient, copy slot)` of each
    /// real-power copy; +1 for generator copies, −1 for flow copies.
    pub(crate) p_terms: Vec<(usize, f64, usize)>,
    /// Same for reactive-power copies.
    pub(crate) q_terms: Vec<(usize, f64, usize)>,
    pub(crate) w_constraints: Vec<usize>,
    pub(crate) theta_constraints: Vec<usize>,
}

pub(crate) struct ProblemData {
    pub(crate) gens: Vec<GenData>,
    pub(crate) branches: Vec<BranchData>,
    pub(crate) buses: Vec<BusData>,
}

impl ProblemData {
    /// Build the read-only problem data. Every stored constraint index is
    /// scenario-local; kernel element functions shift by the owning slot's
    /// base offset at call time.
    pub(crate) fn build(
        net: &Network,
        layout: &Layout,
        params: &AdmmParams,
        pg_bounds: Option<&(Vec<f64>, Vec<f64>)>,
    ) -> ProblemData {
        // Internal objective scaling (see `AdmmParams::obj_scale`): keep the
        // largest marginal cost comparable to rho_pq so the generator
        // consensus converges at the same rate as the rest of the algorithm.
        let obj_scale = params.obj_scale.unwrap_or_else(|| {
            let grad_max = (0..net.ngen)
                .map(|g| 2.0 * net.cost_c2[g] * net.pmax[g] + net.cost_c1[g].abs())
                .fold(1.0f64, f64::max);
            (10.0 * params.rho_pq / grad_max).min(1.0)
        });
        let gens = (0..net.ngen)
            .map(|g| {
                let (pmin, pmax) = match pg_bounds {
                    Some((lo, hi)) => (lo[g], hi[g]),
                    None => (net.pmin[g], net.pmax[g]),
                };
                GenData {
                    pmin,
                    pmax,
                    qmin: net.qmin[g],
                    qmax: net.qmax[g],
                    c2: obj_scale * net.cost_c2[g],
                    c1: obj_scale * net.cost_c1[g],
                    k_p: layout.gen_p(g),
                    k_q: layout.gen_q(g),
                }
            })
            .collect();
        let branches = (0..net.nbranch)
            .map(|l| {
                let f = net.br_from[l];
                let t = net.br_to[l];
                BranchData {
                    y: net.br_y[l],
                    limit_sq: net.rate_limit_sq(l, params.line_limit_margin),
                    k_base: layout.branch_base(l),
                    vmin_i: net.vmin[f],
                    vmax_i: net.vmax[f],
                    vmin_j: net.vmin[t],
                    vmax_j: net.vmax[t],
                }
            })
            .collect();
        let buses = (0..net.nbus)
            .map(|b| {
                let plan = &layout.bus_plans[b];
                let sign = |k: usize| -> f64 {
                    match layout.constraints[k].kind {
                        ConstraintKind::GenP | ConstraintKind::GenQ => 1.0,
                        _ => -1.0,
                    }
                };
                let slot = |k: usize| -> usize {
                    match layout.constraints[k].slot {
                        BusSlot::Copy(s) => s,
                        _ => unreachable!("power copies always occupy a copy slot"),
                    }
                };
                BusData {
                    pd: net.pd[b],
                    qd: net.qd[b],
                    gs: net.gs[b],
                    bs: net.bs[b],
                    p_terms: plan
                        .p_copies
                        .iter()
                        .map(|&k| (k, sign(k), slot(k)))
                        .collect(),
                    q_terms: plan
                        .q_copies
                        .iter()
                        .map(|&k| (k, sign(k), slot(k)))
                        .collect(),
                    w_constraints: plan.w_constraints.clone(),
                    theta_constraints: plan.theta_constraints.clone(),
                }
            })
            .collect();
        ProblemData {
            gens,
            branches,
            buses,
        }
    }
}

/// Per-constraint `(owning bus, slot)` scatter plan for the v buffer, in
/// scenario-local bus indices. One plan serves every scenario of a batch:
/// slot `s` reads bus `s · nbus + bus`.
pub(crate) fn v_plan(layout: &Layout) -> Vec<(usize, BusSlot)> {
    layout.constraints.iter().map(|c| (c.bus, c.slot)).collect()
}

// ---------------------------------------------------------------------------
// mutable per-component state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
pub(crate) struct GenState {
    pub(crate) pg: f64,
    pub(crate) qg: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct BranchState {
    pub(crate) x: [f64; 6],
    pub(crate) flows: [f64; 4],
    pub(crate) alm_lambda: [f64; 2],
    pub(crate) alm_rho: f64,
}

impl Default for BranchState {
    fn default() -> Self {
        BranchState {
            x: [1.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            flows: [0.0; 4],
            alm_lambda: [0.0; 2],
            alm_rho: 0.0,
        }
    }
}

#[derive(Debug, Clone, Default)]
pub(crate) struct BusState {
    pub(crate) w: f64,
    pub(crate) theta: f64,
    pub(crate) copies: Vec<f64>,
}

/// Cold-start generator state: midpoints of the box (Section IV-B).
pub(crate) fn cold_gen_state(d: &GenData) -> GenState {
    GenState {
        pg: 0.5 * (d.pmin + d.pmax),
        qg: 0.5 * (d.qmin + d.qmax),
    }
}

/// Cold-start branch state: midpoint voltages, zero angles, flows from the
/// initial voltages, slacks clamped into their bounds.
pub(crate) fn cold_branch_state(bd: &BranchData) -> BranchState {
    let vi = 0.5 * (bd.vmin_i + bd.vmax_i);
    let vj = 0.5 * (bd.vmin_j + bd.vmax_j);
    let flows = branch_flows(&bd.y, vi, vj, 0.0, 0.0);
    let mut x = [vi, vj, 0.0, 0.0, 0.0, 0.0];
    if bd.limit_sq.is_finite() {
        x[4] = (-(flows[0] * flows[0] + flows[1] * flows[1])).clamp(-bd.limit_sq, 0.0);
        x[5] = (-(flows[2] * flows[2] + flows[3] * flows[3])).clamp(-bd.limit_sq, 0.0);
    }
    BranchState {
        x,
        flows,
        alm_lambda: [0.0; 2],
        alm_rho: 0.0,
    }
}

/// Cold-start bus state: midpoint squared voltage, zero angle and copies.
pub(crate) fn cold_bus_state(vmin: f64, vmax: f64, num_copies: usize) -> BusState {
    let vm = 0.5 * (vmin + vmax);
    BusState {
        w: vm * vm,
        theta: 0.0,
        copies: vec![0.0; num_copies],
    }
}

/// Warm-start component states reconstructed from a [`WarmState`] snapshot.
pub(crate) fn warm_states(
    net: &Network,
    warm: &WarmState,
) -> (Vec<GenState>, Vec<BranchState>, Vec<BusState>) {
    let gens: Vec<GenState> = warm
        .gen_pg
        .iter()
        .zip(&warm.gen_qg)
        .map(|(&pg, &qg)| GenState { pg, qg })
        .collect();
    let branches: Vec<BranchState> = (0..net.nbranch)
        .map(|l| BranchState {
            x: warm.branch_x[l],
            flows: {
                let x = warm.branch_x[l];
                branch_flows(&net.br_y[l], x[0], x[1], x[2], x[3])
            },
            alm_lambda: warm.branch_alm_lambda[l],
            alm_rho: warm.branch_alm_rho[l],
        })
        .collect();
    let buses: Vec<BusState> = (0..net.nbus)
        .map(|b| BusState {
            w: warm.bus_w[b],
            theta: warm.bus_theta[b],
            copies: warm.bus_copies[b].clone(),
        })
        .collect();
    (gens, branches, buses)
}

// ---------------------------------------------------------------------------
// per-element kernel bodies
// ---------------------------------------------------------------------------

/// The branch subproblem's inner augmented-Lagrangian settings.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AlmSettings {
    pub(crate) max_alm_iter: usize,
    pub(crate) alm_tol: f64,
    pub(crate) alm_rho_init: f64,
    pub(crate) alm_rho_max: f64,
}

impl AlmSettings {
    pub(crate) fn from_params(p: &AdmmParams) -> AlmSettings {
        AlmSettings {
            max_alm_iter: p.max_alm_iter,
            alm_tol: p.alm_tol,
            alm_rho_init: p.alm_rho_init,
            alm_rho_max: p.alm_rho_max,
        }
    }
}

/// Generator update: closed form (6) for the box-constrained quadratic.
/// `base` is the owning slot's offset into the constraint-major buffers
/// (`0` for a single solve, `slot · m` inside a batch).
#[inline]
pub(crate) fn generator_element(
    d: &GenData,
    base: usize,
    v: &[f64],
    z: &[f64],
    y: &[f64],
    rho: &[f64],
    state: &mut GenState,
) {
    let (kp, kq) = (base + d.k_p, base + d.k_q);
    let tp = v[kp] - z[kp];
    let pg = (rho[kp] * tp - y[kp] - d.c1) / (2.0 * d.c2 + rho[kp]);
    state.pg = pg.clamp(d.pmin, d.pmax);
    let tq = v[kq] - z[kq];
    let qg = tq - y[kq] / rho[kq];
    state.qg = qg.clamp(d.qmin, d.qmax);
}

/// Branch update: one TRON block solve, wrapped in the inner
/// augmented-Lagrangian loop on the line-limit slack equalities. `base` as
/// in [`generator_element`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn branch_element(
    d: &BranchData,
    base: usize,
    v: &[f64],
    z: &[f64],
    y: &[f64],
    rho: &[f64],
    tron: &TronSolver,
    alm: &AlmSettings,
    state: &mut BranchState,
) {
    let mut problem = BranchProblem::new(&d.y, d.vmin_i, d.vmax_i, d.vmin_j, d.vmax_j);
    problem.limit_sq = d.limit_sq;
    let term = |k: usize| ConsensusTerm {
        target: v[k] - z[k],
        y: y[k],
        rho: rho[k],
    };
    for j in 0..4 {
        problem.flow_terms[j] = term(base + d.k_base + j);
        problem.volt_terms[j] = term(base + d.k_base + 4 + j);
    }
    problem.alm_lambda = state.alm_lambda;
    problem.alm_rho = if state.alm_rho > 0.0 {
        state.alm_rho
    } else {
        alm.alm_rho_init
    };
    // Inner augmented-Lagrangian loop on the line-limit slack equalities; a
    // single TRON solve when there is no limit.
    let mut prev_viol = f64::INFINITY;
    let rounds = if problem.has_limit() {
        alm.max_alm_iter
    } else {
        1
    };
    for _ in 0..rounds {
        let result = tron.solve(&problem, &state.x);
        state.x = [
            result.x[0],
            result.x[1],
            result.x[2],
            result.x[3],
            result.x[4],
            result.x[5],
        ];
        if !problem.has_limit() {
            break;
        }
        let res = problem.slack_residuals(&state.x);
        let viol = res[0].abs().max(res[1].abs());
        if viol < alm.alm_tol {
            break;
        }
        problem.alm_lambda[0] += problem.alm_rho * res[0];
        problem.alm_lambda[1] += problem.alm_rho * res[1];
        if viol > 0.25 * prev_viol {
            problem.alm_rho = (problem.alm_rho * 10.0).min(alm.alm_rho_max);
        }
        prev_viol = viol;
    }
    state.alm_lambda = problem.alm_lambda;
    state.alm_rho = problem.alm_rho;
    state.flows = problem.flow_values(&state.x);
}

/// x-side value of constraint `k_local` (scenario-local index) given the
/// scenario's generator and branch state slices.
#[inline]
pub(crate) fn u_element(
    k_local: usize,
    ngen: usize,
    gens: &[GenState],
    branches: &[BranchState],
) -> f64 {
    if k_local < 2 * ngen {
        let g = &gens[k_local / 2];
        if k_local.is_multiple_of(2) {
            g.pg
        } else {
            g.qg
        }
    } else {
        let l = (k_local - 2 * ngen) / 8;
        let offset = (k_local - 2 * ngen) % 8;
        let b = &branches[l];
        match offset {
            0..=3 => b.flows[offset],
            4 => b.x[0] * b.x[0],
            5 => b.x[2],
            6 => b.x[1] * b.x[1],
            _ => b.x[3],
        }
    }
}

/// Bus update: the equality-constrained diagonal QP (7) over `w`, `θ` and
/// the power copies. `base` as in [`generator_element`].
pub(crate) fn bus_element(
    d: &BusData,
    base: usize,
    u: &[f64],
    z: &[f64],
    y: &[f64],
    rho: &[f64],
    state: &mut BusState,
) {
    // Linear/quadratic coefficients of each variable in the separable
    // objective:  0.5 * q * x² − c * x.
    let coef = |k: usize| -> (f64, f64) {
        let k = base + k;
        (rho[k], rho[k] * (u[k] + z[k]) + y[k])
    };

    // θ update: unconstrained, separable.
    let mut num = 0.0;
    let mut den = 0.0;
    for &k in &d.theta_constraints {
        let (q, c) = coef(k);
        num += c;
        den += q;
    }
    if den > 0.0 {
        state.theta = num / den;
    }

    // Equality-constrained diagonal QP (7) over w and the copies.
    let mut qw = 0.0;
    let mut cw = 0.0;
    for &k in &d.w_constraints {
        let (q, c) = coef(k);
        qw += q;
        cw += c;
    }
    // A has two rows (P and Q balance). Coefficients on w:
    let aw = [-d.gs, d.bs];
    // Accumulate A Q^{-1} A^T and A Q^{-1} c.
    let mut aqat = [[0.0f64; 2]; 2];
    let mut aqc = [0.0f64; 2];
    if qw > 0.0 {
        aqat[0][0] += aw[0] * aw[0] / qw;
        aqat[0][1] += aw[0] * aw[1] / qw;
        aqat[1][0] += aw[1] * aw[0] / qw;
        aqat[1][1] += aw[1] * aw[1] / qw;
        aqc[0] += aw[0] * cw / qw;
        aqc[1] += aw[1] * cw / qw;
    }
    for &(k, sign, _) in &d.p_terms {
        let (q, c) = coef(k);
        aqat[0][0] += sign * sign / q;
        aqc[0] += sign * c / q;
    }
    for &(k, sign, _) in &d.q_terms {
        let (q, c) = coef(k);
        aqat[1][1] += sign * sign / q;
        aqc[1] += sign * c / q;
    }
    let rhs = [aqc[0] - d.pd, aqc[1] - d.qd];
    let mu = solve2(aqat, rhs).unwrap_or([0.0, 0.0]);
    // Recover the primal variables: x = Q^{-1}(c − A^T μ).
    if qw > 0.0 {
        state.w = (cw - aw[0] * mu[0] - aw[1] * mu[1]) / qw;
    }
    for &(k, sign, slot) in &d.p_terms {
        let (q, c) = coef(k);
        state.copies[slot] = (c - sign * mu[0]) / q;
    }
    for &(k, sign, slot) in &d.q_terms {
        let (q, c) = coef(k);
        state.copies[slot] = (c - sign * mu[1]) / q;
    }
}

/// x̄-side value of a constraint given its scatter-plan entry.
#[inline]
pub(crate) fn v_element(bus: &BusState, slot: BusSlot) -> f64 {
    match slot {
        BusSlot::Copy(s) => bus.copies[s],
        BusSlot::W => bus.w,
        BusSlot::Theta => bus.theta,
    }
}

/// z update: closed form (8).
#[inline]
pub(crate) fn z_element(
    k: usize,
    u: &[f64],
    v: &[f64],
    y: &[f64],
    lam: &[f64],
    rho: &[f64],
    beta: f64,
) -> f64 {
    -(lam[k] + y[k] + rho[k] * (u[k] - v[k])) / (beta + rho[k])
}

/// Inner multiplier update.
#[inline]
pub(crate) fn y_element(k: usize, u: &[f64], v: &[f64], z: &[f64], rho: &[f64], yk: &mut f64) {
    *yk += rho[k] * (u[k] - v[k] + z[k]);
}

/// Outer multiplier update with projection onto `[-bound, bound]`.
#[inline]
pub(crate) fn lambda_element(zk: f64, beta: f64, bound: f64, lk: &mut f64) {
    *lk = (*lk + beta * zk).clamp(-bound, bound);
}

/// Seed a bus's copies from the freshly scattered `u` so a cold start begins
/// from consensus agreement.
pub(crate) fn seed_bus_copies(d: &BusData, u: &[f64], state: &mut BusState) {
    for &(k, _, slot) in &d.p_terms {
        state.copies[slot] = u[k];
    }
    for &(k, _, slot) in &d.q_terms {
        state.copies[slot] = u[k];
    }
}

/// Extract the operating point and warm-start snapshot from one scenario's
/// state slices.
pub(crate) fn extract_segment(
    gens: &[GenState],
    branches: &[BranchState],
    buses: &[BusState],
    y: &[f64],
    lam: &[f64],
    z: &[f64],
    beta: f64,
) -> (OpfSolution, WarmState) {
    let solution = OpfSolution {
        vm: buses.iter().map(|b| b.w.max(0.0).sqrt()).collect(),
        va: buses.iter().map(|b| b.theta).collect(),
        pg: gens.iter().map(|g| g.pg).collect(),
        qg: gens.iter().map(|g| g.qg).collect(),
    };
    let warm = WarmState {
        gen_pg: gens.iter().map(|g| g.pg).collect(),
        gen_qg: gens.iter().map(|g| g.qg).collect(),
        branch_x: branches.iter().map(|b| b.x).collect(),
        branch_alm_lambda: branches.iter().map(|b| b.alm_lambda).collect(),
        branch_alm_rho: branches.iter().map(|b| b.alm_rho).collect(),
        bus_w: buses.iter().map(|b| b.w).collect(),
        bus_theta: buses.iter().map(|b| b.theta).collect(),
        bus_copies: buses.iter().map(|b| b.copies.clone()).collect(),
        y: y.to_vec(),
        lam: lam.to_vec(),
        z: z.to_vec(),
        beta,
    };
    (solution, warm)
}
