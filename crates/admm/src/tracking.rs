//! Rolling-horizon tracking of ACOPF solutions under load changes
//! (Section IV-C of the paper).
//!
//! The first period is solved from a cold start; every subsequent period is
//! warm-started from the previous period's full ADMM state with generator
//! ramp limits of a configurable fraction of the upper real-power bound per
//! period (the paper uses 2 %).

use crate::params::AdmmParams;
use crate::solver::{AdmmResult, AdmmSolver};
use gridsim_acopf::start::ramp_limited_bounds;
use gridsim_grid::load_profile::LoadProfile;
use gridsim_grid::network::Case;
use std::time::Duration;

/// Configuration of the tracking experiment.
#[derive(Debug, Clone)]
pub struct TrackingConfig {
    /// ADMM parameters used for every period.
    pub params: AdmmParams,
    /// Generator ramp limit per period as a fraction of `pmax` (paper: 0.02).
    pub ramp_fraction: f64,
}

impl Default for TrackingConfig {
    fn default() -> Self {
        TrackingConfig {
            params: AdmmParams::default(),
            ramp_fraction: 0.02,
        }
    }
}

/// Outcome of one time period.
#[derive(Debug, Clone)]
pub struct PeriodResult {
    /// Period index (0 = cold start).
    pub period: usize,
    /// Load multiplier applied in this period.
    pub load_multiplier: f64,
    /// Solve wall-clock time of this period.
    pub solve_time: Duration,
    /// Cumulative wall-clock time up to and including this period
    /// (the quantity plotted in Figure 1).
    pub cumulative_time: Duration,
    /// Maximum constraint violation (Figure 2).
    pub max_violation: f64,
    /// Objective value ($/hr).
    pub objective: f64,
    /// Cumulative inner ADMM iterations in this period.
    pub inner_iterations: usize,
}

/// Run the tracking experiment: solve `profile.len()` consecutive periods of
/// `base_case` with per-period loads scaled by the profile. Returns one
/// [`PeriodResult`] per period together with the full [`AdmmResult`] of the
/// final period.
pub fn track_horizon(
    base_case: &Case,
    profile: &LoadProfile,
    config: &TrackingConfig,
) -> (Vec<PeriodResult>, AdmmResult) {
    assert!(!profile.is_empty(), "profile must have at least one period");
    let solver = AdmmSolver::new(config.params.clone());
    let mut periods = Vec::with_capacity(profile.len());
    let mut cumulative = Duration::ZERO;
    let mut previous: Option<AdmmResult> = None;

    for (t, &mult) in profile.multipliers.iter().enumerate() {
        let case_t = base_case.scale_load(mult);
        let net_t = case_t.compile().expect("scaled case must compile");
        let result = match &previous {
            None => solver.solve(&net_t),
            Some(prev) => {
                let (lo, hi) = ramp_limited_bounds(
                    &net_t,
                    prev.warm_state.previous_pg(),
                    config.ramp_fraction,
                );
                solver.solve_warm(&net_t, &prev.warm_state, Some((lo, hi)))
            }
        };
        cumulative += result.solve_time;
        periods.push(PeriodResult {
            period: t,
            load_multiplier: mult,
            solve_time: result.solve_time,
            cumulative_time: cumulative,
            max_violation: result.quality.max_violation(),
            objective: result.objective,
            inner_iterations: result.inner_iterations,
        });
        previous = Some(result);
    }
    let last = previous.expect("at least one period solved");
    (periods, last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_grid::cases;

    #[test]
    fn tracking_case9_three_periods_stays_feasible() {
        let base = cases::case9();
        let profile = LoadProfile {
            multipliers: vec![1.0, 1.01, 1.02],
            period_minutes: 1.0,
        };
        let (periods, last) = track_horizon(&base, &profile, &TrackingConfig::default());
        assert_eq!(periods.len(), 3);
        for p in &periods {
            assert!(
                p.max_violation < 2e-2,
                "period {} violation {}",
                p.period,
                p.max_violation
            );
        }
        // Cumulative time is nondecreasing.
        for w in periods.windows(2) {
            assert!(w[1].cumulative_time >= w[0].cumulative_time);
        }
        // Warm-started periods take fewer inner iterations than the cold one.
        assert!(periods[1].inner_iterations <= periods[0].inner_iterations);
        assert!(periods[2].inner_iterations <= periods[0].inner_iterations);
        // Objective rises with load.
        assert!(last.objective >= periods[0].objective * 0.99);
    }

    #[test]
    fn ramp_limits_bound_dispatch_changes_between_periods() {
        let base = cases::case9();
        let profile = LoadProfile {
            multipliers: vec![1.0, 1.03],
            period_minutes: 1.0,
        };
        let config = TrackingConfig {
            ramp_fraction: 0.02,
            ..Default::default()
        };
        let solver_params_net = base.compile().unwrap();
        let (_periods, last) = track_horizon(&base, &profile, &config);
        // We cannot observe period-0 dispatch from here directly, but the
        // final dispatch must stay within the static bounds at least.
        for g in 0..solver_params_net.ngen {
            assert!(last.solution.pg[g] <= solver_params_net.pmax[g] + 1e-9);
            assert!(last.solution.pg[g] >= solver_params_net.pmin[g] - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one period")]
    fn empty_profile_panics() {
        let base = cases::two_bus();
        let profile = LoadProfile {
            multipliers: vec![],
            period_minutes: 1.0,
        };
        let _ = track_horizon(&base, &profile, &TrackingConfig::default());
    }
}
