//! # gridsim-admm
//!
//! The paper's contribution: a component-based, two-level ADMM solver for
//! ACOPF that runs every algorithmic step as a batch kernel on a (simulated)
//! GPU device.
//!
//! The ACOPF problem is decomposed by grid component — generators, branches,
//! and buses — with consensus (coupling) constraints tying the duplicated
//! variables together (Section II-B of the paper). An artificial variable `z`
//! is added to every coupling constraint and driven to zero by an outer
//! augmented-Lagrangian loop (the two-level scheme of Sun & Sun), which gives
//! the inner ADMM convergence guarantees. Per inner iteration:
//!
//! * **generator subproblems** have the closed form (6) — one thread each,
//! * **bus subproblems** are equality-constrained diagonal QPs with the
//!   closed form (7) — one thread each,
//! * **branch subproblems** are 6-variable bound-constrained nonconvex
//!   problems (4), solved in batch by [`gridsim_tron`] (the ExaTron
//!   substitute) — one thread block each, with line limits handled by an
//!   inner augmented-Lagrangian loop,
//! * **z / multiplier updates** are elementwise closed forms (8).
//!
//! No host–device transfers occur during the solve; the transfer counters of
//! [`gridsim_batch`] verify this.
//!
//! Beyond the paper's per-case solver, the [`scenario`] module provides the
//! multi-device execution engine: [`scenario::ScenarioProblem`] holds the
//! `Arc`-deduplicated read-only problem data of a scenario set, and
//! [`scenario::ScenarioScheduler`] shards the scenarios across a
//! [`gridsim_batch::DevicePool`] with streaming admission (converged
//! scenarios hand their buffer slot to the next pending one).
//! [`scenario::ScenarioBatch`] — the K-scenarios-on-one-device special case —
//! remains the convenience front end used by the `scenario_throughput`
//! experiment.

pub mod branch_problem;
pub(crate) mod kernels;
pub mod layout;
pub mod params;
pub mod scenario;
pub mod solver;
pub mod tracking;

pub use branch_problem::BranchProblem;
pub use layout::{ConstraintKind, Layout};
pub use params::AdmmParams;
pub use scenario::{
    ScenarioBatch, ScenarioBatchResult, ScenarioProblem, ScenarioResult, ScenarioScheduler,
};
pub use solver::{AdmmResult, AdmmSolver, AdmmStatus, WarmState};
pub use tracking::{track_horizon, PeriodResult, TrackingConfig};
