//! Batched multi-scenario ADMM: solve *K* load/contingency scenarios of one
//! network concurrently through a single batched driver.
//!
//! The paper's solver already expresses every algorithmic step as a batch
//! kernel over one network's components; this module widens each of those
//! launches to span `K × n` elements in **scenario-major** device buffers
//! (scenario `s` owns elements `[s·n, (s+1)·n)`), in the style of the SIMD
//! abstraction of Shin et al. (arXiv:2307.16830). Three properties make it a
//! fleet solver rather than `K` loops:
//!
//! * **one launch per algorithmic step** — the generator/bus/z/multiplier
//!   `launch_map`s and the TRON `launch_blocks` branch solves cover every
//!   scenario at once, so per-launch overhead is amortized `K×` and the
//!   parallel backend sees `K×` more elements to fan out across threads,
//! * **per-scenario convergence masks** — each scenario carries its own
//!   inner/outer iteration counters, penalty `β`, and termination status;
//!   converged scenarios are masked out of subsequent launches and stop
//!   consuming kernel work (visible in the recorded block counts),
//! * **bitwise-identical arithmetic** — the per-element update bodies are
//!   shared with [`AdmmSolver`](crate::solver::AdmmSolver) through
//!   [`crate::kernels`], so a K=1 batch reproduces a plain solve exactly,
//!   bit for bit, on both the parallel and sequential backends.
//!
//! Warm starts: [`ScenarioBatch::solve_warm`] seeds every scenario from one
//! shared [`WarmState`] (e.g. the solved nominal case) with optional
//! per-scenario ramp-limited generator bounds; [`ScenarioBatch::solve_chained`]
//! instead threads the warm state from scenario `k−1` into scenario `k`
//! (ramp-limited), trading batch width for warm-start depth — the right mode
//! for ordered scenario sweeps such as monotone load ramps.

use crate::kernels::{self, AlmSettings, BranchState, BusState, GenState, ProblemData};
use crate::layout::{BusSlot, Layout};
use crate::params::AdmmParams;
use crate::solver::{AdmmStatus, WarmState};
use gridsim_acopf::solution::OpfSolution;
use gridsim_acopf::start::ramp_limited_bounds;
use gridsim_acopf::violations::SolutionQuality;
use gridsim_batch::{Device, DeviceBuffer};
use gridsim_grid::network::Network;
use gridsim_tron::TronSolver;
use std::time::{Duration, Instant};

/// Result of one scenario inside a batched solve. Field-for-field the
/// scenario-local counterpart of [`crate::solver::AdmmResult`].
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Name of the scenario's network.
    pub name: String,
    /// The extracted operating point.
    pub solution: OpfSolution,
    /// Objective value ($/hr).
    pub objective: f64,
    /// Solution-quality metrics.
    pub quality: SolutionQuality,
    /// Termination status.
    pub status: AdmmStatus,
    /// Cumulative inner ADMM iterations of this scenario.
    pub inner_iterations: usize,
    /// Outer (augmented-Lagrangian) iterations of this scenario.
    pub outer_iterations: usize,
    /// Final `‖z‖∞` of this scenario.
    pub z_inf: f64,
    /// Final primal residual of this scenario.
    pub primal_residual: f64,
    /// State snapshot for warm-starting a follow-up solve.
    pub warm_state: WarmState,
}

/// Result of a batched multi-scenario solve.
#[derive(Debug, Clone)]
pub struct ScenarioBatchResult {
    /// Per-scenario results, in input order.
    pub results: Vec<ScenarioResult>,
    /// Wall-clock time of the whole batch.
    pub solve_time: Duration,
    /// Number of batched inner-iteration ticks executed. Each tick launches
    /// one batched round of kernels covering every still-active scenario, so
    /// for a batched solve `ticks` equals the *maximum* per-scenario inner
    /// iteration count, not the sum. [`ScenarioBatch::solve_chained`] runs
    /// its scenarios as consecutive K=1 batches instead, so there `ticks` is
    /// the sum over the chain (every tick still launches one kernel round).
    pub ticks: usize,
}

impl ScenarioBatchResult {
    /// Sum of per-scenario inner iterations (the work a sequential driver
    /// would have spread over as many kernel rounds).
    pub fn total_inner_iterations(&self) -> usize {
        self.results.iter().map(|r| r.inner_iterations).sum()
    }

    /// Worst max-violation across scenarios.
    pub fn worst_violation(&self) -> f64 {
        self.results
            .iter()
            .map(|r| r.quality.max_violation())
            .fold(0.0, f64::max)
    }

    /// True when every scenario converged.
    pub fn all_converged(&self) -> bool {
        self.results
            .iter()
            .all(|r| r.status == AdmmStatus::Converged)
    }
}

/// Per-scenario control state of the batched outer/inner loop.
#[derive(Debug, Clone)]
struct ScenCtl {
    beta: f64,
    outer_done: usize,
    inner_in_outer: usize,
    total_inner: usize,
    z_inf_prev: f64,
    z_inf: f64,
    primres: f64,
    status: AdmmStatus,
}

/// The batched multi-scenario ADMM driver.
#[derive(Debug, Clone)]
pub struct ScenarioBatch {
    /// Algorithm parameters (shared by every scenario).
    pub params: AdmmParams,
    /// Batch device executing the kernels.
    pub device: Device,
}

impl ScenarioBatch {
    /// Create a batched driver on a parallel device.
    pub fn new(params: AdmmParams) -> Self {
        ScenarioBatch {
            params,
            device: Device::parallel(),
        }
    }

    /// Create a batched driver on a specific device.
    pub fn with_device(params: AdmmParams, device: Device) -> Self {
        ScenarioBatch { params, device }
    }

    /// Solve all scenarios from a cold start.
    ///
    /// Every network must share the dimensions and topology of the first
    /// (same buses, generators and branch endpoints); loads, admittances,
    /// shunts and generator data may differ. Panics otherwise.
    pub fn solve(&self, nets: &[Network]) -> ScenarioBatchResult {
        self.solve_batch(nets, None, None)
    }

    /// Solve all scenarios warm-started from one shared [`WarmState`] (e.g.
    /// the solved nominal case), optionally with per-scenario ramp-limited
    /// generator bounds (`pg_bounds[s]` applies to scenario `s`).
    pub fn solve_warm(
        &self,
        nets: &[Network],
        warm: &WarmState,
        pg_bounds: Option<&[(Vec<f64>, Vec<f64>)]>,
    ) -> ScenarioBatchResult {
        if let Some(b) = pg_bounds {
            assert_eq!(b.len(), nets.len(), "one pg bound pair per scenario");
        }
        self.solve_batch(nets, Some(warm), pg_bounds)
    }

    /// Solve the scenarios in order, seeding scenario `k` from scenario
    /// `k−1`'s warm state with ramp-limited generator bounds (`base` seeds
    /// scenario 0). This trades the batch width of [`ScenarioBatch::solve`]
    /// for warm-start depth — each solve is a K=1 batch — and fits ordered
    /// sweeps such as monotone load ramps, where adjacent scenarios are
    /// nearly identical.
    pub fn solve_chained(
        &self,
        nets: &[Network],
        base: &WarmState,
        ramp_fraction: f64,
    ) -> ScenarioBatchResult {
        let start = Instant::now();
        let mut results = Vec::with_capacity(nets.len());
        let mut ticks = 0usize;
        let mut prev = base.clone();
        for net in nets {
            let bounds = ramp_limited_bounds(net, prev.previous_pg(), ramp_fraction);
            let one = self.solve_batch(std::slice::from_ref(net), Some(&prev), Some(&[bounds]));
            ticks += one.ticks;
            let r = one.results.into_iter().next().expect("one scenario");
            prev = r.warm_state.clone();
            results.push(r);
        }
        ScenarioBatchResult {
            results,
            solve_time: start.elapsed(),
            ticks,
        }
    }

    fn solve_batch(
        &self,
        nets: &[Network],
        warm: Option<&WarmState>,
        pg_bounds: Option<&[(Vec<f64>, Vec<f64>)]>,
    ) -> ScenarioBatchResult {
        let start_time = Instant::now();
        let params = &self.params;
        // The tick loop performs one inner iteration per round before it
        // checks the caps, so zero-iteration budgets (which the single
        // solver answers with an immediate return) cannot be honored here.
        assert!(
            params.max_inner >= 1 && params.max_outer >= 1,
            "ScenarioBatch needs max_inner >= 1 and max_outer >= 1"
        );
        let (nbus, ngen, nbranch) = check_compatible(nets);
        let kk = nets.len();
        let layout = Layout::build(&nets[0], params);
        let m = layout.num_constraints();

        // Scenario-major problem data: constraint indices pre-offset by s·m,
        // v-scatter plan bus indices pre-offset by s·nbus.
        let mut data = ProblemData {
            gens: Vec::with_capacity(kk * ngen),
            branches: Vec::with_capacity(kk * nbranch),
            buses: Vec::with_capacity(kk * nbus),
        };
        for (s, net) in nets.iter().enumerate() {
            let bounds = pg_bounds.map(|b| &b[s]);
            let d = ProblemData::build(net, &layout, params, bounds, s * m);
            data.gens.extend(d.gens);
            data.branches.extend(d.branches);
            data.buses.extend(d.buses);
        }
        let mut vplan: Vec<(usize, BusSlot)> = Vec::with_capacity(kk * m);
        for s in 0..kk {
            vplan.extend(kernels::v_plan(&layout, s * nbus));
        }
        let rho_single = layout.rho_vector();

        // ---- host-side initialization (the batched analogue of the single
        // driver's init kernels; same shared element functions, so the
        // seeded values are bitwise identical) ----
        let mut gen_host: Vec<GenState> = Vec::with_capacity(kk * ngen);
        let mut branch_host: Vec<BranchState> = Vec::with_capacity(kk * nbranch);
        let mut bus_host: Vec<BusState> = Vec::with_capacity(kk * nbus);
        let mut y_host = vec![0.0f64; kk * m];
        let mut lam_host = vec![0.0f64; kk * m];
        let mut z_host = vec![0.0f64; kk * m];
        let mut rho_host: Vec<f64> = Vec::with_capacity(kk * m);
        for (s, net) in nets.iter().enumerate() {
            match warm {
                Some(w) => {
                    let (gens, branches, buses) = kernels::warm_states(net, w);
                    gen_host.extend(gens);
                    branch_host.extend(branches);
                    bus_host.extend(buses);
                    y_host[s * m..(s + 1) * m].copy_from_slice(&w.y);
                    lam_host[s * m..(s + 1) * m].copy_from_slice(&w.lam);
                    z_host[s * m..(s + 1) * m].copy_from_slice(&w.z);
                }
                None => {
                    gen_host.extend(
                        data.gens[s * ngen..(s + 1) * ngen]
                            .iter()
                            .map(kernels::cold_gen_state),
                    );
                    branch_host.extend(
                        data.branches[s * nbranch..(s + 1) * nbranch]
                            .iter()
                            .map(kernels::cold_branch_state),
                    );
                    bus_host.extend((0..nbus).map(|b| {
                        kernels::cold_bus_state(
                            net.vmin[b],
                            net.vmax[b],
                            layout.bus_plans[b].num_copies,
                        )
                    }));
                }
            }
            rho_host.extend_from_slice(&rho_single);
        }
        let mut u_host = vec![0.0f64; kk * m];
        for s in 0..kk {
            let gens = &gen_host[s * ngen..(s + 1) * ngen];
            let branches = &branch_host[s * nbranch..(s + 1) * nbranch];
            for k_local in 0..m {
                u_host[s * m + k_local] = kernels::u_element(k_local, ngen, gens, branches);
            }
        }
        if warm.is_none() {
            for (b, bus) in bus_host.iter_mut().enumerate() {
                kernels::seed_bus_copies(&data.buses[b], &u_host, bus);
            }
        }
        let mut v_host = vec![0.0f64; kk * m];
        for (k, vk) in v_host.iter_mut().enumerate() {
            let (bus, slot) = vplan[k];
            *vk = kernels::v_element(&bus_host[bus], slot);
        }

        let stats = self.device.stats().clone();
        let mut st = BatchState {
            gens: DeviceBuffer::from_host(stats.clone(), &gen_host),
            branches: DeviceBuffer::from_host(stats.clone(), &branch_host),
            buses: DeviceBuffer::from_host(stats.clone(), &bus_host),
            u: DeviceBuffer::from_host(stats.clone(), &u_host),
            v: DeviceBuffer::from_host(stats.clone(), &v_host),
            z: DeviceBuffer::from_host(stats.clone(), &z_host),
            z_prev: DeviceBuffer::zeroed(stats.clone(), kk * m),
            y: DeviceBuffer::from_host(stats.clone(), &y_host),
            lam: DeviceBuffer::from_host(stats.clone(), &lam_host),
            rho: DeviceBuffer::from_host(stats, &rho_host),
        };

        // ---- batched outer/inner loop ----
        let tron = TronSolver::new(params.tron.clone());
        let alm = AlmSettings::from_params(params);
        let mut ctl: Vec<ScenCtl> = (0..kk)
            .map(|_| ScenCtl {
                beta: params.beta_init,
                outer_done: 0,
                inner_in_outer: 0,
                total_inner: 0,
                z_inf_prev: f64::INFINITY,
                z_inf: f64::INFINITY,
                primres: f64::INFINITY,
                status: AdmmStatus::MaxOuterIterations,
            })
            .collect();
        let mut active: Vec<bool> = vec![true; kk];
        let mut ticks = 0usize;

        while active.iter().any(|&a| a) {
            ticks += 1;
            self.tick(
                &mut st, &data, &vplan, &tron, &alm, &active, &ctl, ngen, nbranch, nbus, m,
            );

            // Residuals, per scenario.
            let prim = self
                .device
                .reduce_max_segments("primal_residual", &st.z, m, &active, {
                    let u = st.u.as_slice();
                    let v = st.v.as_slice();
                    move |k, zk| (u[k] - v[k] + zk).abs()
                });
            let dual = self
                .device
                .reduce_max_segments("dual_residual", &st.z, m, &active, {
                    let zp = st.z_prev.as_slice();
                    let rho = st.rho.as_slice();
                    move |k, zk| (rho[k] * (zk - zp[k])).abs()
                });

            // Per-scenario control: inner bookkeeping, outer boundaries.
            let mut boundary = vec![false; kk];
            for s in 0..kk {
                if !active[s] {
                    continue;
                }
                let c = &mut ctl[s];
                c.total_inner += 1;
                c.inner_in_outer += 1;
                c.primres = prim[s];
                let inner_converged = prim[s] <= params.eps_inner && dual[s] <= params.eps_inner;
                if inner_converged || c.inner_in_outer >= params.max_inner {
                    boundary[s] = true;
                }
            }
            if !boundary.iter().any(|&b| b) {
                continue;
            }

            // Outer-level update and termination for scenarios at a boundary.
            let z_inf = self
                .device
                .reduce_max_segments("z_norm", &st.z, m, &boundary, |_, zk| zk.abs());
            let mut lambda_mask = vec![false; kk];
            for s in 0..kk {
                if !boundary[s] {
                    continue;
                }
                let c = &mut ctl[s];
                c.z_inf = z_inf[s];
                c.inner_in_outer = 0;
                c.outer_done += 1;
                if c.z_inf <= params.eps_outer {
                    c.status = AdmmStatus::Converged;
                    active[s] = false;
                } else {
                    lambda_mask[s] = true;
                }
            }
            if lambda_mask.iter().any(|&b| b) {
                let betas: Vec<f64> = ctl.iter().map(|c| c.beta).collect();
                let bound = params.lambda_bound;
                let z = st.z.as_slice();
                self.device
                    .launch_map_segments("lambda_update", &mut st.lam, m, &lambda_mask, {
                        move |k, lk| kernels::lambda_element(z[k], betas[k / m], bound, lk)
                    });
                for s in 0..kk {
                    if !lambda_mask[s] {
                        continue;
                    }
                    let c = &mut ctl[s];
                    if c.z_inf > params.z_decrease_factor * c.z_inf_prev {
                        c.beta *= params.beta_factor;
                    }
                    c.z_inf_prev = c.z_inf;
                    if c.outer_done >= params.max_outer {
                        active[s] = false;
                    }
                }
            }
        }

        // ---- extraction ----
        let gens = st.gens.to_host();
        let branches = st.branches.to_host();
        let buses = st.buses.to_host();
        let y = st.y.to_host();
        let lam = st.lam.to_host();
        let z = st.z.to_host();
        let results = nets
            .iter()
            .enumerate()
            .map(|(s, net)| {
                let (solution, warm_state) = kernels::extract_segment(
                    &gens[s * ngen..(s + 1) * ngen],
                    &branches[s * nbranch..(s + 1) * nbranch],
                    &buses[s * nbus..(s + 1) * nbus],
                    &y[s * m..(s + 1) * m],
                    &lam[s * m..(s + 1) * m],
                    &z[s * m..(s + 1) * m],
                );
                let quality = SolutionQuality::evaluate(net, &solution);
                let c = &ctl[s];
                ScenarioResult {
                    name: net.name.clone(),
                    objective: solution.objective(net),
                    quality,
                    solution,
                    status: c.status,
                    inner_iterations: c.total_inner,
                    outer_iterations: c.outer_done,
                    z_inf: c.z_inf,
                    primal_residual: c.primres,
                    warm_state,
                }
            })
            .collect();
        ScenarioBatchResult {
            results,
            solve_time: start_time.elapsed(),
            ticks,
        }
    }

    /// One batched inner iteration over every active scenario: the eight
    /// kernel launches of Algorithm 1's lines 3–6, each spanning `K × n`
    /// elements.
    #[allow(clippy::too_many_arguments)]
    fn tick(
        &self,
        st: &mut BatchState,
        data: &ProblemData,
        vplan: &[(usize, BusSlot)],
        tron: &TronSolver,
        alm: &AlmSettings,
        active: &[bool],
        ctl: &[ScenCtl],
        ngen: usize,
        nbranch: usize,
        nbus: usize,
        m: usize,
    ) {
        // x block: generators and branches.
        {
            let gens_data = &data.gens;
            let v = st.v.as_slice();
            let z = st.z.as_slice();
            let y = st.y.as_slice();
            let rho = st.rho.as_slice();
            self.device
                .launch_map_segments("generator_update", &mut st.gens, ngen, active, {
                    move |g, state| kernels::generator_element(&gens_data[g], v, z, y, rho, state)
                });
            let branches_data = &data.branches;
            self.device
                .launch_blocks_segments("branch_tron", &mut st.branches, nbranch, active, {
                    move |l, state| {
                        kernels::branch_element(&branches_data[l], v, z, y, rho, tron, alm, state)
                    }
                });
        }
        {
            let gens = st.gens.as_slice();
            let branches = st.branches.as_slice();
            self.device
                .launch_map_segments("u_scatter", &mut st.u, m, active, move |k, uk| {
                    let s = k / m;
                    *uk = kernels::u_element(
                        k % m,
                        ngen,
                        &gens[s * ngen..(s + 1) * ngen],
                        &branches[s * nbranch..(s + 1) * nbranch],
                    );
                });
        }
        // x̄ block: buses.
        {
            let buses_data = &data.buses;
            let u = st.u.as_slice();
            let z = st.z.as_slice();
            let y = st.y.as_slice();
            let rho = st.rho.as_slice();
            self.device
                .launch_map_segments("bus_update", &mut st.buses, nbus, active, {
                    move |b, state| kernels::bus_element(&buses_data[b], u, z, y, rho, state)
                });
        }
        {
            let buses = st.buses.as_slice();
            self.device
                .launch_map_segments("v_scatter", &mut st.v, m, active, move |k, vk| {
                    let (bus, slot) = vplan[k];
                    *vk = kernels::v_element(&buses[bus], slot);
                });
        }
        // z and multiplier updates.
        {
            // Device-side copy of the active segments (free, like the single
            // driver's z_prev copy).
            let z = st.z.as_slice();
            let zp = st.z_prev.as_mut_slice();
            for (s, &a) in active.iter().enumerate() {
                if a {
                    zp[s * m..(s + 1) * m].copy_from_slice(&z[s * m..(s + 1) * m]);
                }
            }
        }
        {
            let betas: Vec<f64> = ctl.iter().map(|c| c.beta).collect();
            let u = st.u.as_slice();
            let v = st.v.as_slice();
            let y = st.y.as_slice();
            let lam = st.lam.as_slice();
            let rho = st.rho.as_slice();
            self.device
                .launch_map_segments("z_update", &mut st.z, m, active, move |k, zk| {
                    *zk = kernels::z_element(k, u, v, y, lam, rho, betas[k / m]);
                });
        }
        {
            let u = st.u.as_slice();
            let v = st.v.as_slice();
            let z = st.z.as_slice();
            let rho = st.rho.as_slice();
            self.device
                .launch_map_segments("y_update", &mut st.y, m, active, move |k, yk| {
                    kernels::y_element(k, u, v, z, rho, yk);
                });
        }
    }
}

/// Scenario-major device state of a batched solve.
struct BatchState {
    gens: DeviceBuffer<GenState>,
    branches: DeviceBuffer<BranchState>,
    buses: DeviceBuffer<BusState>,
    u: DeviceBuffer<f64>,
    v: DeviceBuffer<f64>,
    z: DeviceBuffer<f64>,
    z_prev: DeviceBuffer<f64>,
    y: DeviceBuffer<f64>,
    lam: DeviceBuffer<f64>,
    rho: DeviceBuffer<f64>,
}

/// Validate that every scenario network shares the first one's dimensions
/// and topology; returns `(nbus, ngen, nbranch)`.
fn check_compatible(nets: &[Network]) -> (usize, usize, usize) {
    assert!(!nets.is_empty(), "need at least one scenario");
    let first = &nets[0];
    for (s, net) in nets.iter().enumerate().skip(1) {
        assert!(
            net.nbus == first.nbus && net.ngen == first.ngen && net.nbranch == first.nbranch,
            "scenario {s} dimensions ({}, {}, {}) differ from scenario 0 ({}, {}, {})",
            net.nbus,
            net.ngen,
            net.nbranch,
            first.nbus,
            first.ngen,
            first.nbranch
        );
        assert!(
            net.gen_bus == first.gen_bus
                && net.br_from == first.br_from
                && net.br_to == first.br_to,
            "scenario {s} topology differs from scenario 0; scenarios must share \
             the base network's buses, generators and branch endpoints"
        );
    }
    (first.nbus, first.ngen, first.nbranch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::AdmmSolver;
    use gridsim_grid::cases;

    fn nets_for(case: &gridsim_grid::Case, mults: &[f64]) -> Vec<Network> {
        mults
            .iter()
            .map(|&f| case.scale_load(f).compile().unwrap())
            .collect()
    }

    #[test]
    fn k1_batch_reproduces_single_solver_bitwise() {
        let net = cases::case9().compile().unwrap();
        // Bitwise identity holds at every iterate, so a bounded budget keeps
        // this unit test cheap; the converged-profile K=1 identity is covered
        // by the property suite.
        let params = AdmmParams {
            max_outer: 3,
            max_inner: 60,
            ..AdmmParams::default()
        };
        let single = AdmmSolver::new(params.clone()).solve(&net);
        let batch = ScenarioBatch::new(params).solve(std::slice::from_ref(&net));
        assert_eq!(batch.results.len(), 1);
        let r = &batch.results[0];
        assert_eq!(r.inner_iterations, single.inner_iterations);
        assert_eq!(r.outer_iterations, single.outer_iterations);
        assert_eq!(r.status, single.status);
        assert_eq!(r.solution.pg, single.solution.pg);
        assert_eq!(r.solution.qg, single.solution.qg);
        assert_eq!(r.solution.vm, single.solution.vm);
        assert_eq!(r.solution.va, single.solution.va);
        assert_eq!(r.z_inf.to_bits(), single.z_inf.to_bits());
        assert_eq!(r.warm_state, single.warm_state);
    }

    #[test]
    fn batch_matches_per_scenario_sequential_solves() {
        let base = cases::case9();
        let nets = nets_for(&base, &[0.98, 1.0, 1.03]);
        let params = AdmmParams::test_profile();
        let batch = ScenarioBatch::new(params.clone()).solve(&nets);
        let solver = AdmmSolver::new(params);
        for (r, net) in batch.results.iter().zip(&nets) {
            let single = solver.solve(net);
            assert_eq!(r.inner_iterations, single.inner_iterations);
            assert_eq!(r.solution.pg, single.solution.pg);
            assert_eq!(r.solution.vm, single.solution.vm);
        }
        // Ticks equal the slowest scenario, not the sum.
        let max_inner = batch
            .results
            .iter()
            .map(|r| r.inner_iterations)
            .max()
            .unwrap();
        assert_eq!(batch.ticks, max_inner);
        assert!(batch.total_inner_iterations() > batch.ticks);
    }

    #[test]
    fn converged_scenarios_stop_consuming_kernel_work() {
        let base = cases::case9();
        // A spread of loads so convergence times differ across scenarios.
        let nets = nets_for(&base, &[1.0, 1.05, 0.95]);
        let batcher = ScenarioBatch::new(AdmmParams::test_profile());
        let before = batcher.device.stats().snapshot();
        let result = batcher.solve(&nets);
        let delta = batcher.device.stats().snapshot().since(&before);
        // Masked launches record only the active elements: the branch-TRON
        // block count equals the sum of per-scenario inner iterations times
        // branches, strictly less than ticks × K × nbranch.
        let nbranch = nets[0].nbranch as u64;
        let expected: u64 = result
            .results
            .iter()
            .map(|r| r.inner_iterations as u64 * nbranch)
            .sum();
        assert_eq!(delta.kernels["branch_tron"].blocks, expected);
        assert!(
            expected < result.ticks as u64 * nets.len() as u64 * nbranch,
            "masking saved no work"
        );
        // One launch per tick, regardless of K.
        assert_eq!(delta.kernels["z_update"].launches, result.ticks as u64);
    }

    #[test]
    fn no_transfers_during_batched_iterations() {
        let nets = nets_for(&cases::case9(), &[1.0, 1.02]);
        let params = AdmmParams {
            max_outer: 2,
            max_inner: 30,
            ..AdmmParams::default()
        };
        let batcher = ScenarioBatch::new(params);
        let before = batcher.device.stats().snapshot();
        let _ = batcher.solve(&nets);
        let delta = batcher.device.stats().snapshot().since(&before);
        assert!(
            delta.host_to_device_transfers <= 12,
            "h2d {}",
            delta.host_to_device_transfers
        );
        assert!(
            delta.device_to_host_transfers <= 8,
            "d2h {}",
            delta.device_to_host_transfers
        );
    }

    #[test]
    fn shared_warm_start_cuts_iterations() {
        let base = cases::case9();
        let nominal = base.compile().unwrap();
        let cold = AdmmSolver::new(AdmmParams::test_profile()).solve(&nominal);
        let nets = nets_for(&base, &[1.005, 1.01, 1.015]);
        let batcher = ScenarioBatch::new(AdmmParams::test_profile());
        let warm = batcher.solve_warm(&nets, &cold.warm_state, None);
        let coldb = batcher.solve(&nets);
        for (w, c) in warm.results.iter().zip(&coldb.results) {
            assert!(w.quality.max_violation() < 2e-2);
            assert!(
                w.inner_iterations <= c.inner_iterations,
                "warm {} vs cold {}",
                w.inner_iterations,
                c.inner_iterations
            );
        }
        assert!(warm.ticks < coldb.ticks);
    }

    #[test]
    fn chained_solve_respects_ramp_limits() {
        let base = cases::case9();
        let nominal = base.compile().unwrap();
        let cold = AdmmSolver::new(AdmmParams::test_profile()).solve(&nominal);
        let nets = nets_for(&base, &[1.005, 1.01]);
        let ramp = 0.02;
        let chained = ScenarioBatch::new(AdmmParams::test_profile()).solve_chained(
            &nets,
            &cold.warm_state,
            ramp,
        );
        assert_eq!(chained.results.len(), 2);
        let mut prev_pg = cold.warm_state.previous_pg().to_vec();
        for (r, net) in chained.results.iter().zip(&nets) {
            let (lo, hi) = ramp_limited_bounds(net, &prev_pg, ramp);
            for g in 0..net.ngen {
                assert!(r.solution.pg[g] >= lo[g] - 1e-9);
                assert!(r.solution.pg[g] <= hi[g] + 1e-9);
            }
            prev_pg = r.solution.pg.clone();
        }
    }

    #[test]
    #[should_panic(expected = "topology differs")]
    fn mismatched_topology_panics() {
        let a = cases::case9().compile().unwrap();
        let mut case_b = cases::case9();
        case_b.branches.swap(0, 3);
        let b = case_b.compile().unwrap();
        let _ = ScenarioBatch::new(AdmmParams::default()).solve(&[a, b]);
    }
}
