//! ADMM algorithm parameters.

use gridsim_grid::synthetic::TableICase;
use gridsim_tron::TronOptions;

/// Parameters of the two-level ADMM algorithm. The penalty values `rho_pq`
/// and `rho_va` correspond to the columns of the paper's Table I.
#[derive(Debug, Clone)]
pub struct AdmmParams {
    /// Penalty on power-type consensus constraints (generator p/q and branch
    /// flow p/q).
    pub rho_pq: f64,
    /// Penalty on voltage-type consensus constraints (squared magnitude and
    /// angle).
    pub rho_va: f64,
    /// Initial outer-level penalty β on `z = 0`.
    pub beta_init: f64,
    /// Multiplicative increase of β when `‖z‖∞` does not decrease enough.
    pub beta_factor: f64,
    /// Required decrease factor of `‖z‖∞` between outer iterations before β
    /// is increased.
    pub z_decrease_factor: f64,
    /// Bounds for the projection of the outer multiplier λ.
    pub lambda_bound: f64,
    /// Outer convergence tolerance on `‖z‖∞`.
    pub eps_outer: f64,
    /// Inner convergence tolerance on the primal and dual residuals.
    pub eps_inner: f64,
    /// Maximum number of outer iterations (paper: 20).
    pub max_outer: usize,
    /// Maximum number of inner iterations per outer iteration (paper: 1000).
    pub max_inner: usize,
    /// Line-limit tightening margin used when building branch subproblems
    /// (Section IV-A uses 99 % of capacity).
    pub line_limit_margin: f64,
    /// Maximum augmented-Lagrangian iterations inside one branch subproblem.
    pub max_alm_iter: usize,
    /// Tolerance on the line-limit slack equality inside a branch subproblem.
    pub alm_tol: f64,
    /// Initial penalty of the branch augmented-Lagrangian terms.
    pub alm_rho_init: f64,
    /// Maximum penalty of the branch augmented-Lagrangian terms.
    pub alm_rho_max: f64,
    /// Internal scaling of the generation-cost objective relative to the
    /// ADMM penalty terms. Scaling the whole objective by a positive constant
    /// does not change the minimizer, but it controls how strongly the cost
    /// competes with the consensus penalties during the iterations (the paper
    /// scales the 70k case's objective by 2 for the same reason). `None`
    /// selects an automatic scale so the largest marginal cost is comparable
    /// to `rho_pq`.
    pub obj_scale: Option<f64>,
    /// TRON options used by the batch branch solver.
    pub tron: TronOptions,
}

impl Default for AdmmParams {
    fn default() -> Self {
        AdmmParams {
            rho_pq: 10.0,
            rho_va: 1000.0,
            beta_init: 1e3,
            beta_factor: 6.0,
            z_decrease_factor: 0.25,
            lambda_bound: 1e12,
            eps_outer: 1e-5,
            eps_inner: 2e-6,
            max_outer: 20,
            max_inner: 1000,
            line_limit_margin: 0.99,
            max_alm_iter: 4,
            alm_tol: 1e-6,
            alm_rho_init: 10.0,
            alm_rho_max: 1e7,
            obj_scale: None,
            tron: TronOptions {
                max_iter: 60,
                gtol: 1e-7,
                ..Default::default()
            },
        }
    }
}

impl AdmmParams {
    /// Parameters with the penalty values the paper's Table I assigns to a
    /// given evaluation case.
    pub fn for_table1_case(case: TableICase) -> AdmmParams {
        let (rho_pq, rho_va) = case.penalties();
        AdmmParams {
            rho_pq,
            rho_va,
            ..Default::default()
        }
    }

    /// Per-case parameter defaults for a Table-I case at a given size:
    /// the paper's Table-I penalties (which are themselves per-case choices)
    /// for the full-size cases, with retuned penalty/β settings for the
    /// proportionally *scaled stand-ins* the laptop-scale harness solves.
    /// The scaled synthetic cases are denser per bus than the real
    /// interconnects they mimic; a firmer power-consensus penalty with a
    /// steeper outer-β ramp measurably improves both the converged
    /// violation (~1.06 → ~0.87 max violation) and the iteration count
    /// (~15k → ~11.5k inner) on `Pegase1354.scaled(100)`, the ROADMAP's
    /// tracked quality case — see
    /// `tests/scenario_batch.rs::pegase1354_scaled100_violation_does_not_regress`
    /// for the pinned bound.
    pub fn for_case(case: TableICase, nbus: usize) -> AdmmParams {
        let (_, _, full_size) = case.dimensions();
        let mut p = Self::for_table1_case(case);
        if nbus < full_size / 2 {
            // Scaled stand-in: denser topology, smaller loads per bus.
            p.rho_pq = 18.0;
            p.beta_factor = 7.0;
        }
        p
    }

    /// A fast convergence profile for tests and smoke runs: the same
    /// algorithm with looser tolerances and tighter iteration caps, chosen
    /// so the embedded reference cases still reach the quality thresholds
    /// the integration suite asserts (violation < 1e-2, gap < 1 %) at a
    /// fraction of the default profile's wall-clock. Full-tolerance runs
    /// stay on [`AdmmParams::default`]; the expensive integration cases are
    /// gated behind the `GRIDADMM_FULL_TESTS` env flag.
    pub fn test_profile() -> AdmmParams {
        AdmmParams {
            eps_outer: 1e-4,
            eps_inner: 2e-5,
            max_outer: 12,
            max_inner: 400,
            tron: TronOptions {
                max_iter: 50,
                gtol: 1e-7,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// The contingency-screening profile: a deliberately *cheap, inexact*
    /// pass — two outer rounds at loose tolerances — whose job is not to
    /// solve scenarios but to *rank* them by constraint stress so a funnel
    /// can decide which ones deserve a full-tolerance solve. The operating
    /// point it reaches is accurate enough that line/voltage/bound
    /// violations separate benign contingencies from stressed ones, at a
    /// small fraction of the full profile's iterations; its warm state also
    /// seeds the graduated scenarios' full solves through the solution
    /// store. Used by `gridsim-screen`'s `ContingencyFunnel`.
    pub fn screening_profile() -> AdmmParams {
        AdmmParams {
            eps_outer: 5e-3,
            eps_inner: 1e-4,
            max_outer: 2,
            max_inner: 150,
            tron: TronOptions {
                max_iter: 30,
                gtol: 1e-6,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Scale both penalties by a common factor (used by the penalty-sweep
    /// ablation).
    pub fn scaled_penalties(&self, factor: f64) -> AdmmParams {
        AdmmParams {
            rho_pq: self.rho_pq * factor,
            rho_va: self.rho_va * factor,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_small_pegase_settings() {
        let p = AdmmParams::default();
        assert_eq!(p.rho_pq, 10.0);
        assert_eq!(p.rho_va, 1000.0);
        assert_eq!(p.max_outer, 20);
        assert_eq!(p.max_inner, 1000);
        assert!((p.line_limit_margin - 0.99).abs() < 1e-12);
    }

    #[test]
    fn table1_penalties_are_respected() {
        let p = AdmmParams::for_table1_case(TableICase::Activsg70k);
        assert_eq!(p.rho_pq, 3e4);
        assert_eq!(p.rho_va, 3e5);
    }

    #[test]
    fn per_case_defaults_retune_scaled_stand_ins_only() {
        // Full-size case: exactly the Table-I penalties, default β schedule.
        let full = AdmmParams::for_case(TableICase::Pegase1354, 1354);
        assert_eq!(full.rho_pq, 1e1);
        assert_eq!(full.rho_va, 1e3);
        assert_eq!(full.beta_factor, 6.0);
        // Scaled stand-in: the retuned penalty/β choices.
        let scaled = AdmmParams::for_case(TableICase::Pegase1354, 100);
        assert_eq!(scaled.rho_pq, 18.0);
        assert_eq!(scaled.rho_va, 1e3);
        assert_eq!(scaled.beta_factor, 7.0);
    }

    #[test]
    fn screening_profile_is_strictly_cheaper_than_test_profile() {
        let s = AdmmParams::screening_profile();
        let t = AdmmParams::test_profile();
        assert!(s.max_outer < t.max_outer);
        assert!(s.max_inner < t.max_inner);
        assert!(s.eps_outer > t.eps_outer);
        assert!(s.eps_inner > t.eps_inner);
        assert!(s.tron.max_iter < t.tron.max_iter);
    }

    #[test]
    fn penalty_scaling() {
        let p = AdmmParams::default().scaled_penalties(10.0);
        assert_eq!(p.rho_pq, 100.0);
        assert_eq!(p.rho_va, 10000.0);
    }
}
