//! Crate-level integration tests: the ADMM solver against the interior-point
//! baseline (dev-dependency) on the embedded cases, exercising the exact
//! metric definitions used by Table II.

use gridsim_acopf::violations::{relative_gap, SolutionQuality};
use gridsim_admm::{AdmmParams, AdmmSolver};
use gridsim_grid::cases;
use gridsim_ipm::{AcopfNlp, IpmOptions, IpmSolver};

#[test]
fn table2_metrics_on_case9() {
    let net = cases::case9().compile().unwrap();

    let admm = AdmmSolver::new(AdmmParams::default()).solve(&net);
    let nlp = AcopfNlp::new(&net);
    let ipm = IpmSolver::new(IpmOptions::default()).solve(&nlp);
    assert!(ipm.is_optimal());

    // The metrics of Table II: ||c(x)||_inf and |f - f*|/f*.
    let violation = admm.quality.max_violation();
    let gap = relative_gap(admm.objective, ipm.objective);
    assert!(violation < 1e-2, "violation {violation:.3e}");
    assert!(gap < 5e-3, "gap {:.4}%", 100.0 * gap);

    // The quality struct must agree with a fresh evaluation of the solution.
    let re_eval = SolutionQuality::evaluate(&net, &admm.solution);
    assert!((re_eval.max_violation() - violation).abs() < 1e-12);

    // Iteration count lands in the order of magnitude the paper reports for
    // small cases (hundreds to a few thousand inner iterations).
    assert!(admm.inner_iterations >= 100 && admm.inner_iterations <= 20_000);
}

#[test]
fn penalty_scaling_changes_convergence_but_not_the_answer() {
    // Ablation B in miniature: the penalty magnitude changes how the
    // iterations are spent (the direction is case-dependent — Section V of
    // the paper calls penalty selection an open tuning problem), but both
    // settings must land on the same economic dispatch to within the
    // consensus tolerance.
    let net = cases::case9().compile().unwrap();
    let nlp = AcopfNlp::new(&net);
    let f_star = IpmSolver::new(IpmOptions::default()).solve(&nlp).objective;

    let small = AdmmSolver::new(AdmmParams::default().scaled_penalties(0.5)).solve(&net);
    let large = AdmmSolver::new(AdmmParams::default().scaled_penalties(10.0)).solve(&net);

    assert_ne!(
        small.inner_iterations, large.inner_iterations,
        "different penalties should change the iteration count"
    );
    // Both remain reasonable solutions close to the baseline optimum.
    assert!(
        relative_gap(small.objective, f_star) < 0.05,
        "small-penalty gap"
    );
    assert!(
        relative_gap(large.objective, f_star) < 0.05,
        "large-penalty gap"
    );
    assert!(small.quality.max_violation() < 5e-2);
    assert!(large.quality.max_violation() < 5e-2);
}

#[test]
fn objective_scale_override_changes_dynamics_not_solution() {
    // Scaling the whole objective is a reformulation, not a different
    // problem: an explicit scale close to the automatic one must land on the
    // same dispatch to within the consensus tolerance.
    let net = cases::case9().compile().unwrap();
    let auto = AdmmSolver::new(AdmmParams::default()).solve(&net);
    let explicit = AdmmSolver::new(AdmmParams {
        obj_scale: Some(0.02),
        ..AdmmParams::default()
    })
    .solve(&net);
    for (a, b) in auto.solution.pg.iter().zip(&explicit.solution.pg) {
        assert!((a - b).abs() < 5e-2, "{a} vs {b}");
    }
    assert!(relative_gap(auto.objective, explicit.objective) < 0.01);
}
