//! The TRON trust-region Newton driver for bound-constrained problems.
//!
//! One iteration follows Lin & Moré (1999):
//!
//! 1. evaluate the gradient and Hessian, check the projected-gradient
//!    optimality measure;
//! 2. compute the Cauchy point along the projected-gradient path;
//! 3. refine within the subspace of free variables using Steihaug–Toint
//!    conjugate gradients (with negative-curvature handling), projecting the
//!    trial point back onto the bounds;
//! 4. accept or reject the step based on the ratio of actual to predicted
//!    reduction, and update the trust-region radius.

use crate::cauchy::{cauchy_point, model_value};
use crate::cg::steihaug_cg;
use crate::problem::BoundProblem;
use gridsim_sparse::dense::SmallMatrix;

/// Options for the TRON solver.
#[derive(Debug, Clone)]
pub struct TronOptions {
    /// Maximum number of outer (trust-region) iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the projected gradient infinity norm.
    pub gtol: f64,
    /// Initial trust-region radius (`None` uses the initial gradient norm).
    pub initial_delta: Option<f64>,
    /// Maximum number of CG iterations per subspace solve.
    pub max_cg_iter: usize,
    /// Step acceptance threshold on the reduction ratio.
    pub eta: f64,
}

impl Default for TronOptions {
    fn default() -> Self {
        TronOptions {
            max_iter: 200,
            gtol: 1e-8,
            initial_delta: None,
            max_cg_iter: 50,
            eta: 1e-4,
        }
    }
}

/// Termination status of a TRON solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TronStatus {
    /// Projected gradient norm below tolerance.
    Converged,
    /// Iteration limit reached.
    MaxIter,
    /// Trust region collapsed (no further progress possible).
    SmallStep,
}

/// Result of a TRON solve.
#[derive(Debug, Clone)]
pub struct TronResult {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Objective value at the final iterate.
    pub objective: f64,
    /// Final projected-gradient infinity norm.
    pub pg_norm: f64,
    /// Number of outer iterations performed.
    pub iterations: usize,
    /// Termination status.
    pub status: TronStatus,
}

/// The TRON solver. Holds reusable workspace so repeated solves (tens of
/// thousands per ADMM iteration) do not allocate.
#[derive(Debug, Clone)]
pub struct TronSolver {
    opts: TronOptions,
}

impl Default for TronSolver {
    fn default() -> Self {
        TronSolver::new(TronOptions::default())
    }
}

impl TronSolver {
    /// Create a solver with the given options.
    pub fn new(opts: TronOptions) -> Self {
        TronSolver { opts }
    }

    /// Solver options.
    pub fn options(&self) -> &TronOptions {
        &self.opts
    }

    /// Minimize `problem` starting from `x0` (projected onto the bounds).
    pub fn solve<P: BoundProblem>(&self, problem: &P, x0: &[f64]) -> TronResult {
        let n = problem.dim();
        assert_eq!(x0.len(), n);
        let mut x = x0.to_vec();
        problem.project(&mut x);

        let mut g = vec![0.0; n];
        let mut h = SmallMatrix::zeros(n);
        let mut scratch = vec![0.0; n];
        let mut f = problem.objective(&x);
        problem.gradient(&x, &mut g);
        problem.hessian(&x, &mut h);

        let gnorm0 = g.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut delta = self.opts.initial_delta.unwrap_or_else(|| gnorm0.max(1.0));
        let mut pg_norm = problem.projected_gradient_norm(&x, &g);

        for iter in 0..self.opts.max_iter {
            if pg_norm <= self.opts.gtol {
                return TronResult {
                    x,
                    objective: f,
                    pg_norm,
                    iterations: iter,
                    status: TronStatus::Converged,
                };
            }
            if delta < 1e-14 {
                return TronResult {
                    x,
                    objective: f,
                    pg_norm,
                    iterations: iter,
                    status: TronStatus::SmallStep,
                };
            }

            // --- Cauchy point ---
            let cp = cauchy_point(problem, &x, &g, &h, delta);
            let mut step = cp.step.clone();

            // --- subspace refinement over free variables at x + step ---
            // model gradient at the Cauchy point: g + H s
            h.mul_vec(&step, &mut scratch);
            let mut rhs = vec![0.0; n];
            let mut free = vec![false; n];
            for i in 0..n {
                let xi = x[i] + step[i];
                free[i] = xi > problem.lower(i) + 1e-12 && xi < problem.upper(i) - 1e-12;
                rhs[i] = -(g[i] + scratch[i]);
            }
            let remaining = (delta * delta - step.iter().map(|s| s * s).sum::<f64>())
                .max(0.0)
                .sqrt();
            if remaining > 1e-14 && free.iter().any(|&fr| fr) {
                let cg = steihaug_cg(&h, &rhs, &free, remaining, 1e-8, self.opts.max_cg_iter);
                // Projected line search on the refinement direction: scale the
                // CG step back until x + step stays feasible and the model
                // does not increase relative to the Cauchy point.
                let mut alpha = 1.0f64;
                let base_model = cp.model_value;
                for _ in 0..20 {
                    let mut trial = step.clone();
                    for (ti, si) in trial.iter_mut().zip(&cg.step) {
                        *ti += alpha * si;
                    }
                    // Project the trial step onto the box.
                    for (i, ti) in trial.iter_mut().enumerate() {
                        let xi = (x[i] + *ti).clamp(problem.lower(i), problem.upper(i));
                        *ti = xi - x[i];
                    }
                    let q = model_value(&g, &h, &trial, &mut scratch);
                    if q <= base_model + 1e-16 {
                        step = trial;
                        break;
                    }
                    alpha *= 0.5;
                }
            }

            // --- acceptance test ---
            let pred = -model_value(&g, &h, &step, &mut scratch);
            let mut x_trial = x.clone();
            for i in 0..n {
                x_trial[i] += step[i];
            }
            problem.project(&mut x_trial);
            let f_trial = problem.objective(&x_trial);
            let ared = f - f_trial;
            let step_norm = step.iter().map(|s| s * s).sum::<f64>().sqrt();
            let rho = if pred > 0.0 {
                ared / pred
            } else {
                ared.signum()
            };

            if rho > self.opts.eta && ared > -1e-12 {
                x = x_trial;
                f = f_trial;
                problem.gradient(&x, &mut g);
                problem.hessian(&x, &mut h);
                pg_norm = problem.projected_gradient_norm(&x, &g);
            }

            // Trust-region radius update.
            if rho < 0.25 {
                delta = 0.25 * step_norm.max(delta * 0.25);
            } else if rho > 0.75 && step_norm > 0.9 * delta {
                delta = (2.0 * delta).min(1e6);
            }
        }

        TronResult {
            x,
            objective: f,
            pg_norm,
            iterations: self.opts.max_iter,
            status: if pg_norm <= self.opts.gtol {
                TronStatus::Converged
            } else {
                TronStatus::MaxIter
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::QuadraticBox;
    use gridsim_sparse::dense::SmallMatrix;

    fn solve_quadratic(qp: &QuadraticBox, x0: &[f64]) -> TronResult {
        TronSolver::new(TronOptions {
            gtol: 1e-10,
            ..Default::default()
        })
        .solve(qp, x0)
    }

    #[test]
    fn unconstrained_quadratic_reaches_exact_minimum() {
        let qp = QuadraticBox::diagonal(
            &[2.0, 4.0, 8.0],
            &[2.0, -4.0, 8.0],
            &[-100.0; 3],
            &[100.0; 3],
        );
        let res = solve_quadratic(&qp, &[0.0; 3]);
        assert_eq!(res.status, TronStatus::Converged);
        let expect = qp.diagonal_solution();
        for (a, b) in res.x.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn bound_constrained_quadratic_hits_active_set() {
        // Minimizer of 0.5*2x^2 - 10x is x = 5, clipped to 1.
        let qp = QuadraticBox::diagonal(&[2.0, 2.0], &[10.0, -10.0], &[-1.0; 2], &[1.0; 2]);
        let res = solve_quadratic(&qp, &[0.0, 0.0]);
        assert_eq!(res.status, TronStatus::Converged);
        assert!((res.x[0] - 1.0).abs() < 1e-8);
        assert!((res.x[1] + 1.0).abs() < 1e-8);
    }

    #[test]
    fn coupled_quadratic_matches_cholesky_solution() {
        // Non-diagonal SPD Q; interior solution, compare with direct solve.
        let mut q = SmallMatrix::zeros(3);
        let data = [[5.0, 1.0, 0.5], [1.0, 4.0, 1.0], [0.5, 1.0, 3.0]];
        for i in 0..3 {
            for j in 0..3 {
                q[(i, j)] = data[i][j];
            }
        }
        let c = vec![1.0, 2.0, 3.0];
        let qp = QuadraticBox {
            q: q.clone(),
            c: c.clone(),
            l: vec![-10.0; 3],
            u: vec![10.0; 3],
        };
        let res = solve_quadratic(&qp, &[0.0; 3]);
        let mut chol = q.clone();
        assert!(chol.cholesky_in_place());
        let exact = chol.cholesky_solve(&c);
        for (a, b) in res.x.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    /// 2D Rosenbrock restricted to a box, a standard nonconvex test problem.
    struct RosenbrockBox;

    impl BoundProblem for RosenbrockBox {
        fn dim(&self) -> usize {
            2
        }
        fn lower(&self, _i: usize) -> f64 {
            -2.0
        }
        fn upper(&self, _i: usize) -> f64 {
            2.0
        }
        fn objective(&self, x: &[f64]) -> f64 {
            let (a, b) = (x[0], x[1]);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        }
        fn gradient(&self, x: &[f64], g: &mut [f64]) {
            let (a, b) = (x[0], x[1]);
            g[0] = -2.0 * (1.0 - a) - 400.0 * a * (b - a * a);
            g[1] = 200.0 * (b - a * a);
        }
        fn hessian(&self, x: &[f64], h: &mut SmallMatrix) {
            let (a, b) = (x[0], x[1]);
            h[(0, 0)] = 2.0 - 400.0 * (b - a * a) + 800.0 * a * a;
            h[(0, 1)] = -400.0 * a;
            h[(1, 0)] = -400.0 * a;
            h[(1, 1)] = 200.0;
        }
    }

    #[test]
    fn rosenbrock_converges_to_global_minimum() {
        let solver = TronSolver::new(TronOptions {
            max_iter: 500,
            gtol: 1e-8,
            ..Default::default()
        });
        let res = solver.solve(&RosenbrockBox, &[-1.2, 1.0]);
        assert_eq!(res.status, TronStatus::Converged);
        assert!((res.x[0] - 1.0).abs() < 1e-5, "x0 = {}", res.x[0]);
        assert!((res.x[1] - 1.0).abs() < 1e-5, "x1 = {}", res.x[1]);
        assert!(res.objective < 1e-10);
    }

    #[test]
    fn rosenbrock_with_binding_bound() {
        /// Rosenbrock but the box excludes the global minimum (upper bound
        /// 0.5 on both variables), so the solution sits on the boundary.
        struct Tight;
        impl BoundProblem for Tight {
            fn dim(&self) -> usize {
                2
            }
            fn lower(&self, _i: usize) -> f64 {
                -2.0
            }
            fn upper(&self, _i: usize) -> f64 {
                0.5
            }
            fn objective(&self, x: &[f64]) -> f64 {
                RosenbrockBox.objective(x)
            }
            fn gradient(&self, x: &[f64], g: &mut [f64]) {
                RosenbrockBox.gradient(x, g)
            }
            fn hessian(&self, x: &[f64], h: &mut SmallMatrix) {
                RosenbrockBox.hessian(x, h)
            }
        }
        let solver = TronSolver::new(TronOptions {
            max_iter: 500,
            gtol: 1e-8,
            ..Default::default()
        });
        let res = solver.solve(&Tight, &[0.0, 0.0]);
        // First-order optimality for the bound-constrained problem.
        assert!(res.pg_norm < 1e-6, "pg_norm {}", res.pg_norm);
        assert!(res.x.iter().all(|&v| v <= 0.5 + 1e-12));
        // The known constrained optimum has x0 = 0.5 active.
        assert!((res.x[0] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn starting_point_outside_bounds_is_projected() {
        let qp = QuadraticBox::diagonal(&[1.0], &[0.0], &[-1.0], &[1.0]);
        let res = solve_quadratic(&qp, &[25.0]);
        assert!(res.x[0].abs() < 1e-8);
        assert_eq!(res.status, TronStatus::Converged);
    }

    #[test]
    fn already_optimal_point_terminates_immediately() {
        let qp = QuadraticBox::diagonal(&[2.0], &[2.0], &[-5.0], &[5.0]);
        let res = solve_quadratic(&qp, &[1.0]);
        assert_eq!(res.iterations, 0);
        assert_eq!(res.status, TronStatus::Converged);
    }

    #[test]
    fn indefinite_problem_still_satisfies_first_order_conditions() {
        // Saddle-shaped quadratic restricted to a box: minimum is at a corner.
        let mut qp = QuadraticBox::diagonal(&[1.0, 1.0], &[0.0, 0.0], &[-1.0; 2], &[1.0; 2]);
        qp.q[(1, 1)] = -2.0;
        let solver = TronSolver::new(TronOptions {
            max_iter: 200,
            gtol: 1e-8,
            ..Default::default()
        });
        let res = solver.solve(&qp, &[0.3, 0.1]);
        assert!(res.pg_norm < 1e-6, "pg_norm {}", res.pg_norm);
        // The x[1] variable must be at a bound (negative curvature pushes it
        // outward).
        assert!((res.x[1].abs() - 1.0).abs() < 1e-6);
    }
}
