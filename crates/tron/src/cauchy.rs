//! Cauchy point computation along the projected-gradient path.
//!
//! The Cauchy point is the first local minimizer of the quadratic model along
//! the projected steepest-descent path `P[x - t g]`, limited to the trust
//! region. TRON uses it both to guarantee global convergence and to predict
//! the active set for the subsequent conjugate-gradient subspace phase.

use crate::problem::BoundProblem;
use gridsim_sparse::dense::SmallMatrix;

/// Result of the Cauchy search.
#[derive(Debug, Clone)]
pub struct CauchyPoint {
    /// Step `s = x_c - x`.
    pub step: Vec<f64>,
    /// The step length `t` along the projected gradient path.
    pub t: f64,
    /// Model reduction `q(s)` (negative when the model decreased).
    pub model_value: f64,
}

/// Quadratic model value `q(s) = g's + 0.5 s'Hs`.
pub fn model_value(g: &[f64], h: &SmallMatrix, s: &[f64], scratch: &mut [f64]) -> f64 {
    h.mul_vec(s, scratch);
    let mut v = 0.0;
    for i in 0..s.len() {
        v += g[i] * s[i] + 0.5 * s[i] * scratch[i];
    }
    v
}

/// Compute the Cauchy point at `x` with gradient `g`, Hessian `h`, and trust
/// radius `delta` using backtracking (and one extrapolation attempt) on the
/// sufficient-decrease condition `q(s(t)) <= mu0 * g's(t)`.
pub fn cauchy_point<P: BoundProblem>(
    problem: &P,
    x: &[f64],
    g: &[f64],
    h: &SmallMatrix,
    delta: f64,
) -> CauchyPoint {
    let n = problem.dim();
    let mu0 = 1e-2;
    let gnorm = g.iter().map(|v| v * v).sum::<f64>().sqrt();
    let mut t = if gnorm > 0.0 { delta / gnorm } else { 1.0 };
    let mut scratch = vec![0.0; n];
    let mut best: Option<CauchyPoint> = None;

    // Projected step for a given t, truncated to the trust region.
    let projected_step = |t: f64| -> Vec<f64> {
        let mut s = vec![0.0; n];
        let mut norm2 = 0.0;
        for i in 0..n {
            let xi = (x[i] - t * g[i]).clamp(problem.lower(i), problem.upper(i));
            s[i] = xi - x[i];
            norm2 += s[i] * s[i];
        }
        // Scale back into the trust region if necessary.
        let norm = norm2.sqrt();
        if norm > delta && norm > 0.0 {
            let scale = delta / norm;
            for si in &mut s {
                *si *= scale;
            }
        }
        s
    };

    for _ in 0..40 {
        let s = projected_step(t);
        let gs: f64 = g.iter().zip(&s).map(|(a, b)| a * b).sum();
        let q = model_value(g, h, &s, &mut scratch);
        if q <= mu0 * gs && gs <= 0.0 {
            best = Some(CauchyPoint {
                step: s,
                t,
                model_value: q,
            });
            break;
        }
        t *= 0.5;
        if t < 1e-16 {
            break;
        }
    }
    best.unwrap_or_else(|| CauchyPoint {
        step: vec![0.0; n],
        t: 0.0,
        model_value: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::QuadraticBox;

    #[test]
    fn cauchy_step_decreases_model_for_convex_quadratic() {
        let qp = QuadraticBox::diagonal(&[1.0, 2.0, 4.0], &[1.0, 1.0, 1.0], &[-5.0; 3], &[5.0; 3]);
        let x = vec![2.0, 2.0, 2.0];
        let mut g = vec![0.0; 3];
        qp.gradient(&x, &mut g);
        let mut h = SmallMatrix::zeros(3);
        qp.hessian(&x, &mut h);
        let cp = cauchy_point(&qp, &x, &g, &h, 1.0);
        assert!(
            cp.model_value < 0.0,
            "model must decrease: {}",
            cp.model_value
        );
        // Step within trust region.
        let norm: f64 = cp.step.iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!(norm <= 1.0 + 1e-12);
    }

    #[test]
    fn cauchy_respects_bounds() {
        // Steep gradient pushes toward the lower bound at -0.1.
        let qp = QuadraticBox::diagonal(&[1.0], &[-100.0], &[-0.1], &[5.0]);
        let x = vec![0.0];
        let mut g = vec![0.0; 1];
        qp.gradient(&x, &mut g);
        let mut h = SmallMatrix::zeros(1);
        qp.hessian(&x, &mut h);
        let cp = cauchy_point(&qp, &x, &g, &h, 10.0);
        assert!(x[0] + cp.step[0] >= -0.1 - 1e-12);
        assert!(cp.model_value < 0.0);
    }

    #[test]
    fn zero_gradient_gives_zero_step() {
        let qp = QuadraticBox::diagonal(&[1.0, 1.0], &[0.0, 0.0], &[-1.0; 2], &[1.0; 2]);
        let x = vec![0.0, 0.0];
        let g = vec![0.0, 0.0];
        let mut h = SmallMatrix::zeros(2);
        qp.hessian(&x, &mut h);
        let cp = cauchy_point(&qp, &x, &g, &h, 1.0);
        assert!(cp.step.iter().all(|&s| s.abs() < 1e-12));
    }

    #[test]
    fn model_value_matches_direct_computation() {
        let g = vec![1.0, -2.0];
        let mut h = SmallMatrix::zeros(2);
        h[(0, 0)] = 2.0;
        h[(1, 1)] = 3.0;
        h[(0, 1)] = 0.5;
        h[(1, 0)] = 0.5;
        let s = vec![0.2, 0.4];
        let mut scratch = vec![0.0; 2];
        let q = model_value(&g, &h, &s, &mut scratch);
        let expect = 1.0 * 0.2 - 2.0 * 0.4
            + 0.5 * (2.0 * 0.2 * 0.2 + 3.0 * 0.4 * 0.4 + 2.0 * 0.5 * 0.2 * 0.4);
        assert!((q - expect).abs() < 1e-12);
    }

    #[test]
    fn negative_curvature_direction_still_produces_decrease() {
        // Indefinite Hessian: the projected gradient direction still gives a
        // model decrease because the sufficient-decrease condition backtracks.
        let mut qp = QuadraticBox::diagonal(&[1.0, 1.0], &[1.0, 1.0], &[-2.0; 2], &[2.0; 2]);
        qp.q[(1, 1)] = -4.0;
        let x = vec![0.5, 0.5];
        let mut g = vec![0.0; 2];
        qp.gradient(&x, &mut g);
        let mut h = SmallMatrix::zeros(2);
        qp.hessian(&x, &mut h);
        let cp = cauchy_point(&qp, &x, &g, &h, 0.5);
        assert!(cp.model_value <= 0.0);
    }
}
