//! Batch front-end: one TRON solve per simulated GPU thread block.
//!
//! ExaTron's distinguishing feature is that it solves tens of thousands of
//! independent small problems in one kernel launch, one thread block per
//! problem, entirely in device memory. This module reproduces that execution
//! structure on the [`gridsim_batch::Device`]: the batch of per-problem
//! states lives in a [`DeviceBuffer`] and a single `launch_blocks` call runs
//! TRON on every element.

use crate::problem::BoundProblem;
use crate::tron::{TronResult, TronSolver, TronStatus};
use gridsim_batch::{Device, DeviceBuffer};

/// Aggregate outcome of a batch solve.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Number of problems solved to first-order optimality.
    pub converged: usize,
    /// Number of problems that hit the iteration limit.
    pub max_iter: usize,
    /// Number of problems that stalled with a collapsed trust region.
    pub small_step: usize,
    /// Total TRON iterations across the batch.
    pub total_iterations: usize,
    /// Maximum projected-gradient norm across the batch.
    pub worst_pg_norm: f64,
}

impl BatchOutcome {
    fn from_results(results: &[TronResult]) -> BatchOutcome {
        let mut out = BatchOutcome {
            converged: 0,
            max_iter: 0,
            small_step: 0,
            total_iterations: 0,
            worst_pg_norm: 0.0,
        };
        for r in results {
            match r.status {
                TronStatus::Converged => out.converged += 1,
                TronStatus::MaxIter => out.max_iter += 1,
                TronStatus::SmallStep => out.small_step += 1,
            }
            out.total_iterations += r.iterations;
            out.worst_pg_norm = out.worst_pg_norm.max(r.pg_norm);
        }
        out
    }
}

/// Per-problem state stored in device memory: the warm-start point in, the
/// solution out.
#[derive(Debug, Clone, Default)]
pub struct BlockState {
    /// On input the starting point, on output the solution.
    pub x: Vec<f64>,
    /// Filled with the solve result.
    pub result: Option<TronResult>,
}

/// Solve a batch of problems, one per simulated thread block.
///
/// `problems` provides read-only problem data (captured by the kernel
/// closure); `states` holds the per-problem starting points and receives the
/// results. The kernel performs no host–device transfers.
pub fn solve_batch<P>(
    device: &Device,
    solver: &TronSolver,
    problems: &[P],
    states: &mut DeviceBuffer<BlockState>,
) -> BatchOutcome
where
    P: BoundProblem + Sync,
{
    assert_eq!(
        problems.len(),
        states.len(),
        "one state per problem required"
    );
    device.launch_blocks("tron_batch", states, |block_id, state| {
        let problem = &problems[block_id];
        let result = solver.solve(problem, &state.x);
        state.x = result.x.clone();
        state.result = Some(result);
    });
    let results: Vec<TronResult> = states
        .as_slice()
        .iter()
        .map(|s| s.result.clone().expect("kernel fills every result"))
        .collect();
    BatchOutcome::from_results(&results)
}

/// Convenience helper: build device states from host starting points, solve,
/// and return the solutions on the host (two transfers total, as a real batch
/// solver would do once per ADMM solve, not per iteration).
pub fn solve_batch_from_host<P>(
    device: &Device,
    solver: &TronSolver,
    problems: &[P],
    starts: &[Vec<f64>],
) -> (Vec<Vec<f64>>, BatchOutcome)
where
    P: BoundProblem + Sync,
{
    assert_eq!(problems.len(), starts.len());
    let host_states: Vec<BlockState> = starts
        .iter()
        .map(|x| BlockState {
            x: x.clone(),
            result: None,
        })
        .collect();
    let mut states = DeviceBuffer::from_host(device.stats().clone(), &host_states);
    let outcome = solve_batch(device, solver, problems, &mut states);
    let xs = states.to_host().into_iter().map(|s| s.x).collect();
    (xs, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::QuadraticBox;
    use crate::tron::TronOptions;

    fn make_batch(n: usize) -> (Vec<QuadraticBox>, Vec<Vec<f64>>) {
        let mut problems = Vec::new();
        let mut starts = Vec::new();
        for k in 0..n {
            let shift = k as f64 * 0.01 - 1.0;
            problems.push(QuadraticBox::diagonal(
                &[2.0, 3.0, 4.0],
                &[2.0 * shift, 1.0, -2.0],
                &[-1.0; 3],
                &[1.0; 3],
            ));
            starts.push(vec![0.0; 3]);
        }
        (problems, starts)
    }

    #[test]
    fn batch_solves_every_problem_to_optimality() {
        let device = Device::parallel();
        let solver = TronSolver::new(TronOptions {
            gtol: 1e-9,
            ..Default::default()
        });
        let (problems, starts) = make_batch(500);
        let (xs, outcome) = solve_batch_from_host(&device, &solver, &problems, &starts);
        assert_eq!(outcome.converged, 500);
        assert_eq!(outcome.max_iter, 0);
        for (qp, x) in problems.iter().zip(&xs) {
            let expect = qp.diagonal_solution();
            for (a, b) in x.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn all_backends_agree_on_blocked_solves() {
        let solver = TronSolver::default();
        let (problems, starts) = make_batch(64);
        let (xs_seq, _) = solve_batch_from_host(&Device::sequential(), &solver, &problems, &starts);
        for dev in [Device::parallel(), Device::vectorized()] {
            let (xs, _) = solve_batch_from_host(&dev, &solver, &problems, &starts);
            assert_eq!(xs, xs_seq, "{} diverged", dev.backend());
        }
    }

    #[test]
    fn batch_records_one_kernel_launch_and_two_transfers() {
        let device = Device::parallel();
        let solver = TronSolver::default();
        let (problems, starts) = make_batch(100);
        let before = device.stats().snapshot();
        let _ = solve_batch_from_host(&device, &solver, &problems, &starts);
        let delta = device.stats().snapshot().since(&before);
        assert_eq!(delta.kernels["tron_batch"].launches, 1);
        assert_eq!(delta.kernels["tron_batch"].blocks, 100);
        assert_eq!(delta.host_to_device_transfers, 1);
        assert_eq!(delta.device_to_host_transfers, 1);
    }

    #[test]
    fn warm_started_batch_converges_in_fewer_iterations() {
        let device = Device::sequential();
        let solver = TronSolver::default();
        let (problems, cold_starts) = make_batch(50);
        let (solutions, cold_outcome) =
            solve_batch_from_host(&device, &solver, &problems, &cold_starts);
        let (_, warm_outcome) = solve_batch_from_host(&device, &solver, &problems, &solutions);
        assert!(
            warm_outcome.total_iterations <= cold_outcome.total_iterations,
            "warm {} vs cold {}",
            warm_outcome.total_iterations,
            cold_outcome.total_iterations
        );
        assert_eq!(warm_outcome.converged, 50);
    }

    #[test]
    #[should_panic(expected = "one state per problem")]
    fn mismatched_batch_sizes_panic() {
        let device = Device::sequential();
        let solver = TronSolver::default();
        let (problems, _) = make_batch(3);
        let mut states = DeviceBuffer::from_host(
            device.stats().clone(),
            &vec![
                BlockState {
                    x: vec![0.0; 3],
                    result: None
                };
                2
            ],
        );
        let _ = solve_batch(&device, &solver, &problems, &mut states);
    }
}
