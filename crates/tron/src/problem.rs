//! Problem interface for small dense bound-constrained problems.

use gridsim_sparse::dense::SmallMatrix;

/// A small, dense, twice-differentiable problem with simple bounds:
/// `min f(x)  s.t.  l <= x <= u`.
///
/// Implementations must be cheap to evaluate — one instance is solved per
/// simulated GPU thread block, so all scratch space is provided by the caller
/// and no allocation should happen inside the evaluation callbacks.
pub trait BoundProblem {
    /// Number of variables.
    fn dim(&self) -> usize;

    /// Lower bound of variable `i`.
    fn lower(&self, i: usize) -> f64;

    /// Upper bound of variable `i`.
    fn upper(&self, i: usize) -> f64;

    /// Objective value at `x`.
    fn objective(&self, x: &[f64]) -> f64;

    /// Gradient at `x`, written into `g`.
    fn gradient(&self, x: &[f64], g: &mut [f64]);

    /// Dense Hessian at `x`, written into `h` (which has dimension
    /// [`Self::dim`]).
    fn hessian(&self, x: &[f64], h: &mut SmallMatrix);

    /// Project a point onto the bound box in place.
    fn project(&self, x: &mut [f64]) {
        for (i, xi) in x.iter_mut().enumerate() {
            *xi = xi.clamp(self.lower(i), self.upper(i));
        }
    }

    /// Infinity norm of the projected gradient
    /// `|| P[x - g] - x ||_inf`, the first-order optimality measure for bound
    /// constraints.
    fn projected_gradient_norm(&self, x: &[f64], g: &[f64]) -> f64 {
        let mut norm: f64 = 0.0;
        for i in 0..self.dim() {
            let step = (x[i] - g[i]).clamp(self.lower(i), self.upper(i)) - x[i];
            norm = norm.max(step.abs());
        }
        norm
    }
}

/// A box-constrained convex quadratic `0.5 x'Qx - c'x`, used for testing and
/// as the reference problem for the closed-form component updates.
#[derive(Debug, Clone)]
pub struct QuadraticBox {
    /// Symmetric positive (semi)definite matrix `Q`.
    pub q: SmallMatrix,
    /// Linear coefficient `c`.
    pub c: Vec<f64>,
    /// Lower bounds.
    pub l: Vec<f64>,
    /// Upper bounds.
    pub u: Vec<f64>,
}

impl QuadraticBox {
    /// A separable quadratic with diagonal `q`, linear term `c`, and bounds.
    pub fn diagonal(q: &[f64], c: &[f64], l: &[f64], u: &[f64]) -> Self {
        let n = q.len();
        let mut m = SmallMatrix::zeros(n);
        for i in 0..n {
            m[(i, i)] = q[i];
        }
        QuadraticBox {
            q: m,
            c: c.to_vec(),
            l: l.to_vec(),
            u: u.to_vec(),
        }
    }

    /// The exact minimizer for a *diagonal* quadratic:
    /// `clamp(c_i / q_i, l_i, u_i)` — formula (6) of the paper.
    pub fn diagonal_solution(&self) -> Vec<f64> {
        (0..self.c.len())
            .map(|i| (self.c[i] / self.q[(i, i)]).clamp(self.l[i], self.u[i]))
            .collect()
    }
}

impl BoundProblem for QuadraticBox {
    fn dim(&self) -> usize {
        self.c.len()
    }

    fn lower(&self, i: usize) -> f64 {
        self.l[i]
    }

    fn upper(&self, i: usize) -> f64 {
        self.u[i]
    }

    fn objective(&self, x: &[f64]) -> f64 {
        let n = self.dim();
        let mut qx = vec![0.0; n];
        self.q.mul_vec(x, &mut qx);
        0.5 * x.iter().zip(&qx).map(|(a, b)| a * b).sum::<f64>()
            - self.c.iter().zip(x).map(|(a, b)| a * b).sum::<f64>()
    }

    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        self.q.mul_vec(x, g);
        for (gi, ci) in g.iter_mut().zip(&self.c) {
            *gi -= ci;
        }
    }

    fn hessian(&self, _x: &[f64], h: &mut SmallMatrix) {
        h.data.copy_from_slice(&self.q.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_matches_finite_difference() {
        let qp =
            QuadraticBox::diagonal(&[2.0, 4.0, 1.0], &[1.0, -2.0, 0.5], &[-10.0; 3], &[10.0; 3]);
        let x = vec![0.3, -0.7, 1.2];
        let mut g = vec![0.0; 3];
        qp.gradient(&x, &mut g);
        let h = 1e-6;
        for i in 0..3 {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp[i] += h;
            xm[i] -= h;
            let fd = (qp.objective(&xp) - qp.objective(&xm)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-5, "component {i}: {} vs {fd}", g[i]);
        }
    }

    #[test]
    fn projection_clamps_into_box() {
        let qp = QuadraticBox::diagonal(&[1.0, 1.0], &[0.0, 0.0], &[-1.0, 0.0], &[1.0, 2.0]);
        let mut x = vec![5.0, -3.0];
        qp.project(&mut x);
        assert_eq!(x, vec![1.0, 0.0]);
    }

    #[test]
    fn projected_gradient_zero_at_interior_stationary_point() {
        let qp = QuadraticBox::diagonal(&[2.0, 2.0], &[2.0, -2.0], &[-10.0; 2], &[10.0; 2]);
        // Unconstrained minimizer x = Q^{-1} c = (1, -1), interior.
        let x = vec![1.0, -1.0];
        let mut g = vec![0.0; 2];
        qp.gradient(&x, &mut g);
        assert!(qp.projected_gradient_norm(&x, &g) < 1e-12);
    }

    #[test]
    fn projected_gradient_zero_at_active_bound_optimum() {
        // Minimizer pushes against upper bound: Q = I, c = (5), u = 1.
        let qp = QuadraticBox::diagonal(&[1.0], &[5.0], &[-1.0], &[1.0]);
        let x = vec![1.0];
        let mut g = vec![0.0; 1];
        qp.gradient(&x, &mut g);
        // g = x - c = -4, pointing outward; projection keeps x at the bound.
        assert!(qp.projected_gradient_norm(&x, &g) < 1e-12);
    }

    #[test]
    fn diagonal_solution_is_clamped_ratio() {
        let qp = QuadraticBox::diagonal(
            &[2.0, 2.0, 2.0],
            &[10.0, -10.0, 1.0],
            &[-1.0, -1.0, -1.0],
            &[1.0, 1.0, 1.0],
        );
        assert_eq!(qp.diagonal_solution(), vec![1.0, -1.0, 0.5]);
    }
}
