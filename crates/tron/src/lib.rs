//! # gridsim-tron
//!
//! A re-implementation of **TRON** — the trust-region Newton method for
//! bound-constrained optimization of Lin & Moré (SIAM J. Optim. 1999) — plus
//! a batch driver, standing in for the paper's GPU batch solver **ExaTron**.
//!
//! In the paper's ADMM decomposition every component subproblem except the
//! branches has a closed-form solution; each branch subproblem is a 6-variable
//! bound-constrained nonconvex problem (formulation (4)) solved by one GPU
//! thread block running TRON. This crate provides:
//!
//! * [`problem::BoundProblem`] — the dense, small problem interface
//!   (objective, gradient, Hessian, bounds),
//! * [`cauchy`] — projected-gradient Cauchy point computation,
//! * [`cg`] — Steihaug–Toint preconditioned conjugate gradients on the free
//!   subspace with negative-curvature handling,
//! * [`tron`] — the trust-region driver,
//! * [`batch`] — a batch front-end that solves one problem per simulated
//!   thread block on a [`gridsim_batch::Device`].

pub mod batch;
pub mod cauchy;
pub mod cg;
pub mod problem;
pub mod tron;

pub use batch::{solve_batch, solve_batch_from_host, BatchOutcome, BlockState};
pub use problem::{BoundProblem, QuadraticBox};
pub use tron::{TronOptions, TronResult, TronSolver, TronStatus};
