//! Steihaug–Toint preconditioned conjugate gradients on the free subspace.
//!
//! Solves the trust-region model problem restricted to the variables that are
//! strictly inside their bounds at the current iterate:
//!
//! ```text
//! min_d   r'd + 0.5 d'H d      s.t.  ||d|| <= delta,   d_i = 0 for bound (fixed) i
//! ```
//!
//! Nonconvexity is handled as in Steihaug (1983): when a conjugate direction
//! of negative curvature is detected, the step follows it to the trust-region
//! boundary. A Jacobi (diagonal absolute value) preconditioner is used, which
//! is what the ExaTron kernel uses for the tiny branch Hessians.

use gridsim_sparse::dense::SmallMatrix;

/// Outcome of the truncated CG solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgStatus {
    /// Residual tolerance reached.
    Converged,
    /// Hit the trust-region boundary.
    Boundary,
    /// Followed a negative-curvature direction to the boundary.
    NegativeCurvature,
    /// Iteration limit reached.
    MaxIter,
}

/// Result of the truncated CG solve.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// The computed step (zero on fixed variables).
    pub step: Vec<f64>,
    /// Termination status.
    pub status: CgStatus,
    /// Iterations used.
    pub iterations: usize,
}

/// Solve the trust-region subproblem on the free variables.
///
/// * `rhs` — the negative gradient of the model at the current point
///   (i.e. we solve `H d ≈ rhs` subject to the trust region),
/// * `free` — mask of free variables,
/// * `delta` — trust-region radius,
/// * `tol` — relative residual tolerance.
pub fn steihaug_cg(
    h: &SmallMatrix,
    rhs: &[f64],
    free: &[bool],
    delta: f64,
    tol: f64,
    max_iter: usize,
) -> CgResult {
    let n = rhs.len();
    let mut d = vec![0.0; n];
    // Residual r = rhs - H d = rhs initially (restricted to free variables).
    let mut r: Vec<f64> = (0..n).map(|i| if free[i] { rhs[i] } else { 0.0 }).collect();
    let r0_norm = norm(&r);
    if r0_norm == 0.0 {
        return CgResult {
            step: d,
            status: CgStatus::Converged,
            iterations: 0,
        };
    }
    // Jacobi preconditioner from |diag(H)| restricted to free variables.
    let precond: Vec<f64> = (0..n)
        .map(|i| {
            let hii = h[(i, i)].abs();
            if free[i] && hii > 1e-12 {
                1.0 / hii
            } else if free[i] {
                1.0
            } else {
                0.0
            }
        })
        .collect();

    let mut z: Vec<f64> = r.iter().zip(&precond).map(|(a, b)| a * b).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut hp = vec![0.0; n];

    for k in 0..max_iter {
        // hp = H p restricted to free variables.
        h.mul_vec(&p, &mut hp);
        for i in 0..n {
            if !free[i] {
                hp[i] = 0.0;
            }
        }
        let php = dot(&p, &hp);
        if php <= 0.0 {
            // Negative curvature: go to the trust-region boundary along p.
            let tau = boundary_step(&d, &p, delta);
            axpy(tau, &p, &mut d);
            return CgResult {
                step: d,
                status: CgStatus::NegativeCurvature,
                iterations: k + 1,
            };
        }
        let alpha = rz / php;
        // Would the step leave the trust region?
        let mut d_next = d.clone();
        axpy(alpha, &p, &mut d_next);
        if norm(&d_next) >= delta {
            let tau = boundary_step(&d, &p, delta);
            axpy(tau, &p, &mut d);
            return CgResult {
                step: d,
                status: CgStatus::Boundary,
                iterations: k + 1,
            };
        }
        d = d_next;
        axpy(-alpha, &hp, &mut r);
        if norm(&r) <= tol * r0_norm {
            return CgResult {
                step: d,
                status: CgStatus::Converged,
                iterations: k + 1,
            };
        }
        z = r.iter().zip(&precond).map(|(a, b)| a * b).collect();
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    CgResult {
        step: d,
        status: CgStatus::MaxIter,
        iterations: max_iter,
    }
}

/// Positive root `tau` of `||d + tau p|| = delta`.
fn boundary_step(d: &[f64], p: &[f64], delta: f64) -> f64 {
    let dd = dot(d, d);
    let dp = dot(d, p);
    let pp = dot(p, p);
    if pp <= 0.0 {
        return 0.0;
    }
    let disc = (dp * dp + pp * (delta * delta - dd)).max(0.0);
    (-dp + disc.sqrt()) / pp
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> SmallMatrix {
        let mut h = SmallMatrix::zeros(3);
        let a = [[4.0, 1.0, 0.0], [1.0, 3.0, 0.5], [0.0, 0.5, 2.0]];
        for i in 0..3 {
            for j in 0..3 {
                h[(i, j)] = a[i][j];
            }
        }
        h
    }

    #[test]
    fn solves_spd_system_inside_trust_region() {
        let h = spd3();
        let rhs = vec![1.0, 2.0, 3.0];
        let free = vec![true; 3];
        let res = steihaug_cg(&h, &rhs, &free, 100.0, 1e-12, 50);
        assert_eq!(res.status, CgStatus::Converged);
        // H d = rhs
        let mut hd = vec![0.0; 3];
        h.mul_vec(&res.step, &mut hd);
        for i in 0..3 {
            assert!((hd[i] - rhs[i]).abs() < 1e-8, "{} vs {}", hd[i], rhs[i]);
        }
    }

    #[test]
    fn respects_trust_region_boundary() {
        let h = spd3();
        let rhs = vec![10.0, 10.0, 10.0];
        let free = vec![true; 3];
        let delta = 0.5;
        let res = steihaug_cg(&h, &rhs, &free, delta, 1e-12, 50);
        let n = norm(&res.step);
        assert!(n <= delta + 1e-10, "step norm {n} exceeds {delta}");
        assert!(matches!(
            res.status,
            CgStatus::Boundary | CgStatus::NegativeCurvature
        ));
    }

    #[test]
    fn fixed_variables_stay_zero() {
        let h = spd3();
        let rhs = vec![1.0, 2.0, 3.0];
        let free = vec![true, false, true];
        let res = steihaug_cg(&h, &rhs, &free, 100.0, 1e-12, 50);
        assert_eq!(res.step[1], 0.0);
    }

    #[test]
    fn negative_curvature_goes_to_boundary() {
        let mut h = SmallMatrix::zeros(2);
        h[(0, 0)] = -1.0;
        h[(1, 1)] = -2.0;
        let rhs = vec![1.0, 0.0];
        let free = vec![true; 2];
        let delta = 2.0;
        let res = steihaug_cg(&h, &rhs, &free, delta, 1e-10, 50);
        assert_eq!(res.status, CgStatus::NegativeCurvature);
        assert!((norm(&res.step) - delta).abs() < 1e-10);
        // The step should still decrease the model r'd + 0.5 d'Hd... with
        // negative curvature the decrease is guaranteed along the gradient
        // direction followed to the boundary.
        let mut hd = vec![0.0; 2];
        h.mul_vec(&res.step, &mut hd);
        let q = -dot(&rhs, &res.step) + 0.5 * dot(&res.step, &hd);
        assert!(q < 0.0, "model value {q}");
    }

    #[test]
    fn zero_rhs_returns_zero_step() {
        let h = spd3();
        let res = steihaug_cg(&h, &[0.0; 3], &[true; 3], 1.0, 1e-10, 10);
        assert_eq!(res.status, CgStatus::Converged);
        assert!(res.step.iter().all(|&s| s == 0.0));
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn boundary_step_formula() {
        let d = vec![0.0, 0.0];
        let p = vec![3.0, 4.0];
        let tau = boundary_step(&d, &p, 10.0);
        assert!((tau - 2.0).abs() < 1e-12);
    }
}
