//! Property-based tests of the batch TRON solver: first-order optimality on
//! randomized nonconvex bound-constrained problems and batch/sequential
//! equivalence.

use gridsim_batch::Device;
use gridsim_sparse::dense::SmallMatrix;
use gridsim_tron::{
    solve_batch_from_host, BoundProblem, QuadraticBox, TronOptions, TronSolver, TronStatus,
};
use proptest::prelude::*;

/// A randomly generated (possibly indefinite) quadratic with box constraints.
fn random_quadratic(diag: Vec<f64>, off: Vec<f64>, c: Vec<f64>) -> QuadraticBox {
    let n = diag.len();
    let mut q = SmallMatrix::zeros(n);
    for i in 0..n {
        q[(i, i)] = diag[i];
    }
    // Symmetric off-diagonal entries on the first super/sub diagonal.
    for i in 0..n - 1 {
        q[(i, i + 1)] = off[i];
        q[(i + 1, i)] = off[i];
    }
    QuadraticBox {
        q,
        c,
        l: vec![-1.0; n],
        u: vec![1.0; n],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TRON reaches a first-order stationary point of any (even indefinite)
    /// small quadratic over a box.
    #[test]
    fn tron_first_order_optimality_on_random_quadratics(
        diag in prop::collection::vec(-3.0f64..6.0, 4),
        off in prop::collection::vec(-1.0f64..1.0, 3),
        c in prop::collection::vec(-2.0f64..2.0, 4),
        start in prop::collection::vec(-0.9f64..0.9, 4),
    ) {
        let qp = random_quadratic(diag, off, c);
        let solver = TronSolver::new(TronOptions {
            gtol: 1e-8,
            max_iter: 300,
            ..Default::default()
        });
        let res = solver.solve(&qp, &start);
        // Either converged to first-order stationarity or stalled with a
        // collapsed trust region (acceptable on strongly indefinite cases).
        prop_assert!(
            res.pg_norm < 1e-4 || res.status == TronStatus::SmallStep,
            "pg_norm {} status {:?}", res.pg_norm, res.status
        );
        for i in 0..4 {
            prop_assert!(res.x[i] >= qp.lower(i) - 1e-9);
            prop_assert!(res.x[i] <= qp.upper(i) + 1e-9);
        }
        // The solution is no worse than the (projected) starting point.
        let mut proj_start = start.clone();
        qp.project(&mut proj_start);
        prop_assert!(res.objective <= qp.objective(&proj_start) + 1e-9);
    }

    /// The batch driver returns exactly the same solutions as solving each
    /// problem individually.
    #[test]
    fn batch_equals_individual_solves(seed_offsets in prop::collection::vec(-1.0f64..1.0, 1..40)) {
        let problems: Vec<QuadraticBox> = seed_offsets
            .iter()
            .map(|&s| {
                QuadraticBox::diagonal(
                    &[2.0, 3.0, 4.0],
                    &[s, 2.0 * s, -s],
                    &[-1.0; 3],
                    &[1.0; 3],
                )
            })
            .collect();
        let starts = vec![vec![0.0; 3]; problems.len()];
        let solver = TronSolver::default();
        let device = Device::parallel();
        let (batch_solutions, outcome) =
            solve_batch_from_host(&device, &solver, &problems, &starts);
        prop_assert_eq!(outcome.converged, problems.len());
        for (qp, batch_x) in problems.iter().zip(&batch_solutions) {
            let individual = solver.solve(qp, &[0.0; 3]);
            for (a, b) in batch_x.iter().zip(&individual.x) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
