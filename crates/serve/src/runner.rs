//! Family adapters: one durability chunk = one fleet run.
//!
//! A chunk executes on a fresh single-device engine with every scenario
//! admitted at once, store lookups against the job's frozen snapshot
//! ([`gridsim_engine::StoreAccess::Snapshot`]), and no mid-job store writes. That makes a
//! chunk a pure function of `(spec, chunk indices, frozen snapshot)` — the
//! property the manifest's re-run-the-killed-chunk resume rule relies on.
//! Store commits are instead replayed from the manifest at job completion
//! by [`commit_job`], which is idempotent across restarts.

use crate::manifest::{JobManifest, ScenarioState};
use crate::spec::{JobSpec, SolverFamily};
use gridsim_admm::scenario::{ScenarioResult, ScenarioScheduler};
use gridsim_admm::{AdmmParams, AdmmStatus, WarmState};
use gridsim_batch::{Device, DevicePool};
use gridsim_engine::{Engine, FleetRequest};
use gridsim_grid::network::Network;
use gridsim_ipm::{IpmFleetSolver, IpmOptions, IpmWarmStart};
use gridsim_screen::{Band, ContingencyFunnel, FullResults, FullTier, FunnelConfig};
use gridsim_store::{ScenarioFingerprint, SolutionStore, StoreRunStats, StoreView};
use serde::{Deserialize, Serialize, Value};

/// Env var: per-scenario artificial delay in milliseconds, applied before
/// each chunk run. Exists so kill/resume tests (and demos) can widen the
/// window in which a chunk is in flight; unset or 0 in normal operation.
pub const THROTTLE_ENV: &str = "GRIDSIM_SERVE_THROTTLE_MS";

/// Outcome of one scenario inside a chunk run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario index within the job.
    pub index: usize,
    /// True when the solve converged (the scenario is durably done).
    pub converged: bool,
    /// The family result struct, serialized; recorded in the manifest only
    /// for converged scenarios.
    pub result: Value,
}

/// Result of one chunk run.
#[derive(Debug, Clone)]
pub struct ChunkOutcome {
    /// Per-scenario outcomes, in chunk order.
    pub scenarios: Vec<ScenarioOutcome>,
    /// Store-lookup traffic of the run (hits/misses; inserts stay 0 —
    /// commits are deferred to [`commit_job`]).
    pub stats: StoreRunStats,
}

/// The job's store snapshot, frozen when the job first activates. Both
/// family views are carried so the runner stays family-agnostic.
#[derive(Debug, Clone)]
pub struct FrozenStores {
    /// ADMM warm-state snapshot.
    pub admm: StoreView<WarmState>,
    /// Interior-point warm-start snapshot.
    pub ipm: StoreView<IpmWarmStart>,
}

impl FrozenStores {
    /// Snapshot both live stores.
    pub fn freeze(
        admm: &SolutionStore<WarmState>,
        ipm: &SolutionStore<IpmWarmStart>,
    ) -> FrozenStores {
        FrozenStores {
            admm: admm.view(),
            ipm: ipm.view(),
        }
    }
}

fn throttle(scenarios: usize) {
    if let Ok(ms) = std::env::var(THROTTLE_ENV) {
        if let Ok(ms) = ms.parse::<u64>() {
            if ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(ms * scenarios as u64));
            }
        }
    }
}

/// Run one chunk: the scenarios at `indices` (ascending, within `nets`) on
/// a fresh single-device engine. See the [module docs](self) for the
/// determinism contract.
pub fn run_chunk(
    spec: &JobSpec,
    nets: &[Network],
    indices: &[usize],
    stores: &FrozenStores,
) -> ChunkOutcome {
    throttle(indices.len());
    let chunk_nets: Vec<Network> = indices.iter().map(|&i| nets[i].clone()).collect();
    let case_id = spec.case.id();
    match spec.solver {
        SolverFamily::Admm if spec.screen => {
            // The funnel ignores the job's frozen snapshot: its full tier
            // is seeded from this chunk's own screening solutions (an
            // internal snapshot), so the chunk remains a pure function of
            // (spec, indices) and the resume rule is unaffected.
            let funnel = ContingencyFunnel::with_pool(
                FunnelConfig {
                    full: AdmmParams::test_profile(),
                    tier: FullTier::Admm,
                    benign_threshold: spec.benign_threshold,
                    violating_threshold: spec.violating_threshold,
                    ..Default::default()
                },
                DevicePool::single(Device::default()),
            );
            let report = funnel.run(case_id, &chunk_nets);
            let FullResults::Admm(full) = &report.full else {
                // Nothing graduated: every scenario keeps its screening
                // result and is durably done.
                let scenarios = indices
                    .iter()
                    .zip(&report.screening.results)
                    .map(|(&index, r)| ScenarioOutcome {
                        index,
                        converged: true,
                        result: r.to_value(),
                    })
                    .collect();
                return ChunkOutcome {
                    scenarios,
                    stats: report.screening.store,
                };
            };
            let scenarios = indices
                .iter()
                .enumerate()
                .map(|(chunk_i, &index)| match report.full_index_of(chunk_i) {
                    Some(g) => {
                        let r = &full.results[g];
                        ScenarioOutcome {
                            index,
                            converged: r.status == AdmmStatus::Converged,
                            result: r.to_value(),
                        }
                    }
                    None => {
                        // Benign: the screening result is the final word.
                        let r = &report.screening.results[chunk_i];
                        debug_assert_eq!(report.screened[chunk_i].band, Band::Benign);
                        ScenarioOutcome {
                            index,
                            converged: true,
                            result: r.to_value(),
                        }
                    }
                })
                .collect();
            ChunkOutcome {
                scenarios,
                stats: full.store,
            }
        }
        SolverFamily::Admm => {
            let scheduler = ScenarioScheduler::with_pool(
                AdmmParams::test_profile(),
                DevicePool::single(Device::default()),
            );
            let batch = scheduler.run(
                FleetRequest::over(&chunk_nets)
                    .case(case_id)
                    .snapshot(&stores.admm),
            );
            let scenarios = indices
                .iter()
                .zip(&batch.results)
                .map(|(&index, r)| ScenarioOutcome {
                    index,
                    converged: r.status == AdmmStatus::Converged,
                    result: r.to_value(),
                })
                .collect();
            ChunkOutcome {
                scenarios,
                stats: batch.store,
            }
        }
        SolverFamily::Ipm => {
            let solver = IpmFleetSolver::with_engine(
                IpmOptions::default(),
                Engine::with_pool(DevicePool::single(Device::default())),
            );
            let report = solver.run(
                FleetRequest::over(&chunk_nets)
                    .case(case_id)
                    .snapshot(&stores.ipm),
            );
            let scenarios = indices
                .iter()
                .zip(&report.results)
                .map(|(&index, r)| ScenarioOutcome {
                    index,
                    converged: r.report.is_optimal(),
                    result: r.to_value(),
                })
                .collect();
            ChunkOutcome {
                scenarios,
                stats: report.store,
            }
        }
    }
}

/// Replay a completed job's converged results into the live stores, in
/// scenario-index order. Payloads are rebuilt from the manifest's recorded
/// result values, so the commit is a pure function of the manifest —
/// running it after a restart inserts bitwise the same entries (inserting
/// an existing entry replaces it in place, keeping every tie-break).
/// Returns the number of entries committed.
pub fn commit_job(
    manifest: &JobManifest,
    nets: &[Network],
    admm_store: &mut SolutionStore<WarmState>,
    ipm_store: &mut SolutionStore<IpmWarmStart>,
) -> usize {
    let case_id = manifest.spec.case.id();
    let mut committed = 0;
    for (i, record) in manifest.records.iter().enumerate() {
        if record.state != ScenarioState::Done {
            continue;
        }
        let value = manifest.results[i]
            .as_ref()
            .expect("a Done scenario always has a recorded result");
        let fp = ScenarioFingerprint::of_network(&nets[i]);
        match manifest.spec.solver {
            SolverFamily::Admm => {
                let r = ScenarioResult::from_value(value)
                    .expect("manifest holds a serialized ScenarioResult");
                admm_store.insert(case_id, &fp, r.warm_state);
            }
            SolverFamily::Ipm => {
                let r = gridsim_ipm::FleetScenarioResult::from_value(value)
                    .expect("manifest holds a serialized FleetScenarioResult");
                ipm_store.insert(case_id, &fp, IpmWarmStart::from_report(&r.report));
            }
        }
        committed += 1;
    }
    committed
}
