//! `gridsim-served` — command-line front end of [`gridsim_serve`].
//!
//! ```text
//! gridsim-served --dir STATE submit NAME CASE KIND COUNT SOLVER [options]
//! gridsim-served --dir STATE run [--slots N]
//! gridsim-served --dir STATE status
//! ```
//!
//! `submit` enqueues a job (persisting its manifest) without running it;
//! `run` drains every queued job and exits; `status` prints per-job
//! progress. Killing `run` at any point — including `kill -9` — is safe:
//! the next `run` resumes from the manifests without re-solving finished
//! scenarios. See the README for a worked example.

use gridsim_serve::{CaseName, JobSpec, ScenarioSpec, ServeDaemon, SolverFamily};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         gridsim-served --dir STATE submit NAME CASE KIND COUNT SOLVER \\\n      \
         [--priority P] [--chunk-size C] [--max-lanes L] [--retries R] \\\n      \
         [--backoff-ms MS] [--load-scale F] [--lo F] [--hi F] [--sigma F] [--seed S]\n  \
         gridsim-served --dir STATE run [--slots N]\n  \
         gridsim-served --dir STATE status\n\n\
         CASE:   two_bus | case5 | case9 | case14 | case30_like\n\
         KIND:   load_ramp | perturbed | outages\n\
         SOLVER: admm | ipm"
    );
    ExitCode::FAILURE
}

fn parse_case(s: &str) -> Option<CaseName> {
    Some(match s {
        "two_bus" => CaseName::TwoBus,
        "case5" => CaseName::Case5,
        "case9" => CaseName::Case9,
        "case14" => CaseName::Case14,
        "case30_like" => CaseName::Case30Like,
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--dir" {
            dir = it.next();
        } else {
            rest.push(a);
        }
    }
    let Some(dir) = dir else {
        return usage();
    };
    let Some(command) = rest.first().cloned() else {
        return usage();
    };

    match command.as_str() {
        "status" => {
            let daemon = match ServeDaemon::open(&dir, 1) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("gridsim-served: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for s in daemon.status_all() {
                println!(
                    "{}: done {} / failed {} / queued {}{}{}",
                    s.name,
                    s.counts.done,
                    s.counts.failed,
                    s.counts.pending,
                    if s.complete { " [complete]" } else { "" },
                    if s.store_committed {
                        " [committed]"
                    } else {
                        ""
                    },
                );
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let mut slots = 2usize;
            let mut it = rest.iter().skip(1);
            while let Some(a) = it.next() {
                if a == "--slots" {
                    slots = match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) if n >= 1 => n,
                        _ => return usage(),
                    };
                } else {
                    return usage();
                }
            }
            let daemon = match ServeDaemon::open(&dir, slots) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("gridsim-served: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match daemon.run_until_idle() {
                Ok(()) => {
                    for s in daemon.status_all() {
                        println!(
                            "{}: done {} / failed {} (store: {} hits, {} misses, {} inserts)",
                            s.name,
                            s.counts.done,
                            s.counts.failed,
                            s.store.hits,
                            s.store.misses,
                            s.store.inserts
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("gridsim-served: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "submit" => {
            let pos: Vec<&String> = rest[1..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect();
            let [name, case, kind, count, solver] = pos[..] else {
                return usage();
            };
            let Some(case) = parse_case(case) else {
                return usage();
            };
            let Ok(count) = count.parse::<usize>() else {
                return usage();
            };
            let solver = match solver.as_str() {
                "admm" => SolverFamily::Admm,
                "ipm" => SolverFamily::Ipm,
                _ => return usage(),
            };
            // Flag defaults, overridable below.
            let (mut lo, mut hi, mut sigma, mut seed) = (0.95f64, 1.05f64, 0.02f64, 1u64);
            let mut opts: Vec<(String, String)> = Vec::new();
            let mut it = rest[1 + pos.len()..].iter();
            while let Some(a) = it.next() {
                let Some(v) = it.next() else { return usage() };
                opts.push((a.clone(), v.clone()));
            }
            for (k, v) in &opts {
                match k.as_str() {
                    "--lo" => {
                        lo = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--hi" => {
                        hi = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--sigma" => {
                        sigma = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--seed" => {
                        seed = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    _ => {}
                }
            }
            let scenarios = match kind.as_str() {
                "load_ramp" => ScenarioSpec::load_ramp(count, lo, hi),
                "perturbed" => ScenarioSpec::perturbed(count, sigma, seed),
                "outages" => ScenarioSpec::outages(count),
                _ => return usage(),
            };
            let mut spec = JobSpec::new(name.clone(), case, scenarios, solver);
            for (k, v) in &opts {
                let parsed = v.parse::<i64>();
                match k.as_str() {
                    "--priority" => {
                        spec.priority = if let Ok(x) = parsed {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--chunk-size" => {
                        spec.chunk_size = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--max-lanes" => {
                        spec.max_lanes = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--retries" => {
                        spec.max_retries = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--backoff-ms" => {
                        spec.retry_backoff_ms = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--load-scale" => {
                        spec.load_scale = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--lo" | "--hi" | "--sigma" | "--seed" => {}
                    _ => return usage(),
                }
            }
            let daemon = match ServeDaemon::open(&dir, 1) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("gridsim-served: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match daemon.submit(spec) {
                Ok(handle) => {
                    let s = handle.status();
                    println!("queued `{}` ({} scenarios)", s.name, s.counts.pending);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("gridsim-served: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
