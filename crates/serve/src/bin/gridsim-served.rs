//! `gridsim-served` — command-line front end of [`gridsim_serve`].
//!
//! ```text
//! gridsim-served --dir STATE submit NAME CASE KIND COUNT SOLVER [options]
//! gridsim-served --dir STATE run [--slots N]
//! gridsim-served --dir STATE status
//! ```
//!
//! `submit` enqueues a job (persisting its manifest) without running it;
//! `run` drains every queued job and exits; `status` prints per-job
//! progress. Killing `run` at any point — including `kill -9` — is safe:
//! the next `run` resumes from the manifests without re-solving finished
//! scenarios. See the README for a worked example.

use gridsim_serve::{CaseName, JobSpec, ScenarioSpec, ServeDaemon, SolverFamily};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         gridsim-served --dir STATE submit NAME CASE KIND COUNT SOLVER \\\n      \
         [--priority P] [--chunk-size C] [--max-lanes L] [--retries R] \\\n      \
         [--backoff-ms MS] [--load-scale F] [--lo F] [--hi F] [--sigma F] [--seed S] \\\n      \
         [--levels N] [--draws N] [--n2-pairs N] [--gen-outages N] \\\n      \
         [--screen] [--benign B] [--violating V]\n  \
         gridsim-served --dir STATE run [--slots N]\n  \
         gridsim-served --dir STATE status\n\n\
         CASE:   two_bus | case5 | case9 | case14 | case30_like\n\
         KIND:   load_ramp | perturbed | outages | contingency\n\
         SOLVER: admm | ipm\n\n\
         For `contingency`, COUNT caps the N-1 outage columns; the set is\n\
         levels x (1 + draws) x (base + N-1 + N-2 + gen) scenarios.\n\
         `--screen` runs the job through the two-tier screening funnel\n\
         (admm only; thresholds default to the gridsim-screen defaults)."
    );
    ExitCode::FAILURE
}

fn parse_case(s: &str) -> Option<CaseName> {
    Some(match s {
        "two_bus" => CaseName::TwoBus,
        "case5" => CaseName::Case5,
        "case9" => CaseName::Case9,
        "case14" => CaseName::Case14,
        "case30_like" => CaseName::Case30Like,
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--dir" {
            dir = it.next();
        } else {
            rest.push(a);
        }
    }
    let Some(dir) = dir else {
        return usage();
    };
    let Some(command) = rest.first().cloned() else {
        return usage();
    };

    match command.as_str() {
        "status" => {
            let daemon = match ServeDaemon::open(&dir, 1) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("gridsim-served: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for s in daemon.status_all() {
                println!(
                    "{}: done {} / failed {} / queued {}{}{}",
                    s.name,
                    s.counts.done,
                    s.counts.failed,
                    s.counts.pending,
                    if s.complete { " [complete]" } else { "" },
                    if s.store_committed {
                        " [committed]"
                    } else {
                        ""
                    },
                );
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let mut slots = 2usize;
            let mut it = rest.iter().skip(1);
            while let Some(a) = it.next() {
                if a == "--slots" {
                    slots = match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) if n >= 1 => n,
                        _ => return usage(),
                    };
                } else {
                    return usage();
                }
            }
            let daemon = match ServeDaemon::open(&dir, slots) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("gridsim-served: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match daemon.run_until_idle() {
                Ok(()) => {
                    for s in daemon.status_all() {
                        println!(
                            "{}: done {} / failed {} (store: {} hits, {} misses, {} inserts)",
                            s.name,
                            s.counts.done,
                            s.counts.failed,
                            s.store.hits,
                            s.store.misses,
                            s.store.inserts
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("gridsim-served: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "submit" => {
            let pos: Vec<&String> = rest[1..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect();
            let [name, case, kind, count, solver] = pos[..] else {
                return usage();
            };
            let Some(case) = parse_case(case) else {
                return usage();
            };
            let Ok(count) = count.parse::<usize>() else {
                return usage();
            };
            let solver = match solver.as_str() {
                "admm" => SolverFamily::Admm,
                "ipm" => SolverFamily::Ipm,
                _ => return usage(),
            };
            // Flag defaults, overridable below.
            let (mut lo, mut hi, mut sigma, mut seed) = (0.95f64, 1.05f64, 0.02f64, 1u64);
            let (mut levels, mut draws, mut n2_pairs, mut gen_outages) = (3usize, 0usize, 0, 0);
            let mut opts: Vec<(String, String)> = Vec::new();
            let mut it = rest[1 + pos.len()..].iter();
            while let Some(a) = it.next() {
                if a == "--screen" {
                    opts.push((a.clone(), String::new()));
                    continue;
                }
                let Some(v) = it.next() else { return usage() };
                opts.push((a.clone(), v.clone()));
            }
            for (k, v) in &opts {
                let target: &mut f64 = match k.as_str() {
                    "--lo" => &mut lo,
                    "--hi" => &mut hi,
                    "--sigma" => &mut sigma,
                    "--seed" => {
                        seed = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        };
                        continue;
                    }
                    "--levels" | "--draws" | "--n2-pairs" | "--gen-outages" => {
                        let Ok(x) = v.parse::<usize>() else {
                            return usage();
                        };
                        match k.as_str() {
                            "--levels" => levels = x,
                            "--draws" => draws = x,
                            "--n2-pairs" => n2_pairs = x,
                            _ => gen_outages = x,
                        }
                        continue;
                    }
                    _ => continue,
                };
                *target = if let Ok(x) = v.parse() {
                    x
                } else {
                    return usage();
                };
            }
            let scenarios = match kind.as_str() {
                "load_ramp" => ScenarioSpec::load_ramp(count, lo, hi),
                "perturbed" => ScenarioSpec::perturbed(count, sigma, seed),
                "outages" => ScenarioSpec::outages(count),
                "contingency" => ScenarioSpec::contingency(
                    levels,
                    lo,
                    hi,
                    draws,
                    sigma,
                    seed,
                    count,
                    n2_pairs,
                    gen_outages,
                ),
                _ => return usage(),
            };
            let mut spec = JobSpec::new(name.clone(), case, scenarios, solver);
            for (k, v) in &opts {
                let parsed = v.parse::<i64>();
                match k.as_str() {
                    "--priority" => {
                        spec.priority = if let Ok(x) = parsed {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--chunk-size" => {
                        spec.chunk_size = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--max-lanes" => {
                        spec.max_lanes = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--retries" => {
                        spec.max_retries = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--backoff-ms" => {
                        spec.retry_backoff_ms = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--load-scale" => {
                        spec.load_scale = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--screen" => spec.screen = true,
                    "--benign" => {
                        spec.benign_threshold = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--violating" => {
                        spec.violating_threshold = if let Ok(x) = v.parse() {
                            x
                        } else {
                            return usage();
                        }
                    }
                    "--lo" | "--hi" | "--sigma" | "--seed" | "--levels" | "--draws"
                    | "--n2-pairs" | "--gen-outages" => {}
                    _ => return usage(),
                }
            }
            let daemon = match ServeDaemon::open(&dir, 1) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("gridsim-served: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match daemon.submit(spec) {
                Ok(handle) => {
                    let s = handle.status();
                    println!("queued `{}` ({} scenarios)", s.name, s.counts.pending);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("gridsim-served: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
