//! The durable job manifest: the daemon's crash-consistent ledger.
//!
//! One manifest file per job holds the spec, a per-scenario status record,
//! and the completed results. The daemon rewrites it atomically
//! (temp-file-plus-rename) after every chunk, so at any kill point the file
//! on disk is a complete, internally consistent snapshot: a restarted
//! daemon re-runs exactly the chunks whose results never hit the disk and
//! trusts everything that did. Because a chunk is one deterministic fleet
//! run over a deterministic index range, the re-run reproduces bitwise the
//! results the killed run would have produced (see
//! [`crate::daemon`] for the store-freezing half of that argument).

use crate::spec::JobSpec;
use serde::{DeError, Deserialize, Serialize, Value};
use std::io;
use std::path::Path;

/// Manifest format version; bump on any change to the on-disk shape.
pub const MANIFEST_VERSION: u64 = 1;

/// Lifecycle of one scenario inside a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ScenarioState {
    /// Not yet solved (or failed with retries remaining).
    Pending,
    /// Solved and its result persisted.
    Done,
    /// Failed with retries exhausted; terminal.
    Failed,
}

/// Status record of one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioRecord {
    /// Current lifecycle state.
    pub state: ScenarioState,
    /// Solve attempts consumed so far.
    pub attempts: usize,
}

/// Counts of scenarios per state — the progress surface of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct JobCounts {
    /// Scenarios not yet solved.
    pub pending: usize,
    /// Scenarios solved and persisted.
    pub done: usize,
    /// Scenarios permanently failed.
    pub failed: usize,
}

/// The durable per-job ledger. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct JobManifest {
    /// The submitted spec, verbatim.
    pub spec: JobSpec,
    /// Per-scenario status, index-aligned with [`JobSpec::networks`].
    pub records: Vec<ScenarioRecord>,
    /// Per-scenario results (the solver family's result struct as a
    /// serialized value tree); `None` until the scenario is `Done`.
    pub results: Vec<Option<Value>>,
    /// True once the job's converged results have been committed to the
    /// solution store and the store flushed — commits are deferred to job
    /// completion and must happen exactly once across restarts.
    pub store_committed: bool,
    /// Daemon-assigned submission sequence number: the FIFO tie-break key
    /// for equal-priority jobs, persisted so the queue order survives a
    /// restart.
    pub submitted: u64,
}

impl JobManifest {
    /// A fresh manifest for the `submitted`-th job: every scenario
    /// pending, no results.
    pub fn new(spec: JobSpec, submitted: u64) -> JobManifest {
        let n = spec.scenario_count();
        JobManifest {
            spec,
            submitted,
            records: vec![
                ScenarioRecord {
                    state: ScenarioState::Pending,
                    attempts: 0,
                };
                n
            ],
            results: vec![None; n],
            store_committed: false,
        }
    }

    /// Scenario indices still pending, ascending.
    pub fn pending(&self) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.state == ScenarioState::Pending)
            .map(|(i, _)| i)
            .collect()
    }

    /// Progress counts.
    pub fn counts(&self) -> JobCounts {
        let mut c = JobCounts::default();
        for r in &self.records {
            match r.state {
                ScenarioState::Pending => c.pending += 1,
                ScenarioState::Done => c.done += 1,
                ScenarioState::Failed => c.failed += 1,
            }
        }
        c
    }

    /// True when no scenario is pending (every one is `Done` or `Failed`).
    pub fn is_complete(&self) -> bool {
        self.counts().pending == 0
    }

    /// Record a solved scenario.
    pub fn record_done(&mut self, index: usize, result: Value) {
        let r = &mut self.records[index];
        r.state = ScenarioState::Done;
        r.attempts += 1;
        self.results[index] = Some(result);
    }

    /// Record a failed attempt; the scenario turns `Failed` once its
    /// attempts exceed the spec's `max_retries` budget (first attempt +
    /// `max_retries` re-solves).
    pub fn record_failure(&mut self, index: usize) {
        let max_attempts = 1 + self.spec.max_retries;
        let r = &mut self.records[index];
        r.attempts += 1;
        if r.attempts >= max_attempts {
            r.state = ScenarioState::Failed;
        }
    }

    /// The fixed chunk partition: consecutive index ranges of
    /// `spec.chunk_size`. Chunks are identified by their position in this
    /// partition, so the partition — and therefore which scenarios share a
    /// fleet run — is independent of completion state, which is what makes
    /// a resumed job reproduce an uninterrupted one bitwise.
    pub fn chunks(&self) -> Vec<Vec<usize>> {
        (0..self.records.len())
            .collect::<Vec<_>>()
            .chunks(self.spec.chunk_size.max(1))
            .map(|c| c.to_vec())
            .collect()
    }

    /// Chunks that still contain at least one pending scenario, restricted
    /// to those pending indices (done/failed members are not re-run).
    pub fn pending_chunks(&self) -> Vec<Vec<usize>> {
        self.chunks()
            .into_iter()
            .map(|chunk| {
                chunk
                    .into_iter()
                    .filter(|&i| self.records[i].state == ScenarioState::Pending)
                    .collect::<Vec<_>>()
            })
            .filter(|c| !c.is_empty())
            .collect()
    }

    /// Write the manifest to `path` atomically (temp file + rename).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let text = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }

    /// Read a manifest written by [`save`](JobManifest::save).
    pub fn load(path: &Path) -> io::Result<JobManifest> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

// Hand-written (not derived) because `results` nests `Option<Value>` and
// the version gate must reject future formats with a clear error.
impl Serialize for JobManifest {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("version".to_string(), Value::Num(MANIFEST_VERSION as f64)),
            ("spec".to_string(), self.spec.to_value()),
            ("records".to_string(), self.records.to_value()),
            ("results".to_string(), self.results.to_value()),
            (
                "store_committed".to_string(),
                Value::Bool(self.store_committed),
            ),
            ("submitted".to_string(), Value::Num(self.submitted as f64)),
        ])
    }
}

impl Deserialize for JobManifest {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let version: u64 = serde::field(v, "version")?;
        if version != MANIFEST_VERSION {
            return Err(DeError::custom(format!(
                "job manifest format version {version} (this build reads {MANIFEST_VERSION})"
            )));
        }
        let m = JobManifest {
            spec: serde::field(v, "spec")?,
            records: serde::field(v, "records")?,
            results: serde::field(v, "results")?,
            store_committed: serde::field(v, "store_committed")?,
            submitted: serde::field(v, "submitted")?,
        };
        if m.records.len() != m.spec.scenario_count() || m.results.len() != m.records.len() {
            return Err(DeError::custom("manifest record/result arity mismatch"));
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CaseName, ScenarioSpec, SolverFamily};

    fn spec() -> JobSpec {
        JobSpec::new(
            "m",
            CaseName::Case9,
            ScenarioSpec::load_ramp(5, 0.9, 1.1),
            SolverFamily::Admm,
        )
        .chunk_size(2)
        .retries(1, 5)
    }

    #[test]
    fn lifecycle_counts_and_chunks() {
        let mut m = JobManifest::new(spec(), 0);
        assert_eq!(m.counts().pending, 5);
        assert_eq!(m.chunks(), vec![vec![0, 1], vec![2, 3], vec![4]]);
        m.record_done(0, Value::Num(1.0));
        m.record_failure(1); // attempt 1 of 2 → still pending
        assert_eq!(m.records[1].state, ScenarioState::Pending);
        m.record_failure(1); // attempts exhausted → failed
        assert_eq!(m.records[1].state, ScenarioState::Failed);
        let c = m.counts();
        assert_eq!((c.pending, c.done, c.failed), (3, 1, 1));
        assert_eq!(m.pending_chunks(), vec![vec![2, 3], vec![4]]);
        assert!(!m.is_complete());
    }

    #[test]
    fn save_load_round_trips() {
        let mut m = JobManifest::new(spec(), 0);
        m.record_done(
            2,
            Value::Seq(vec![Value::Num(-0.0), Value::Str("x".into())]),
        );
        m.record_failure(4);
        let dir = std::env::temp_dir().join("gridsim-serve-manifest-rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        m.save(&path).unwrap();
        let back = JobManifest::load(&path).unwrap();
        assert_eq!(back.spec, m.spec);
        assert_eq!(back.records, m.records);
        assert_eq!(back.results, m.results);
        assert_eq!(back.store_committed, m.store_committed);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let m = JobManifest::new(spec(), 0);
        let text = serde_json::to_string(&m).unwrap();
        let bumped = text.replacen("\"version\":1", "\"version\":99", 1);
        let err = serde_json::from_str::<JobManifest>(&bumped).unwrap_err();
        assert!(err.to_string().contains("format version"), "{err}");
    }
}
