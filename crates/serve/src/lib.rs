//! # gridsim-serve
//!
//! Multi-tenant, durable, resumable scenario-job service over the fleet
//! solvers — the daemon rung of the reuse ladder this workspace builds
//! from the paper's tracking result: `KktCache` reuses factorizations
//! within a lane, [`gridsim_store::SolutionStore`] reuses solutions across
//! fleets, and this crate keeps both (plus the job queue itself) alive
//! across *process lifetimes*.
//!
//! ## Shape
//!
//! * [`spec`] — [`JobSpec`]: a named scenario set (registry case + recipe)
//!   plus solver family, priority, chunk size, lane cap, and retry policy.
//! * [`manifest`] — [`JobManifest`]: the crash-consistent per-job ledger,
//!   atomically rewritten after every chunk.
//! * [`runner`] — one chunk = one deterministic fleet run through the
//!   engine's unified [`FleetRequest`](gridsim_engine::FleetRequest) API,
//!   store lookups frozen at job entry, commits deferred to completion.
//! * [`daemon`] — [`ServeDaemon`]: worker slots, cross-job lane
//!   allocation (priority, FIFO ties, per-job caps), retry backoff, and
//!   [`JobHandle::status`] progress reporting.
//!
//! The `gridsim-served` binary wraps the daemon for the command line; see
//! the README's "running the daemon" section.
//!
//! ## The durability contract
//!
//! `kill -9` the daemon at any instant, reopen the directory, and the
//! drained results are bitwise identical to an uninterrupted run: finished
//! chunks are trusted from the manifest (never re-solved), in-flight
//! chunks re-run whole, and the fixed chunk partition plus frozen store
//! snapshot make each chunk a pure function of durable state.

pub mod daemon;
pub mod manifest;
pub mod runner;
pub mod spec;

pub use daemon::{JobHandle, JobStatus, ServeDaemon};
pub use manifest::{JobCounts, JobManifest, ScenarioRecord, ScenarioState, MANIFEST_VERSION};
pub use runner::{
    commit_job, run_chunk, ChunkOutcome, FrozenStores, ScenarioOutcome, THROTTLE_ENV,
};
pub use spec::{CaseName, JobSpec, ScenarioKind, ScenarioSpec, SolverFamily};
