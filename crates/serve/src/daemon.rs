//! The scenario-job daemon: a multi-tenant queue over the fleet solvers.
//!
//! [`ServeDaemon`] owns a state directory (`jobs/*.json` manifests plus the
//! two per-family solution-store snapshots) and a fixed budget of worker
//! *slots*. Scheduling hoists the engine's streaming-admission idea one
//! level up: as any slot frees, [`gridsim_engine::jobs::lane_allocation`]
//! hands it to the highest-priority job with pending chunks (FIFO on ties,
//! per-job `max_lanes` caps as backpressure), so the fleet never idles
//! while any tenant has work, and no tenant can monopolize it.
//!
//! ## Durability and determinism
//!
//! The daemon itself keeps *no* authoritative state in memory: every chunk
//! completion is folded into the job's [`JobManifest`] and flushed
//! atomically before the slot is reused. A `kill -9` at any instant
//! therefore loses at most the chunks in flight, and a restarted daemon
//! ([`ServeDaemon::open`] on the same directory) re-runs exactly those.
//! Combined with the runner's frozen-snapshot store reads and
//! deferred-to-completion store commits, the resumed job's results are
//! bitwise identical to an uninterrupted run — the property the
//! `daemon` (in-process) and `kill_resume` (real SIGKILL) suites pin.

use crate::manifest::{JobCounts, JobManifest};
use crate::runner::{self, ChunkOutcome, FrozenStores};
use crate::spec::JobSpec;
use gridsim_admm::WarmState;
use gridsim_engine::jobs::{lane_allocation, JobSlot};
use gridsim_grid::network::Network;
use gridsim_ipm::IpmWarmStart;
use gridsim_store::{SolutionStore, StoreRunStats};
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A runnable chunk: `(chunk_id, scenario indices)`.
type RunnableChunk = (usize, Vec<usize>);

/// One job's in-memory scheduling state; the manifest is the durable part.
struct Job {
    manifest: JobManifest,
    path: PathBuf,
    /// Compiled scenario networks (pure function of the spec).
    nets: Arc<Vec<Network>>,
    /// Store snapshot frozen when the job entered the daemon.
    stores: Arc<FrozenStores>,
    /// Chunk ids (positions in the fixed partition) currently in flight.
    running: BTreeSet<usize>,
    /// Backoff gate: no new chunks before this instant.
    eligible_at: Option<Instant>,
    /// Accumulated store-lookup traffic plus completion-time inserts.
    stats: StoreRunStats,
}

impl Job {
    /// Pending chunks as (chunk id, pending indices), excluding in-flight.
    fn runnable_chunks(&self) -> Vec<RunnableChunk> {
        self.manifest
            .chunks()
            .into_iter()
            .enumerate()
            .filter(|(id, _)| !self.running.contains(id))
            .map(|(id, chunk)| {
                (
                    id,
                    chunk
                        .into_iter()
                        .filter(|&i| {
                            self.manifest.records[i].state
                                == crate::manifest::ScenarioState::Pending
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .filter(|(_, c)| !c.is_empty())
            .collect()
    }
}

struct DaemonState {
    jobs: Vec<Job>,
    admm_store: SolutionStore<WarmState>,
    ipm_store: SolutionStore<IpmWarmStart>,
    next_submitted: u64,
}

/// Progress snapshot of one job — what [`JobHandle::status`] returns.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job name.
    pub name: String,
    /// Scenario counts by state (queued = `pending` minus `running`).
    pub counts: JobCounts,
    /// Scenarios currently in flight in running chunks.
    pub running: usize,
    /// True when every scenario is done or failed.
    pub complete: bool,
    /// True once the job's results are committed to the solution store.
    pub store_committed: bool,
    /// Store traffic: lookup hits/misses across the job's chunk runs,
    /// inserts from the completion-time commit.
    pub store: StoreRunStats,
}

/// A cheap cloneable handle onto one job in a daemon.
#[derive(Clone)]
pub struct JobHandle {
    state: Arc<Mutex<DaemonState>>,
    index: usize,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("index", &self.index)
            .finish()
    }
}

impl JobHandle {
    /// Current progress. Safe to call from any thread while the daemon
    /// runs; the snapshot is consistent (taken under the daemon lock).
    pub fn status(&self) -> JobStatus {
        let state = self.state.lock().unwrap();
        let job = &state.jobs[self.index];
        let mut counts = job.manifest.counts();
        let running: usize = job
            .manifest
            .chunks()
            .iter()
            .enumerate()
            .filter(|(id, _)| job.running.contains(id))
            .map(|(_, chunk)| {
                chunk
                    .iter()
                    .filter(|&&i| {
                        job.manifest.records[i].state == crate::manifest::ScenarioState::Pending
                    })
                    .count()
            })
            .sum();
        counts.pending -= running;
        JobStatus {
            name: job.manifest.spec.name.clone(),
            counts,
            running,
            complete: job.manifest.is_complete(),
            store_committed: job.manifest.store_committed,
            store: job.stats,
        }
    }
}

/// The daemon. See the [module docs](self).
pub struct ServeDaemon {
    dir: PathBuf,
    slots: usize,
    state: Arc<Mutex<DaemonState>>,
}

impl ServeDaemon {
    /// Open (or create) a state directory with `slots` worker slots:
    /// load both solution stores, re-queue every incomplete manifest under
    /// `jobs/`, and commit any job that completed but was killed before
    /// its store commit landed.
    pub fn open(dir: impl Into<PathBuf>, slots: usize) -> io::Result<ServeDaemon> {
        assert!(slots >= 1, "the daemon needs at least one worker slot");
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("jobs"))?;
        let mut admm_store = SolutionStore::load_or_default(&dir.join("store-admm.json"))?;
        let mut ipm_store = SolutionStore::load_or_default(&dir.join("store-ipm.json"))?;

        let mut jobs = Vec::new();
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir.join("jobs"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        for path in paths {
            let manifest = JobManifest::load(&path)?;
            let nets = manifest
                .spec
                .networks()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
            jobs.push(Job {
                manifest,
                path,
                nets: Arc::new(nets),
                stores: Arc::new(FrozenStores::freeze(&admm_store, &ipm_store)),
                running: BTreeSet::new(),
                eligible_at: None,
                stats: StoreRunStats::default(),
            });
        }
        // Queue order is the persisted submission order, not file order.
        jobs.sort_by_key(|j| j.manifest.submitted);
        let next_submitted = jobs
            .iter()
            .map(|j| j.manifest.submitted + 1)
            .max()
            .unwrap_or(0);

        // Land store commits owed by jobs that finished right before a
        // kill; in submission order, so the replay is deterministic.
        for job in &mut jobs {
            if job.manifest.is_complete() && !job.manifest.store_committed {
                let inserts =
                    runner::commit_job(&job.manifest, &job.nets, &mut admm_store, &mut ipm_store);
                job.stats.inserts += inserts;
                job.manifest.store_committed = true;
                job.manifest.save(&job.path)?;
            }
        }
        let daemon = ServeDaemon {
            dir,
            slots,
            state: Arc::new(Mutex::new(DaemonState {
                jobs,
                admm_store,
                ipm_store,
                next_submitted,
            })),
        };
        daemon.flush_stores()?;
        Ok(daemon)
    }

    /// The daemon's state directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Submit a job: validate the spec, persist a fresh manifest, freeze
    /// the store snapshot, enqueue. Fails on an invalid spec or a name
    /// collision with any job (finished or not) in this directory.
    pub fn submit(&self, spec: JobSpec) -> io::Result<JobHandle> {
        spec.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let nets = spec
            .networks()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        let mut state = self.state.lock().unwrap();
        if state.jobs.iter().any(|j| j.manifest.spec.name == spec.name) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("a job named `{}` already exists", spec.name),
            ));
        }
        let path = self.dir.join("jobs").join(format!("{}.json", spec.name));
        let manifest = JobManifest::new(spec, state.next_submitted);
        state.next_submitted += 1;
        manifest.save(&path)?;
        let stores = Arc::new(FrozenStores::freeze(&state.admm_store, &state.ipm_store));
        state.jobs.push(Job {
            manifest,
            path,
            nets: Arc::new(nets),
            stores,
            running: BTreeSet::new(),
            eligible_at: None,
            stats: StoreRunStats::default(),
        });
        Ok(JobHandle {
            state: Arc::clone(&self.state),
            index: state.jobs.len() - 1,
        })
    }

    /// Handle onto an existing job by name.
    pub fn handle(&self, name: &str) -> Option<JobHandle> {
        let state = self.state.lock().unwrap();
        state
            .jobs
            .iter()
            .position(|j| j.manifest.spec.name == name)
            .map(|index| JobHandle {
                state: Arc::clone(&self.state),
                index,
            })
    }

    /// Status of every job, in submission order.
    pub fn status_all(&self) -> Vec<JobStatus> {
        let n = self.state.lock().unwrap().jobs.len();
        (0..n)
            .map(|index| {
                JobHandle {
                    state: Arc::clone(&self.state),
                    index,
                }
                .status()
            })
            .collect()
    }

    fn flush_stores(&self) -> io::Result<()> {
        let state = self.state.lock().unwrap();
        state.admm_store.save(&self.dir.join("store-admm.json"))?;
        state.ipm_store.save(&self.dir.join("store-ipm.json"))
    }

    /// Drain the queue: run chunks across worker slots until every job is
    /// complete (done or failed) and committed, then return. Progress is
    /// observable from other threads through [`JobHandle::status`].
    pub fn run_until_idle(&self) -> io::Result<()> {
        self.run(None).map(|_| ())
    }

    /// Run at most `max_chunks` chunk completions, then stop launching and
    /// drain what is in flight. Returns the number of chunks completed.
    /// This is the controlled-interruption hook the kill/resume tests use
    /// to park the daemon at an arbitrary durable state; a real `kill -9`
    /// lands on the same manifests minus the in-flight chunks.
    pub fn run_chunks(&self, max_chunks: usize) -> io::Result<usize> {
        self.run(Some(max_chunks))
    }

    fn run(&self, limit: Option<usize>) -> io::Result<usize> {
        let (tx, rx) = mpsc::channel::<(usize, usize, ChunkOutcome)>();
        let mut in_flight = 0usize;
        let mut completed = 0usize;
        let mut io_result = Ok(());

        std::thread::scope(|scope| loop {
            // A `max_chunks` budget caps launches, not just completions, so
            // `run_chunks(n)` runs exactly `n` chunks when n are pending.
            let budget = limit.map(|m| m.saturating_sub(completed + in_flight));
            let exhausted = budget == Some(0);
            // Phase 1: hand free slots to jobs (priority, FIFO, caps).
            let launches = if exhausted {
                Vec::new()
            } else {
                let mut state = self.state.lock().unwrap();
                let now = Instant::now();
                // Per job: (job index, runnable (chunk_id, scenario idxs)).
                let mut eligible: Vec<(usize, Vec<RunnableChunk>)> = Vec::new();
                for (ji, job) in state.jobs.iter().enumerate() {
                    if job.eligible_at.is_some_and(|t| t > now) {
                        continue;
                    }
                    let chunks = job.runnable_chunks();
                    if !chunks.is_empty() {
                        eligible.push((ji, chunks));
                    }
                }
                let slots: Vec<JobSlot> = eligible
                    .iter()
                    .map(|(ji, chunks)| {
                        let job = &state.jobs[*ji];
                        JobSlot {
                            priority: job.manifest.spec.priority,
                            submitted: job.manifest.submitted,
                            pending: chunks.len(),
                            running: job.running.len(),
                            cap: match job.manifest.spec.max_lanes {
                                0 => None,
                                n => Some(n),
                            },
                        }
                    })
                    .collect();
                let free = (self.slots - in_flight).min(budget.unwrap_or(usize::MAX));
                // `lane_allocation` returns winning job indices, one per
                // granted slot; fold into per-job counts.
                let mut grants = vec![0usize; eligible.len()];
                for j in lane_allocation(free, &slots) {
                    grants[j] += 1;
                }
                let mut launches = Vec::new();
                for (slot_idx, &n) in grants.iter().enumerate() {
                    let (ji, chunks) = &eligible[slot_idx];
                    for (chunk_id, indices) in chunks.iter().take(n) {
                        let job = &mut state.jobs[*ji];
                        job.running.insert(*chunk_id);
                        launches.push((
                            *ji,
                            *chunk_id,
                            indices.clone(),
                            job.manifest.spec.clone(),
                            Arc::clone(&job.nets),
                            Arc::clone(&job.stores),
                        ));
                    }
                }
                launches
            };

            for (ji, chunk_id, indices, spec, nets, stores) in launches {
                let tx = tx.clone();
                in_flight += 1;
                scope.spawn(move || {
                    let outcome = runner::run_chunk(&spec, &nets, &indices, &stores);
                    // The receiver outlives every worker inside this scope.
                    let _ = tx.send((ji, chunk_id, outcome));
                });
            }

            // Phase 2: wait for a completion (or the next backoff expiry).
            if in_flight == 0 {
                if limit.is_some_and(|m| completed >= m) {
                    break io_result.map(|_| completed);
                }
                let state = self.state.lock().unwrap();
                let now = Instant::now();
                let next_deadline = state
                    .jobs
                    .iter()
                    .filter(|j| !j.manifest.is_complete())
                    .filter_map(|j| j.eligible_at)
                    .filter(|&t| t > now)
                    .min();
                let all_done = state.jobs.iter().all(|j| j.manifest.is_complete());
                drop(state);
                match (all_done, next_deadline) {
                    (true, _) => break io_result.map(|_| completed),
                    (false, Some(t)) => {
                        std::thread::sleep(t.saturating_duration_since(Instant::now()));
                        continue;
                    }
                    (false, None) => {
                        // Nothing running, nothing schedulable, not done:
                        // impossible unless a worker panicked. Surface it.
                        break io_result.and(Err(io::Error::other(
                            "daemon stalled with pending work and no running chunks",
                        )));
                    }
                }
            }
            let (ji, chunk_id, outcome) = rx.recv().expect("a worker holds the sender");
            in_flight -= 1;
            completed += 1;
            if let Err(e) = self.finish_chunk(ji, chunk_id, outcome) {
                io_result = Err(e);
            }
            // Drain any further completions before rescheduling.
            while let Ok((ji, chunk_id, outcome)) = rx.try_recv() {
                in_flight -= 1;
                completed += 1;
                if let Err(e) = self.finish_chunk(ji, chunk_id, outcome) {
                    io_result = Err(e);
                }
            }
        })
    }

    /// Fold one chunk outcome into its manifest and flush; on job
    /// completion, commit results to the stores and flush those too.
    fn finish_chunk(&self, ji: usize, chunk_id: usize, outcome: ChunkOutcome) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        let state = &mut *state;
        let job = &mut state.jobs[ji];
        job.running.remove(&chunk_id);
        job.stats.hits += outcome.stats.hits;
        job.stats.misses += outcome.stats.misses;
        let mut any_failure = false;
        for s in outcome.scenarios {
            if s.converged {
                job.manifest.record_done(s.index, s.result);
            } else {
                job.manifest.record_failure(s.index);
                any_failure = true;
            }
        }
        if any_failure {
            // Exponential backoff keyed on the worst retry count among the
            // job's still-pending scenarios.
            let attempts = job
                .manifest
                .records
                .iter()
                .filter(|r| r.state == crate::manifest::ScenarioState::Pending)
                .map(|r| r.attempts)
                .max()
                .unwrap_or(0);
            if attempts > 0 {
                let backoff = job.manifest.spec.retry_backoff_ms << (attempts - 1).min(16);
                job.eligible_at = Some(Instant::now() + Duration::from_millis(backoff));
            }
        }
        job.manifest.save(&job.path)?;
        if job.manifest.is_complete() && !job.manifest.store_committed {
            let inserts = runner::commit_job(
                &job.manifest,
                &job.nets,
                &mut state.admm_store,
                &mut state.ipm_store,
            );
            job.stats.inserts += inserts;
            job.manifest.store_committed = true;
            job.manifest.save(&job.path)?;
            state.admm_store.save(&self.dir.join("store-admm.json"))?;
            state.ipm_store.save(&self.dir.join("store-ipm.json"))?;
        }
        Ok(())
    }
}
