//! Job specifications: what a tenant submits to the daemon.
//!
//! A [`JobSpec`] is a fully self-describing unit of work — a named registry
//! case, a scenario-set recipe, a solver family, and scheduling/durability
//! knobs — chosen so the spec (not any in-memory state) is the job's source
//! of truth. The manifest persists the spec verbatim, and rebuilding the
//! scenario networks from it is deterministic, which is what lets a
//! restarted daemon resume a half-finished job and still produce bitwise
//! the results an uninterrupted run would have.

use gridsim_grid::network::{Case, Network};
use gridsim_grid::scenario::ScenarioSet;
use gridsim_grid::GridError;

/// A registry case the daemon can serve. Unit-variant so the spec encodes
/// the case by name, never by value — the registry is the source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CaseName {
    /// Two-bus didactic case.
    TwoBus,
    /// PJM 5-bus case.
    Case5,
    /// WSCC 9-bus case.
    Case9,
    /// IEEE 14-bus case.
    Case14,
    /// 30-bus synthetic in the IEEE 30 style.
    Case30Like,
}

impl CaseName {
    /// Build the base [`Case`] from the registry.
    pub fn base(&self) -> Case {
        match self {
            CaseName::TwoBus => gridsim_grid::two_bus(),
            CaseName::Case5 => gridsim_grid::case5(),
            CaseName::Case9 => gridsim_grid::case9(),
            CaseName::Case14 => gridsim_grid::case14(),
            CaseName::Case30Like => gridsim_grid::case30_like(),
        }
    }

    /// Stable identifier — the store/case-id key for this case.
    pub fn id(&self) -> &'static str {
        match self {
            CaseName::TwoBus => "two_bus",
            CaseName::Case5 => "case5",
            CaseName::Case9 => "case9",
            CaseName::Case14 => "case14",
            CaseName::Case30Like => "case30_like",
        }
    }
}

/// Scenario-set recipe kind; parameters live flat in [`ScenarioSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ScenarioKind {
    /// Monotone load ramp from `lo` to `hi` (uniform scale factors).
    LoadRamp,
    /// Per-bus multiplicative load noise with `sigma` and `seed`.
    PerturbedLoads,
    /// Single-branch (N−1) outages of the first `count` removable branches.
    BranchOutages,
}

/// How to generate the job's scenario set from the base case. Parameters
/// not used by the chosen kind are ignored (the struct is flat because the
/// manifest format only encodes unit-variant enums).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioSpec {
    /// Which recipe to run.
    pub kind: ScenarioKind,
    /// Number of scenarios.
    pub count: usize,
    /// Ramp lower scale factor (`LoadRamp`).
    pub lo: f64,
    /// Ramp upper scale factor (`LoadRamp`).
    pub hi: f64,
    /// Relative load noise (`PerturbedLoads`).
    pub sigma: f64,
    /// RNG seed (`PerturbedLoads`).
    pub seed: u64,
}

impl ScenarioSpec {
    /// A `count`-step load ramp over `[lo, hi]`.
    pub fn load_ramp(count: usize, lo: f64, hi: f64) -> ScenarioSpec {
        ScenarioSpec {
            kind: ScenarioKind::LoadRamp,
            count,
            lo,
            hi,
            sigma: 0.0,
            seed: 0,
        }
    }

    /// `count` load-perturbed scenarios with relative noise `sigma`.
    pub fn perturbed(count: usize, sigma: f64, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            kind: ScenarioKind::PerturbedLoads,
            count,
            lo: 1.0,
            hi: 1.0,
            sigma,
            seed,
        }
    }

    /// The first `count` single-branch outages.
    pub fn outages(count: usize) -> ScenarioSpec {
        ScenarioSpec {
            kind: ScenarioKind::BranchOutages,
            count,
            lo: 1.0,
            hi: 1.0,
            sigma: 0.0,
            seed: 0,
        }
    }

    /// Instantiate the scenario set for `base`.
    pub fn build(&self, base: Case) -> ScenarioSet {
        match self.kind {
            ScenarioKind::LoadRamp => ScenarioSet::load_ramp(base, self.count, self.lo, self.hi),
            ScenarioKind::PerturbedLoads => {
                ScenarioSet::perturbed_loads(base, self.count, self.sigma, self.seed)
            }
            ScenarioKind::BranchOutages => ScenarioSet::branch_outages(base, self.count),
        }
    }
}

/// Which fleet solver executes the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SolverFamily {
    /// Batched two-level ADMM ([`gridsim_admm::scenario::ScenarioScheduler`]).
    Admm,
    /// Interior-point fleet ([`gridsim_ipm::IpmFleetSolver`]).
    Ipm,
}

/// One queued unit of work: scenario set + solver family + scheduling and
/// durability knobs. See the [module docs](self) for the determinism role.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobSpec {
    /// Tenant-chosen job name; doubles as the manifest file stem, so it
    /// must be unique within one daemon state directory.
    pub name: String,
    /// Registry case to solve.
    pub case: CaseName,
    /// Uniform load scale applied to the base case before the recipe.
    pub load_scale: f64,
    /// Scenario-set recipe.
    pub scenarios: ScenarioSpec,
    /// Fleet solver family.
    pub solver: SolverFamily,
    /// Scheduling priority: higher runs first (ties: submission order).
    pub priority: i64,
    /// Scenarios per durability chunk — one chunk is one fleet run and one
    /// manifest flush, so it is both the resume granule and the unit the
    /// scheduler allocates lanes to.
    pub chunk_size: usize,
    /// Per-job cap on concurrently running chunks (0 = uncapped): the
    /// backpressure knob that stops one tenant from monopolizing the fleet.
    pub max_lanes: usize,
    /// Re-solve attempts for a scenario that fails to converge, beyond the
    /// first (0 = fail immediately).
    pub max_retries: usize,
    /// Base retry backoff in milliseconds; doubles per failed attempt.
    pub retry_backoff_ms: u64,
}

impl JobSpec {
    /// A spec with neutral defaults: priority 0, chunk size 4, uncapped
    /// lanes, one retry with 10 ms backoff, unit load scale.
    pub fn new(
        name: impl Into<String>,
        case: CaseName,
        scenarios: ScenarioSpec,
        solver: SolverFamily,
    ) -> JobSpec {
        JobSpec {
            name: name.into(),
            case,
            load_scale: 1.0,
            scenarios,
            solver,
            priority: 0,
            chunk_size: 4,
            max_lanes: 0,
            max_retries: 1,
            retry_backoff_ms: 10,
        }
    }

    /// Set the scheduling priority (builder style).
    pub fn priority(mut self, priority: i64) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Set the durability chunk size (builder style).
    pub fn chunk_size(mut self, chunk_size: usize) -> JobSpec {
        assert!(chunk_size >= 1, "chunk_size must be at least 1");
        self.chunk_size = chunk_size;
        self
    }

    /// Set the per-job concurrent-chunk cap (builder style; 0 = uncapped).
    pub fn max_lanes(mut self, max_lanes: usize) -> JobSpec {
        self.max_lanes = max_lanes;
        self
    }

    /// Set the retry policy (builder style).
    pub fn retries(mut self, max_retries: usize, backoff_ms: u64) -> JobSpec {
        self.max_retries = max_retries;
        self.retry_backoff_ms = backoff_ms;
        self
    }

    /// Set the base-case load scale (builder style).
    pub fn load_scale(mut self, factor: f64) -> JobSpec {
        self.load_scale = factor;
        self
    }

    /// Compile the job's scenario networks, in scenario order. Pure
    /// function of the spec — the resume determinism anchor.
    pub fn networks(&self) -> Result<Vec<Network>, GridError> {
        let base = if self.load_scale == 1.0 {
            self.case.base()
        } else {
            self.case.base().scale_load(self.load_scale)
        };
        self.scenarios.build(base).networks()
    }

    /// Sanity-check the knobs; called on submit so a bad spec is rejected
    /// before it is enqueued.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("job name must be non-empty".to_string());
        }
        if !self
            .name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "job name `{}` must be alphanumeric with `-`/`_` (it names the manifest file)",
                self.name
            ));
        }
        if self.scenarios.count == 0 {
            return Err("scenario count must be at least 1".to_string());
        }
        if self.chunk_size == 0 {
            return Err("chunk_size must be at least 1".to_string());
        }
        if !(self.load_scale.is_finite() && self.load_scale > 0.0) {
            return Err("load_scale must be positive and finite".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = JobSpec::new(
            "night-ramp",
            CaseName::Case9,
            ScenarioSpec::load_ramp(6, 0.9, 1.1),
            SolverFamily::Admm,
        )
        .priority(3)
        .chunk_size(2)
        .max_lanes(1)
        .retries(2, 50);
        let text = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn networks_are_deterministic_and_sized_by_count() {
        let spec = JobSpec::new(
            "p",
            CaseName::Case9,
            ScenarioSpec::perturbed(5, 0.02, 7),
            SolverFamily::Ipm,
        );
        let a = spec.networks().unwrap();
        let b = spec.networks().unwrap();
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            let fx = gridsim_store::ScenarioFingerprint::of_network(x);
            let fy = gridsim_store::ScenarioFingerprint::of_network(y);
            assert_eq!(fx.structure, fy.structure);
            assert_eq!(
                fx.loads.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                fy.loads.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let good = JobSpec::new(
            "ok-job_1",
            CaseName::Case5,
            ScenarioSpec::outages(2),
            SolverFamily::Admm,
        );
        assert!(good.validate().is_ok());
        let mut bad = good.clone();
        bad.name = "has space".to_string();
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.scenarios.count = 0;
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.chunk_size = 0;
        assert!(bad.validate().is_err());
    }
}
