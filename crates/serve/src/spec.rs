//! Job specifications: what a tenant submits to the daemon.
//!
//! A [`JobSpec`] is a fully self-describing unit of work — a named registry
//! case, a scenario-set recipe, a solver family, and scheduling/durability
//! knobs — chosen so the spec (not any in-memory state) is the job's source
//! of truth. The manifest persists the spec verbatim, and rebuilding the
//! scenario networks from it is deterministic, which is what lets a
//! restarted daemon resume a half-finished job and still produce bitwise
//! the results an uninterrupted run would have.

use gridsim_grid::contingency::ContingencySpec;
use gridsim_grid::network::{Case, Network};
use gridsim_grid::scenario::ScenarioSet;
use gridsim_grid::GridError;

/// A registry case the daemon can serve. Unit-variant so the spec encodes
/// the case by name, never by value — the registry is the source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CaseName {
    /// Two-bus didactic case.
    TwoBus,
    /// PJM 5-bus case.
    Case5,
    /// WSCC 9-bus case.
    Case9,
    /// IEEE 14-bus case.
    Case14,
    /// 30-bus synthetic in the IEEE 30 style.
    Case30Like,
}

impl CaseName {
    /// Build the base [`Case`] from the registry.
    pub fn base(&self) -> Case {
        match self {
            CaseName::TwoBus => gridsim_grid::two_bus(),
            CaseName::Case5 => gridsim_grid::case5(),
            CaseName::Case9 => gridsim_grid::case9(),
            CaseName::Case14 => gridsim_grid::case14(),
            CaseName::Case30Like => gridsim_grid::case30_like(),
        }
    }

    /// Stable identifier — the store/case-id key for this case.
    pub fn id(&self) -> &'static str {
        match self {
            CaseName::TwoBus => "two_bus",
            CaseName::Case5 => "case5",
            CaseName::Case9 => "case9",
            CaseName::Case14 => "case14",
            CaseName::Case30Like => "case30_like",
        }
    }
}

/// Scenario-set recipe kind; parameters live flat in [`ScenarioSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ScenarioKind {
    /// Monotone load ramp from `lo` to `hi` (uniform scale factors).
    LoadRamp,
    /// Per-bus multiplicative load noise with `sigma` and `seed`.
    PerturbedLoads,
    /// Single-branch (N−1) outages of the first `count` removable branches.
    BranchOutages,
    /// Spec-driven N−k contingency expansion: a load-level grid (`levels`
    /// levels over `[lo, hi]`) × seeded perturbation draws (`draws`,
    /// `sigma`, `seed`) × outage columns (`count` N−1 branches, `n2_pairs`
    /// branch pairs, `gen_outages` generator outages, plus the base
    /// column). See [`gridsim_grid::contingency::ContingencySpec`].
    Contingency,
}

/// How to generate the job's scenario set from the base case. Parameters
/// not used by the chosen kind are ignored (the struct is flat because the
/// manifest format only encodes unit-variant enums).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioSpec {
    /// Which recipe to run.
    pub kind: ScenarioKind,
    /// Number of scenarios (`LoadRamp`, `PerturbedLoads`, `BranchOutages`);
    /// for `Contingency` it caps the N−1 outage columns instead.
    pub count: usize,
    /// Ramp lower scale factor (`LoadRamp`, `Contingency`).
    pub lo: f64,
    /// Ramp upper scale factor (`LoadRamp`, `Contingency`).
    pub hi: f64,
    /// Relative load noise (`PerturbedLoads`, `Contingency`).
    pub sigma: f64,
    /// RNG seed (`PerturbedLoads`, `Contingency`).
    pub seed: u64,
    /// Load levels in the contingency grid (`Contingency`).
    pub levels: usize,
    /// Perturbation draws per load level (`Contingency`).
    pub draws: usize,
    /// Cap on N−2 branch-pair outage columns (`Contingency`).
    pub n2_pairs: usize,
    /// Cap on generator-outage columns (`Contingency`).
    pub gen_outages: usize,
}

impl ScenarioSpec {
    /// A `count`-step load ramp over `[lo, hi]`.
    pub fn load_ramp(count: usize, lo: f64, hi: f64) -> ScenarioSpec {
        ScenarioSpec {
            kind: ScenarioKind::LoadRamp,
            count,
            lo,
            hi,
            sigma: 0.0,
            seed: 0,
            levels: 0,
            draws: 0,
            n2_pairs: 0,
            gen_outages: 0,
        }
    }

    /// `count` load-perturbed scenarios with relative noise `sigma`.
    pub fn perturbed(count: usize, sigma: f64, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            kind: ScenarioKind::PerturbedLoads,
            count,
            lo: 1.0,
            hi: 1.0,
            sigma,
            seed,
            levels: 0,
            draws: 0,
            n2_pairs: 0,
            gen_outages: 0,
        }
    }

    /// The first `count` single-branch outages.
    pub fn outages(count: usize) -> ScenarioSpec {
        ScenarioSpec {
            kind: ScenarioKind::BranchOutages,
            count,
            lo: 1.0,
            hi: 1.0,
            sigma: 0.0,
            seed: 0,
            levels: 0,
            draws: 0,
            n2_pairs: 0,
            gen_outages: 0,
        }
    }

    /// A full N−k contingency expansion: `levels` load levels over
    /// `[lo, hi]`, `draws` seeded perturbation draws per level, and outage
    /// columns capped at `n1` single branches, `n2_pairs` branch pairs,
    /// and `gen_outages` generator outages (plus the no-outage column).
    #[allow(clippy::too_many_arguments)]
    pub fn contingency(
        levels: usize,
        lo: f64,
        hi: f64,
        draws: usize,
        sigma: f64,
        seed: u64,
        n1: usize,
        n2_pairs: usize,
        gen_outages: usize,
    ) -> ScenarioSpec {
        ScenarioSpec {
            kind: ScenarioKind::Contingency,
            count: n1,
            lo,
            hi,
            sigma,
            seed,
            levels,
            draws,
            n2_pairs,
            gen_outages,
        }
    }

    /// The equivalent [`ContingencySpec`] of a `Contingency` recipe.
    pub fn contingency_spec(&self) -> ContingencySpec {
        let mut spec = ContingencySpec::load_grid(self.levels.max(1), self.lo, self.hi).outages(
            self.count,
            self.n2_pairs,
            self.gen_outages,
        );
        if self.draws > 0 {
            spec = spec.perturbed(self.draws, self.sigma, self.seed);
        }
        spec
    }

    /// Number of scenarios the recipe expands to for `base`. Matches
    /// [`build`](Self::build)'s set length without instantiating it.
    pub fn total(&self, base: &Case) -> usize {
        match self.kind {
            ScenarioKind::Contingency => self.contingency_spec().count(base),
            _ => self.count,
        }
    }

    /// Instantiate the scenario set for `base`.
    pub fn build(&self, base: Case) -> ScenarioSet {
        match self.kind {
            ScenarioKind::LoadRamp => ScenarioSet::load_ramp(base, self.count, self.lo, self.hi),
            ScenarioKind::PerturbedLoads => {
                ScenarioSet::perturbed_loads(base, self.count, self.sigma, self.seed)
            }
            ScenarioKind::BranchOutages => ScenarioSet::branch_outages(base, self.count),
            ScenarioKind::Contingency => self.contingency_spec().expand(&base),
        }
    }
}

/// Which fleet solver executes the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SolverFamily {
    /// Batched two-level ADMM ([`gridsim_admm::scenario::ScenarioScheduler`]).
    Admm,
    /// Interior-point fleet ([`gridsim_ipm::IpmFleetSolver`]).
    Ipm,
}

/// One queued unit of work: scenario set + solver family + scheduling and
/// durability knobs. See the [module docs](self) for the determinism role.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobSpec {
    /// Tenant-chosen job name; doubles as the manifest file stem, so it
    /// must be unique within one daemon state directory.
    pub name: String,
    /// Registry case to solve.
    pub case: CaseName,
    /// Uniform load scale applied to the base case before the recipe.
    pub load_scale: f64,
    /// Scenario-set recipe.
    pub scenarios: ScenarioSpec,
    /// Fleet solver family.
    pub solver: SolverFamily,
    /// Scheduling priority: higher runs first (ties: submission order).
    pub priority: i64,
    /// Scenarios per durability chunk — one chunk is one fleet run and one
    /// manifest flush, so it is both the resume granule and the unit the
    /// scheduler allocates lanes to.
    pub chunk_size: usize,
    /// Per-job cap on concurrently running chunks (0 = uncapped): the
    /// backpressure knob that stops one tenant from monopolizing the fleet.
    pub max_lanes: usize,
    /// Re-solve attempts for a scenario that fails to converge, beyond the
    /// first (0 = fail immediately).
    pub max_retries: usize,
    /// Base retry backoff in milliseconds; doubles per failed attempt.
    pub retry_backoff_ms: u64,
    /// Run each chunk through the contingency screening funnel
    /// ([`gridsim_screen::ContingencyFunnel`]) instead of a flat
    /// full-tolerance solve: scenarios the cheap pass certifies benign keep
    /// their screening result, the rest graduate to the full solve seeded
    /// from their screening solutions. ADMM jobs only.
    pub screen: bool,
    /// Screening margin at or below which a scenario is benign
    /// (`screen` jobs).
    pub benign_threshold: f64,
    /// Screening margin at or above which a scenario is violating
    /// (`screen` jobs).
    pub violating_threshold: f64,
}

impl JobSpec {
    /// A spec with neutral defaults: priority 0, chunk size 4, uncapped
    /// lanes, one retry with 10 ms backoff, unit load scale.
    pub fn new(
        name: impl Into<String>,
        case: CaseName,
        scenarios: ScenarioSpec,
        solver: SolverFamily,
    ) -> JobSpec {
        JobSpec {
            name: name.into(),
            case,
            load_scale: 1.0,
            scenarios,
            solver,
            priority: 0,
            chunk_size: 4,
            max_lanes: 0,
            max_retries: 1,
            retry_backoff_ms: 10,
            screen: false,
            benign_threshold: gridsim_screen::DEFAULT_BENIGN_THRESHOLD,
            violating_threshold: gridsim_screen::DEFAULT_VIOLATING_THRESHOLD,
        }
    }

    /// Enable the screening funnel with explicit band thresholds (builder
    /// style; ADMM jobs only — rejected by [`validate`](JobSpec::validate)
    /// otherwise).
    pub fn screened(mut self, benign_threshold: f64, violating_threshold: f64) -> JobSpec {
        self.screen = true;
        self.benign_threshold = benign_threshold;
        self.violating_threshold = violating_threshold;
        self
    }

    /// Set the scheduling priority (builder style).
    pub fn priority(mut self, priority: i64) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Set the durability chunk size (builder style).
    pub fn chunk_size(mut self, chunk_size: usize) -> JobSpec {
        assert!(chunk_size >= 1, "chunk_size must be at least 1");
        self.chunk_size = chunk_size;
        self
    }

    /// Set the per-job concurrent-chunk cap (builder style; 0 = uncapped).
    pub fn max_lanes(mut self, max_lanes: usize) -> JobSpec {
        self.max_lanes = max_lanes;
        self
    }

    /// Set the retry policy (builder style).
    pub fn retries(mut self, max_retries: usize, backoff_ms: u64) -> JobSpec {
        self.max_retries = max_retries;
        self.retry_backoff_ms = backoff_ms;
        self
    }

    /// Set the base-case load scale (builder style).
    pub fn load_scale(mut self, factor: f64) -> JobSpec {
        self.load_scale = factor;
        self
    }

    fn scaled_base(&self) -> Case {
        if self.load_scale == 1.0 {
            self.case.base()
        } else {
            self.case.base().scale_load(self.load_scale)
        }
    }

    /// Number of scenarios the job expands to — the manifest's record
    /// arity. Pure function of the spec, like [`networks`](Self::networks).
    pub fn scenario_count(&self) -> usize {
        self.scenarios.total(&self.scaled_base())
    }

    /// Compile the job's scenario networks, in scenario order. Pure
    /// function of the spec — the resume determinism anchor.
    pub fn networks(&self) -> Result<Vec<Network>, GridError> {
        self.scenarios.build(self.scaled_base()).networks()
    }

    /// Sanity-check the knobs; called on submit so a bad spec is rejected
    /// before it is enqueued.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("job name must be non-empty".to_string());
        }
        if !self
            .name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "job name `{}` must be alphanumeric with `-`/`_` (it names the manifest file)",
                self.name
            ));
        }
        match self.scenarios.kind {
            ScenarioKind::Contingency => {
                if self.scenarios.levels == 0 {
                    return Err("contingency recipe needs at least one load level".to_string());
                }
                self.scenarios
                    .contingency_spec()
                    .validate()
                    .map_err(|e| format!("contingency recipe: {e}"))?;
            }
            _ => {
                if self.scenarios.count == 0 {
                    return Err("scenario count must be at least 1".to_string());
                }
            }
        }
        if self.chunk_size == 0 {
            return Err("chunk_size must be at least 1".to_string());
        }
        if !(self.load_scale.is_finite() && self.load_scale > 0.0) {
            return Err("load_scale must be positive and finite".to_string());
        }
        if self.screen {
            if self.solver != SolverFamily::Admm {
                return Err(
                    "the screening funnel requires the Admm solver family (the manifest \
                     records one result type per job)"
                        .to_string(),
                );
            }
            let cfg = gridsim_screen::FunnelConfig {
                benign_threshold: self.benign_threshold,
                violating_threshold: self.violating_threshold,
                ..Default::default()
            };
            cfg.validate()
                .map_err(|e| format!("funnel thresholds: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = JobSpec::new(
            "night-ramp",
            CaseName::Case9,
            ScenarioSpec::load_ramp(6, 0.9, 1.1),
            SolverFamily::Admm,
        )
        .priority(3)
        .chunk_size(2)
        .max_lanes(1)
        .retries(2, 50);
        let text = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn networks_are_deterministic_and_sized_by_count() {
        let spec = JobSpec::new(
            "p",
            CaseName::Case9,
            ScenarioSpec::perturbed(5, 0.02, 7),
            SolverFamily::Ipm,
        );
        let a = spec.networks().unwrap();
        let b = spec.networks().unwrap();
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            let fx = gridsim_store::ScenarioFingerprint::of_network(x);
            let fy = gridsim_store::ScenarioFingerprint::of_network(y);
            assert_eq!(fx.structure, fy.structure);
            assert_eq!(
                fx.loads.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                fy.loads.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn contingency_spec_round_trips_and_expands() {
        let spec = JobSpec::new(
            "sweep",
            CaseName::Case14,
            ScenarioSpec::contingency(3, 0.95, 1.05, 2, 0.02, 42, 4, 3, 2),
            SolverFamily::Admm,
        )
        .screened(0.02, 0.1);
        assert!(spec.validate().is_ok());
        let text = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
        // levels × (1 + draws) × (base + n1 + n2 + gens) scenario networks.
        let nets = spec.networks().unwrap();
        let expected = spec.scenarios.contingency_spec().count(&spec.case.base());
        assert_eq!(nets.len(), expected);
        assert!(nets.len() >= 3 * 3 * 5);
    }

    #[test]
    fn screen_requires_admm_and_ordered_thresholds() {
        let base = JobSpec::new(
            "s",
            CaseName::Case9,
            ScenarioSpec::contingency(2, 0.95, 1.05, 1, 0.02, 7, 3, 0, 1),
            SolverFamily::Admm,
        );
        assert!(base.clone().screened(0.02, 0.1).validate().is_ok());
        let mut ipm = base.clone().screened(0.02, 0.1);
        ipm.solver = SolverFamily::Ipm;
        assert!(ipm.validate().is_err());
        assert!(base.clone().screened(0.1, 0.1).validate().is_err());
        assert!(base.screened(f64::NAN, 0.1).validate().is_err());
    }

    #[test]
    fn contingency_validation_catches_bad_recipes() {
        let mut spec = JobSpec::new(
            "c",
            CaseName::Case9,
            ScenarioSpec::contingency(2, 0.95, 1.05, 1, 0.02, 7, 3, 0, 1),
            SolverFamily::Admm,
        );
        spec.scenarios.levels = 0;
        assert!(spec.validate().is_err());
        spec.scenarios.levels = 2;
        spec.scenarios.sigma = 0.0; // draws without noise
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let good = JobSpec::new(
            "ok-job_1",
            CaseName::Case5,
            ScenarioSpec::outages(2),
            SolverFamily::Admm,
        );
        assert!(good.validate().is_ok());
        let mut bad = good.clone();
        bad.name = "has space".to_string();
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.scenarios.count = 0;
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.chunk_size = 0;
        assert!(bad.validate().is_err());
    }
}
