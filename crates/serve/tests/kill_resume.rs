//! The acceptance contract of the daemon binary: `kill -9` a running
//! `gridsim-served` mid-batch, restart it on the same state directory, and
//! the drained results are bitwise identical to an uninterrupted run, with
//! no finished scenario re-solved.

use gridsim_serve::{JobManifest, ScenarioState, THROTTLE_ENV};
use serde::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_gridsim-served");

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridsim-served-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn submit(dir: &Path) {
    let status = Command::new(BIN)
        .args(["--dir", dir.to_str().unwrap()])
        .args(["submit", "killjob", "case9", "perturbed", "6", "ipm"])
        .args(["--chunk-size", "1", "--sigma", "0.01", "--seed", "3"])
        .status()
        .expect("spawn gridsim-served submit");
    assert!(status.success(), "submit failed");
}

fn run_to_completion(dir: &Path) {
    let status = Command::new(BIN)
        .args(["--dir", dir.to_str().unwrap()])
        .args(["run", "--slots", "1"])
        .env_remove(THROTTLE_ENV)
        .status()
        .expect("spawn gridsim-served run");
    assert!(status.success(), "run failed");
}

/// Drop wall-clock fields so result trees compare bitwise across runs.
fn strip_times(v: &Value) -> Value {
    match v {
        Value::Map(entries) => Value::Map(
            entries
                .iter()
                .filter(|(k, _)| k != "solve_time")
                .map(|(k, val)| (k.clone(), strip_times(val)))
                .collect(),
        ),
        Value::Seq(items) => Value::Seq(items.iter().map(strip_times).collect()),
        other => other.clone(),
    }
}

#[test]
fn sigkill_mid_batch_resumes_without_resolving_finished_scenarios() {
    // Reference: uninterrupted run of the identical job.
    let ref_dir = fresh_dir("ref");
    submit(&ref_dir);
    run_to_completion(&ref_dir);
    let reference = JobManifest::load(&ref_dir.join("jobs/killjob.json")).unwrap();
    assert!(reference.is_complete());
    assert_eq!(reference.counts().done, 6, "reference run failed scenarios");

    // Victim: throttled so every chunk takes ≥ 400 ms, killed -9 once the
    // manifest shows partial progress.
    let kill_dir = fresh_dir("kill");
    submit(&kill_dir);
    let mut child = Command::new(BIN)
        .args(["--dir", kill_dir.to_str().unwrap()])
        .args(["run", "--slots", "1"])
        .env(THROTTLE_ENV, "400")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn throttled gridsim-served run");

    let manifest_path = kill_dir.join("jobs/killjob.json");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mid = loop {
        assert!(Instant::now() < deadline, "daemon made no progress to kill");
        std::thread::sleep(Duration::from_millis(25));
        if let Ok(m) = JobManifest::load(&manifest_path) {
            let done = m.counts().done;
            if done >= 1 && !m.is_complete() {
                break m;
            }
            assert!(!m.is_complete(), "daemon finished before the kill landed");
        }
    };
    child.kill().expect("SIGKILL the daemon"); // SIGKILL on unix
    child.wait().unwrap();

    // The on-disk ledger is a consistent partial state.
    let finished_early: Vec<usize> = (0..6)
        .filter(|&i| mid.records[i].state == ScenarioState::Done)
        .collect();
    assert!(!finished_early.is_empty());

    // Restart on the same directory and drain.
    run_to_completion(&kill_dir);
    let resumed = JobManifest::load(&manifest_path).unwrap();
    assert!(resumed.is_complete() && resumed.store_committed);

    // No finished scenario was re-solved: attempts unchanged and the
    // recorded values are the very bytes that were on disk at kill time.
    for &i in &finished_early {
        assert_eq!(resumed.records[i].attempts, mid.records[i].attempts);
        assert_eq!(
            resumed.results[i], mid.results[i],
            "scenario {i} was re-solved after the kill"
        );
    }

    // Bitwise identity with the uninterrupted run (modulo wall-clock).
    assert_eq!(resumed.records, reference.records);
    for i in 0..6 {
        assert_eq!(
            resumed.results[i].as_ref().map(strip_times),
            reference.results[i].as_ref().map(strip_times),
            "scenario {i} differs from the uninterrupted run"
        );
    }
    // The committed store snapshots agree bitwise too (solver state only —
    // no wall-clock fields are persisted in warm-start payloads).
    assert_eq!(
        std::fs::read_to_string(kill_dir.join("store-ipm.json")).unwrap(),
        std::fs::read_to_string(ref_dir.join("store-ipm.json")).unwrap()
    );
}
