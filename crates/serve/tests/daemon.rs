//! Daemon behavior: scheduling order, backpressure, retries, store
//! snapshot freezing, and the crash/resume bitwise contract (in-process
//! via the controlled-interruption hook; the separate `kill_resume` suite
//! drives the real binary with SIGKILL).

use gridsim_serve::{
    CaseName, JobManifest, JobSpec, ScenarioSpec, ScenarioState, ServeDaemon, SolverFamily,
};
use serde::Value;
use std::path::PathBuf;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridsim-serve-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drop wall-clock fields so result trees compare bitwise across runs.
fn strip_times(v: &Value) -> Value {
    match v {
        Value::Map(entries) => Value::Map(
            entries
                .iter()
                .filter(|(k, _)| k != "solve_time")
                .map(|(k, val)| (k.clone(), strip_times(val)))
                .collect(),
        ),
        Value::Seq(items) => Value::Seq(items.iter().map(strip_times).collect()),
        other => other.clone(),
    }
}

fn results_without_times(m: &JobManifest) -> Vec<Option<Value>> {
    m.results
        .iter()
        .map(|r| r.as_ref().map(strip_times))
        .collect()
}

#[test]
fn drains_jobs_and_reports_status() {
    let dir = fresh_dir("drain");
    let daemon = ServeDaemon::open(&dir, 2).unwrap();
    let ipm = daemon
        .submit(
            JobSpec::new(
                "ipm-job",
                CaseName::Case9,
                ScenarioSpec::perturbed(3, 0.01, 11),
                SolverFamily::Ipm,
            )
            .chunk_size(2),
        )
        .unwrap();
    let admm = daemon
        .submit(
            JobSpec::new(
                "admm-job",
                CaseName::Case9,
                ScenarioSpec::load_ramp(2, 0.98, 1.02),
                SolverFamily::Admm,
            )
            .chunk_size(1),
        )
        .unwrap();
    assert_eq!(ipm.status().counts.pending, 3);
    daemon.run_until_idle().unwrap();

    for handle in [&ipm, &admm] {
        let s = handle.status();
        assert!(s.complete, "{} incomplete: {:?}", s.name, s.counts);
        assert_eq!(s.counts.failed, 0, "{}", s.name);
        assert_eq!(s.counts.pending, 0);
        assert!(s.store_committed);
        assert_eq!(s.store.inserts, s.counts.done);
    }
    // The ledger on disk agrees and every scenario took exactly one attempt.
    let m = JobManifest::load(&dir.join("jobs/ipm-job.json")).unwrap();
    assert!(m.records.iter().all(|r| r.attempts == 1));
    assert!(m.records.iter().all(|r| r.state == ScenarioState::Done));
    // Both family stores were flushed.
    assert!(dir.join("store-ipm.json").exists());
    assert!(dir.join("store-admm.json").exists());
    // Duplicate names are rejected.
    let err = daemon
        .submit(JobSpec::new(
            "ipm-job",
            CaseName::Case9,
            ScenarioSpec::outages(1),
            SolverFamily::Ipm,
        ))
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
}

#[test]
fn interrupted_run_resumes_bitwise_identical_without_resolving() {
    let spec = || {
        JobSpec::new(
            "ramp",
            CaseName::Case9,
            ScenarioSpec::load_ramp(5, 0.95, 1.05),
            SolverFamily::Admm,
        )
        .chunk_size(2)
    };

    // Reference: one uninterrupted drain.
    let ref_dir = fresh_dir("resume-ref");
    let daemon = ServeDaemon::open(&ref_dir, 1).unwrap();
    daemon.submit(spec()).unwrap();
    daemon.run_until_idle().unwrap();
    let reference = JobManifest::load(&ref_dir.join("jobs/ramp.json")).unwrap();

    // Interrupted: run exactly one chunk, drop the daemon (as a kill
    // would), reopen the directory, drain.
    let dir = fresh_dir("resume-cut");
    let daemon = ServeDaemon::open(&dir, 1).unwrap();
    daemon.submit(spec()).unwrap();
    let done_chunks = daemon.run_chunks(1).unwrap();
    assert_eq!(done_chunks, 1);
    drop(daemon);
    let mid = JobManifest::load(&dir.join("jobs/ramp.json")).unwrap();
    let finished_early: Vec<usize> = (0..5)
        .filter(|&i| mid.records[i].state == ScenarioState::Done)
        .collect();
    assert!(!finished_early.is_empty(), "one chunk should have finished");
    assert!(!mid.is_complete());

    let daemon = ServeDaemon::open(&dir, 1).unwrap();
    daemon.run_until_idle().unwrap();
    let resumed = JobManifest::load(&dir.join("jobs/ramp.json")).unwrap();

    // Scenarios finished before the cut were not re-solved: attempts
    // unchanged and the recorded result values are the very ones on disk
    // at the cut point.
    for &i in &finished_early {
        assert_eq!(resumed.records[i].attempts, mid.records[i].attempts);
        assert_eq!(resumed.results[i], mid.results[i], "scenario {i} re-solved");
    }
    // And the full drained ledger matches the uninterrupted run bitwise.
    assert_eq!(
        results_without_times(&resumed),
        results_without_times(&reference)
    );
    assert_eq!(resumed.records, reference.records);
    // Deterministic store serialization: the flushed store files match too.
    assert_eq!(
        std::fs::read_to_string(dir.join("store-admm.json")).unwrap(),
        std::fs::read_to_string(ref_dir.join("store-admm.json")).unwrap()
    );
}

#[test]
fn screened_contingency_job_drains_and_is_deterministic() {
    let spec = || {
        JobSpec::new(
            "sweep",
            CaseName::Case9,
            ScenarioSpec::contingency(2, 0.97, 1.0, 2, 0.01, 7, 2, 0, 1),
            SolverFamily::Admm,
        )
        .screened(2e-2, 1e-1)
        .chunk_size(5)
    };

    let dir = fresh_dir("screen");
    let daemon = ServeDaemon::open(&dir, 2).unwrap();
    let handle = daemon.submit(spec()).unwrap();
    daemon.run_until_idle().unwrap();
    let s = handle.status();
    assert!(s.complete, "incomplete: {:?}", s.counts);
    assert_eq!(s.counts.failed, 0);
    assert!(s.store_committed);
    let m = JobManifest::load(&dir.join("jobs/sweep.json")).unwrap();
    // 2 levels x (uniform + 2 perturbed draws) x (base + 2 branch
    // outages + 1 gen outage).
    assert_eq!(m.records.len(), 24);
    assert!(m.records.iter().all(|r| r.state == ScenarioState::Done));
    // Every Done scenario carries a ScenarioResult the commit replayed.
    assert_eq!(s.store.inserts, 24);

    // Chunks mix benign (screening-only) and graduated scenarios, yet the
    // whole ledger is a pure function of the spec: a second daemon in a
    // fresh directory produces the same results bitwise.
    let dir2 = fresh_dir("screen-again");
    let daemon2 = ServeDaemon::open(&dir2, 1).unwrap();
    daemon2.submit(spec()).unwrap();
    daemon2.run_until_idle().unwrap();
    let m2 = JobManifest::load(&dir2.join("jobs/sweep.json")).unwrap();
    assert_eq!(results_without_times(&m2), results_without_times(&m));
}

#[test]
fn priority_wins_the_first_free_slot() {
    let dir = fresh_dir("priority");
    let daemon = ServeDaemon::open(&dir, 1).unwrap();
    let low = daemon
        .submit(
            JobSpec::new(
                "low",
                CaseName::TwoBus,
                ScenarioSpec::load_ramp(2, 0.98, 1.0),
                SolverFamily::Ipm,
            )
            .chunk_size(1)
            .priority(0),
        )
        .unwrap();
    let high = daemon
        .submit(
            JobSpec::new(
                "high",
                CaseName::TwoBus,
                ScenarioSpec::load_ramp(2, 0.98, 1.0),
                SolverFamily::Ipm,
            )
            .chunk_size(1)
            .priority(5),
        )
        .unwrap();
    // One slot, one chunk: the later-submitted but higher-priority job runs.
    daemon.run_chunks(1).unwrap();
    assert_eq!(high.status().counts.done, 1);
    assert_eq!(low.status().counts.done, 0);
    daemon.run_until_idle().unwrap();
    assert!(high.status().complete && low.status().complete);
}

#[test]
fn lane_cap_diverts_slots_to_lower_priority_tenants() {
    let dir = fresh_dir("backpressure");
    let daemon = ServeDaemon::open(&dir, 2).unwrap();
    let capped = daemon
        .submit(
            JobSpec::new(
                "capped",
                CaseName::TwoBus,
                ScenarioSpec::load_ramp(3, 0.98, 1.0),
                SolverFamily::Ipm,
            )
            .chunk_size(1)
            .priority(10)
            .max_lanes(1),
        )
        .unwrap();
    let other = daemon
        .submit(
            JobSpec::new(
                "other",
                CaseName::TwoBus,
                ScenarioSpec::load_ramp(3, 0.98, 1.0),
                SolverFamily::Ipm,
            )
            .chunk_size(1)
            .priority(0),
        )
        .unwrap();
    // Two slots, but the high-priority job may only hold one: the first
    // scheduling round must give the second slot to the other tenant.
    daemon.run_chunks(2).unwrap();
    let (c, o) = (capped.status(), other.status());
    assert_eq!(c.counts.done, 1, "cap violated: {c:?}");
    assert_eq!(o.counts.done, 1, "slot wasted: {o:?}");
    daemon.run_until_idle().unwrap();
    assert!(capped.status().complete && other.status().complete);
}

#[test]
fn retries_back_off_and_exhaust_to_failed() {
    let dir = fresh_dir("retries");
    let daemon = ServeDaemon::open(&dir, 1).unwrap();
    // A hopeless job: two_bus at 40x load never converges.
    let handle = daemon
        .submit(
            JobSpec::new(
                "doomed",
                CaseName::TwoBus,
                ScenarioSpec::load_ramp(1, 1.0, 1.0),
                SolverFamily::Admm,
            )
            .load_scale(40.0)
            .retries(1, 20),
        )
        .unwrap();
    let t0 = std::time::Instant::now();
    daemon.run_until_idle().unwrap();
    assert!(
        t0.elapsed() >= std::time::Duration::from_millis(20),
        "retry backoff was not honored"
    );
    let s = handle.status();
    assert!(s.complete);
    assert_eq!(s.counts.failed, 1);
    assert_eq!(s.store.inserts, 0, "failed scenarios must not be committed");
    let m = JobManifest::load(&dir.join("jobs/doomed.json")).unwrap();
    assert_eq!(m.records[0].attempts, 2); // first try + one retry
    assert_eq!(m.records[0].state, ScenarioState::Failed);
    assert!(m.results[0].is_none());
}

#[test]
fn store_snapshots_freeze_at_submit_and_reuse_across_restarts() {
    let dir = fresh_dir("store-reuse");
    let daemon = ServeDaemon::open(&dir, 1).unwrap();
    let first = daemon
        .submit(
            JobSpec::new(
                "first",
                CaseName::Case9,
                ScenarioSpec::load_ramp(2, 0.99, 1.0),
                SolverFamily::Ipm,
            )
            .chunk_size(1),
        )
        .unwrap();
    // Submitted before `first` completes: its snapshot is empty, so even
    // though it runs after `first` commits, it must see zero hits.
    let second = daemon
        .submit(
            JobSpec::new(
                "second",
                CaseName::Case9,
                ScenarioSpec::load_ramp(2, 0.99, 1.0),
                SolverFamily::Ipm,
            )
            .chunk_size(1)
            .priority(-1),
        )
        .unwrap();
    daemon.run_until_idle().unwrap();
    assert_eq!(first.status().store.hits, 0);
    assert_eq!(
        second.status().store.hits,
        0,
        "snapshot not frozen at submit"
    );
    assert_eq!(first.status().store.inserts, 2);
    drop(daemon);

    // A fresh daemon loads the flushed store; a new identical job now
    // warm-starts from it.
    let daemon = ServeDaemon::open(&dir, 1).unwrap();
    let third = daemon
        .submit(
            JobSpec::new(
                "third",
                CaseName::Case9,
                ScenarioSpec::load_ramp(2, 0.99, 1.0),
                SolverFamily::Ipm,
            )
            .chunk_size(1),
        )
        .unwrap();
    daemon.run_until_idle().unwrap();
    let s = third.status();
    assert!(s.complete && s.counts.failed == 0);
    assert_eq!(s.store.hits, 2, "reloaded store gave no warm starts: {s:?}");
}
