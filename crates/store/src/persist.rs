//! Disk persistence for [`SolutionStore`]: a versioned JSON snapshot that
//! round-trips the store bitwise.
//!
//! The store is the one piece of fleet state worth keeping across process
//! lifetimes — it is exactly the accumulated warm-start capital the paper's
//! tracking experiment builds period over period. This module serializes a
//! store through the workspace serde shim's [`Value`] tree and writes it
//! with an atomic temp-file-plus-rename, so a daemon killed mid-flush never
//! leaves a truncated file behind.
//!
//! ## Determinism and bitwise fidelity
//!
//! Lookups are keyed by `(distance, insertion index)`, so persistence must
//! preserve *insertion order* exactly: groups are written sorted by
//! `(case id, structure, dim)` and entries in insertion order, and the norm
//! buckets — pure derived data — are rebuilt on load from each entry's
//! stored norm. Load coordinates and norms are `f64`s rendered by the
//! shortest-round-trip writer (negative zero and non-finite values
//! included), so a reloaded store answers every `nearest` query with the
//! same entry at the same bit-identical distance as the original.
//!
//! ## Versioning
//!
//! The snapshot carries a format version ([`FORMAT_VERSION`]); loading a
//! file with a different version fails with a descriptive error rather
//! than misinterpreting the bytes. Bump the version whenever the on-disk
//! shape of the tree changes.

use crate::{bucket_of, Group, GroupKey, SolutionStore, StoreConfig, StoredEntry};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// On-disk format version; see the [module docs](self) for the contract.
/// Version 2 added the eviction state: `max_entries` in the config, one
/// insertion stamp per entry, and the store-level `next_stamp` counter.
pub const FORMAT_VERSION: u64 = 2;

impl<P: Serialize> Serialize for SolutionStore<P> {
    fn to_value(&self) -> Value {
        let mut keys: Vec<&GroupKey> = self.groups.keys().collect();
        keys.sort_by(|a, b| {
            (a.case_id.as_str(), a.structure, a.dim).cmp(&(b.case_id.as_str(), b.structure, b.dim))
        });
        let groups = keys
            .into_iter()
            .map(|key| {
                let group = &self.groups[key];
                let entries = group
                    .entries
                    .iter()
                    .zip(&group.stamps)
                    .map(|(e, &stamp)| {
                        Value::Map(vec![
                            ("loads".to_string(), e.loads.to_value()),
                            ("norm".to_string(), e.norm.to_value()),
                            ("stamp".to_string(), Value::Num(stamp as f64)),
                            ("payload".to_string(), e.payload.to_value()),
                        ])
                    })
                    .collect();
                Value::Map(vec![
                    ("case_id".to_string(), Value::Str(key.case_id.clone())),
                    // u64 hashes exceed f64's exact-integer range, so the
                    // structure signature travels as a decimal string.
                    (
                        "structure".to_string(),
                        Value::Str(key.structure.to_string()),
                    ),
                    ("dim".to_string(), Value::Num(key.dim as f64)),
                    ("entries".to_string(), Value::Seq(entries)),
                ])
            })
            .collect();
        Value::Map(vec![
            ("version".to_string(), Value::Num(FORMAT_VERSION as f64)),
            (
                "config".to_string(),
                Value::Map(vec![
                    (
                        "max_relative_distance".to_string(),
                        self.config.max_relative_distance.to_value(),
                    ),
                    (
                        "bucket_width".to_string(),
                        self.config.bucket_width.to_value(),
                    ),
                    (
                        "max_entries".to_string(),
                        Value::Num(self.config.max_entries as f64),
                    ),
                ]),
            ),
            ("next_stamp".to_string(), Value::Num(self.next_stamp as f64)),
            ("groups".to_string(), Value::Seq(groups)),
        ])
    }
}

impl<P: Deserialize> Deserialize for SolutionStore<P> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let version: u64 = serde::field(v, "version")?;
        if version != FORMAT_VERSION {
            return Err(DeError::custom(format!(
                "solution store format version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let config_v = v
            .get("config")
            .ok_or_else(|| DeError::custom("missing field `config`"))?;
        let config = StoreConfig {
            max_relative_distance: serde::field(config_v, "max_relative_distance")?,
            bucket_width: serde::field(config_v, "bucket_width")?,
            max_entries: serde::field(config_v, "max_entries")?,
        };
        let next_stamp: u64 = serde::field(v, "next_stamp")?;
        let groups_v = match v.get("groups") {
            Some(Value::Seq(items)) => items,
            _ => return Err(DeError::custom("expected sequence for `groups`")),
        };
        let mut groups = HashMap::new();
        for gv in groups_v {
            let case_id: String = serde::field(gv, "case_id")?;
            let structure_s: String = serde::field(gv, "structure")?;
            let structure: u64 = structure_s
                .parse()
                .map_err(|_| DeError::custom("structure signature is not a u64"))?;
            let dim: usize = serde::field(gv, "dim")?;
            let entries_v = match gv.get("entries") {
                Some(Value::Seq(items)) => items,
                _ => return Err(DeError::custom("expected sequence for `entries`")),
            };
            let mut group = Group::new();
            for ev in entries_v {
                let loads: Vec<f64> = serde::field(ev, "loads")?;
                let norm: f64 = serde::field(ev, "norm")?;
                let stamp: u64 = serde::field(ev, "stamp")?;
                let payload_v = ev
                    .get("payload")
                    .ok_or_else(|| DeError::custom("missing field `payload`"))?;
                let payload = P::from_value(payload_v)
                    .map_err(|e| DeError::custom(format!("field `payload`: {e}")))?;
                let index = group.entries.len();
                group.entries.push(Arc::new(StoredEntry {
                    loads,
                    norm,
                    payload,
                }));
                group.stamps.push(stamp);
                group
                    .buckets
                    .entry(bucket_of(norm, config.bucket_width))
                    .or_default()
                    .push(index);
            }
            groups.insert(
                GroupKey {
                    case_id,
                    structure,
                    dim,
                },
                group,
            );
        }
        Ok(SolutionStore {
            config,
            groups,
            next_stamp,
        })
    }
}

impl<P: Serialize> SolutionStore<P> {
    /// Write the store to `path` atomically: serialize to `path` + `.tmp`
    /// in the same directory, then rename over the target. Readers never
    /// observe a partially written snapshot.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let text = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }
}

impl<P: Deserialize> SolutionStore<P> {
    /// Read a store previously written by [`SolutionStore::save`]. Fails
    /// with `InvalidData` on malformed JSON or a format-version mismatch.
    pub fn load(path: &Path) -> io::Result<SolutionStore<P>> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

impl<P: Deserialize + Serialize> SolutionStore<P> {
    /// [`load`](SolutionStore::load) if `path` exists, otherwise an empty
    /// store with default tuning — the daemon-startup idiom.
    pub fn load_or_default(path: &Path) -> io::Result<SolutionStore<P>> {
        if path.exists() {
            SolutionStore::load(path)
        } else {
            Ok(SolutionStore::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioFingerprint;

    fn fp(loads: &[f64], structure: u64) -> ScenarioFingerprint {
        ScenarioFingerprint {
            loads: loads.to_vec(),
            structure,
        }
    }

    fn sample_store() -> SolutionStore<f64> {
        let mut store = SolutionStore::with_config(StoreConfig {
            max_relative_distance: 0.2,
            bucket_width: 0.03,
            max_entries: 0,
        });
        // Several groups, several buckets, a replaced entry, and awkward
        // float values (negative zero, subnormal-ish magnitudes).
        store.insert("case9", &fp(&[1.0, 2.0, -0.0], 7), 10.5);
        store.insert("case9", &fp(&[1.01, 2.0, 0.0], 7), 11.5);
        store.insert("case9", &fp(&[1.0, 2.0, -0.0], 7), 12.5); // replace index 0
        store.insert("case9", &fp(&[0.25, 0.5], u64::MAX), f64::NEG_INFINITY);
        store.insert("case14", &fp(&[3.0, 1e-300, 4.0], 7), 0.125);
        store
    }

    #[test]
    fn round_trip_preserves_every_lookup_bitwise() {
        let store = sample_store();
        let dir = std::env::temp_dir().join("gridsim-store-persist-rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        store.save(&path).unwrap();
        let loaded: SolutionStore<f64> = SolutionStore::load(&path).unwrap();

        assert_eq!(loaded.len(), store.len());
        assert_eq!(loaded.group_count(), store.group_count());
        assert_eq!(loaded.config(), store.config());
        for q in [
            fp(&[1.005, 2.0, 0.0], 7),
            fp(&[1.0, 2.0, -0.0], 7),
            fp(&[0.26, 0.5], u64::MAX),
            fp(&[3.0, 0.0, 4.0], 7),
            fp(&[9.0, 9.0, 9.0], 7),
        ] {
            for case in ["case9", "case14"] {
                let a = store.nearest(case, &q);
                let b = loaded.nearest(case, &q);
                match (a, b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!(x.index, y.index);
                        assert_eq!(x.distance.to_bits(), y.distance.to_bits());
                        assert_eq!(x.entry.payload.to_bits(), y.entry.payload.to_bits());
                        assert_eq!(
                            x.entry
                                .loads
                                .iter()
                                .map(|f| f.to_bits())
                                .collect::<Vec<_>>(),
                            y.entry
                                .loads
                                .iter()
                                .map(|f| f.to_bits())
                                .collect::<Vec<_>>()
                        );
                    }
                    (x, y) => panic!("hit/miss disagree after reload: {x:?} vs {y:?}"),
                }
            }
        }
    }

    #[test]
    fn save_is_deterministic_text() {
        let store = sample_store();
        let a = serde_json::to_string(&store).unwrap();
        let b = serde_json::to_string(&sample_store()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let store = sample_store();
        let text = serde_json::to_string(&store).unwrap();
        let bumped = text.replacen("\"version\":2", "\"version\":3", 1);
        assert_ne!(text, bumped, "version field not found in snapshot");
        let err = serde_json::from_str::<SolutionStore<f64>>(&bumped).unwrap_err();
        assert!(err.to_string().contains("format version"), "{err}");
    }

    #[test]
    fn eviction_order_survives_a_round_trip() {
        let mut store = SolutionStore::with_config(StoreConfig {
            max_entries: 3,
            ..Default::default()
        });
        store.insert("c", &fp(&[1.0, 1.0], 7), 1.0);
        store.insert("c", &fp(&[2.0, 2.0], 7), 2.0);
        store.insert("c", &fp(&[3.0, 3.0], 7), 3.0);

        let dir = std::env::temp_dir().join("gridsim-store-persist-evict");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        store.save(&path).unwrap();
        let mut loaded: SolutionStore<f64> = SolutionStore::load(&path).unwrap();

        // The reloaded store continues the same eviction order: the next
        // insert evicts the oldest persisted entry, exactly as it would
        // have in the original process.
        loaded.insert("c", &fp(&[4.0, 4.0], 7), 4.0);
        store.insert("c", &fp(&[4.0, 4.0], 7), 4.0);
        assert_eq!(loaded.len(), 3);
        for (s, l) in [
            (
                store.nearest("c", &fp(&[1.0, 1.0], 7)),
                loaded.nearest("c", &fp(&[1.0, 1.0], 7)),
            ),
            (
                store.nearest("c", &fp(&[2.0, 2.0], 7)),
                loaded.nearest("c", &fp(&[2.0, 2.0], 7)),
            ),
        ] {
            assert_eq!(s.is_some(), l.is_some());
        }
        assert!(loaded.nearest("c", &fp(&[1.0, 1.0], 7)).is_none());
        assert!(loaded.nearest("c", &fp(&[4.0, 4.0], 7)).is_some());
    }

    #[test]
    fn load_or_default_handles_missing_file() {
        let dir = std::env::temp_dir().join("gridsim-store-persist-missing");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("absent.json");
        let _ = std::fs::remove_file(&path);
        let store: SolutionStore<f64> = SolutionStore::load_or_default(&path).unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn truncated_file_is_invalid_data_not_a_panic() {
        let dir = std::env::temp_dir().join("gridsim-store-persist-trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        sample_store().save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let err = SolutionStore::<f64>::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
