//! # gridsim-store
//!
//! Warm-start solution store: similarity-keyed solve reuse across fleets.
//!
//! The source paper's tracking result (Kim & Kim, ICPP 2022) is that
//! re-solving ACOPF from the previous solution costs a fraction of a cold
//! solve when the problem has only drifted. [`SolutionStore`] lifts that
//! economics above a single fleet run: it maps (case id, scenario
//! fingerprint) → a stored solver state, so *any* admitted scenario — in a
//! later fleet, a later job, a later time period — can warm-start from the
//! nearest previously solved neighbor. It is the fleet-level rung of the
//! same reuse ladder `KktCache` occupies one level down (pay the expensive
//! thing once per equivalence class, replay everywhere else).
//!
//! ## Keying and lookup
//!
//! Entries are grouped by `(case id, structure signature, load dimension)`
//! — see [`ScenarioFingerprint`]: the structure signature hashes everything
//! that is not load, so an N−1 outage (which changes a branch admittance)
//! lands in its own group and a lookup never seeds a solve from a
//! topologically incompatible solution. Within a group, lookup is
//! nearest-neighbor under the dimension-normalized L2 (RMS) load distance,
//! subject to a relative eligibility radius
//! (`max_relative_distance × query RMS norm`): a neighbor too far away is
//! worse than a cold start, so it is reported as a miss.
//!
//! Lookup is sublinear via a **vantage index**: the vantage point is the
//! zero vector, so each entry's coordinate is simply its RMS load norm, and
//! entries hash into coarse norm buckets. A query walks buckets outward
//! from its own norm and prunes a bucket only when its triangle-inequality
//! lower bound *strictly* exceeds the best distance found — strict, so an
//! equal-distance entry in a farther bucket is still scanned and the
//! deterministic tie-break below still sees it.
//!
//! ## Determinism rules
//!
//! * The nearest neighbor is chosen by `(distance, insertion index)`
//!   lexicographic order — independent of bucket-scan order, so identical
//!   store contents give bit-identical lookups. [`StoreView::nearest`]
//!   equals the brute-force linear scan ([`StoreView::nearest_linear`]),
//!   which the property suite pins.
//! * Fleet runs look up against a [`StoreView`] — an immutable snapshot
//!   taken before the run — and commit their own results back *after* the
//!   run, in input order. Mid-run inserts are therefore invisible to
//!   lookups, which makes both the fleet results and the post-run store
//!   contents independent of device count, lane caps, and thread timing.

pub mod persist;

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

pub use gridsim_grid::fingerprint::{rms_distance, ScenarioFingerprint};

/// Relative slack when pruning a bucket: a bucket survives unless its
/// distance lower bound exceeds the current best by more than this relative
/// margin, guarding the exact-equals-brute-force contract against f64
/// rounding in the triangle-inequality bound.
const PRUNE_SLACK: f64 = 1e-9;

/// Tuning knobs for a [`SolutionStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Eligibility radius as a fraction of the query's RMS load norm: a
    /// neighbor at RMS distance beyond `max_relative_distance × ‖query‖`
    /// is a miss (too far to be a useful warm start).
    pub max_relative_distance: f64,
    /// Width of the vantage-index norm buckets, in RMS-norm units (p.u.
    /// load). Coarser buckets scan more entries per ring; finer buckets
    /// walk more rings.
    pub bucket_width: f64,
    /// Capacity cap on the total entry count across all groups; `0` means
    /// unbounded. When an insert would exceed the cap, the entry with the
    /// oldest insertion stamp (LRU by insertion; replacing an entry in
    /// place keeps its original stamp) is evicted — a deterministic order,
    /// so two stores fed the same insert sequence always hold the same
    /// surviving keys. Matters for long-lived daemons, whose stores now
    /// persist across process lifetimes and would otherwise grow without
    /// bound.
    pub max_entries: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            max_relative_distance: 0.1,
            bucket_width: 0.05,
            max_entries: 0,
        }
    }
}

/// One stored solution: the load coordinates it was solved at plus an
/// opaque solver-specific payload (`IpmWarmStart` for interior-point
/// fleets, `WarmState` for ADMM fleets).
#[derive(Debug)]
pub struct StoredEntry<P> {
    /// Load coordinates of the solved scenario (`[pd; qd]`, p.u.).
    pub loads: Vec<f64>,
    /// RMS norm of `loads` — the entry's vantage coordinate.
    pub norm: f64,
    /// The solver state to warm-start from.
    pub payload: P,
}

/// A successful lookup: the nearest stored entry, how far it is, and its
/// insertion index (the deterministic tie-break key).
#[derive(Debug)]
pub struct StoreHit<P> {
    /// The stored entry (shared, not copied).
    pub entry: Arc<StoredEntry<P>>,
    /// RMS load distance from the query to the entry.
    pub distance: f64,
    /// Insertion index of the entry within its group.
    pub index: usize,
}

impl<P> Clone for StoreHit<P> {
    fn clone(&self) -> StoreHit<P> {
        StoreHit {
            entry: Arc::clone(&self.entry),
            distance: self.distance,
            index: self.index,
        }
    }
}

/// What [`SolutionStore::insert`] did with the new solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// A new entry was appended at this insertion index.
    Inserted(usize),
    /// An entry with bitwise-identical loads already existed at this index;
    /// its payload was replaced (the index — and therefore every tie-break
    /// — is unchanged).
    Replaced(usize),
}

/// Per-run store traffic counters, surfaced in `FleetReport` and scenario
/// batch statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct StoreRunStats {
    /// Admissions seeded from a stored neighbor.
    pub hits: usize,
    /// Admissions that consulted the store without being seeded from it
    /// (no eligible neighbor, or the lane's own chained point was closer).
    pub misses: usize,
    /// Solutions committed back to the store after the run.
    pub inserts: usize,
}

impl StoreRunStats {
    /// Hits over lookups, in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Accumulate another run's counters into this one.
    pub fn merge(&mut self, other: &StoreRunStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.inserts += other.inserts;
    }
}

/// Group key: only entries solved for the same named case, with the same
/// structure signature and load dimension, are comparable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GroupKey {
    case_id: String,
    structure: u64,
    dim: usize,
}

/// One warm-start-compatible equivalence class: its entries in insertion
/// order plus the norm-bucket vantage index over them.
#[derive(Debug)]
struct Group<P> {
    entries: Vec<Arc<StoredEntry<P>>>,
    /// Store-wide insertion stamps, parallel to `entries` — the eviction
    /// order key (smallest stamp = oldest insertion = first evicted).
    stamps: Vec<u64>,
    /// bucket id (`floor(norm / bucket_width)`) → entry indices, ascending.
    buckets: BTreeMap<i64, Vec<usize>>,
}

impl<P> Group<P> {
    fn new() -> Group<P> {
        Group {
            entries: Vec::new(),
            stamps: Vec::new(),
            buckets: BTreeMap::new(),
        }
    }

    /// Rebuild the norm buckets from scratch (after an eviction compacted
    /// the entry indices).
    fn rebuild_buckets(&mut self, width: f64) {
        self.buckets.clear();
        for (i, e) in self.entries.iter().enumerate() {
            self.buckets
                .entry(bucket_of(e.norm, width))
                .or_default()
                .push(i);
        }
    }
}

impl<P> Clone for Group<P> {
    fn clone(&self) -> Group<P> {
        Group {
            entries: self.entries.iter().map(Arc::clone).collect(),
            stamps: self.stamps.clone(),
            buckets: self.buckets.clone(),
        }
    }
}

/// The mutable similarity-keyed solution store. See the
/// [module docs](self) for keying, lookup, and determinism rules.
#[derive(Debug)]
pub struct SolutionStore<P> {
    config: StoreConfig,
    groups: HashMap<GroupKey, Group<P>>,
    /// The next insertion stamp; monotone over the store's lifetime (and
    /// persisted, so eviction order survives a save/load round trip).
    next_stamp: u64,
}

impl<P> Default for SolutionStore<P> {
    fn default() -> SolutionStore<P> {
        SolutionStore::new()
    }
}

impl<P> SolutionStore<P> {
    /// An empty store with [`StoreConfig::default`].
    pub fn new() -> SolutionStore<P> {
        SolutionStore::with_config(StoreConfig::default())
    }

    /// An empty store with explicit tuning.
    pub fn with_config(config: StoreConfig) -> SolutionStore<P> {
        assert!(
            config.max_relative_distance >= 0.0,
            "max_relative_distance must be non-negative"
        );
        assert!(
            config.bucket_width > 0.0 && config.bucket_width.is_finite(),
            "bucket_width must be positive and finite"
        );
        SolutionStore {
            config,
            groups: HashMap::new(),
            next_stamp: 0,
        }
    }

    /// The store's tuning.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Total stored entries across all groups.
    pub fn len(&self) -> usize {
        self.groups.values().map(|g| g.entries.len()).sum()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of warm-start-compatible equivalence classes.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Store a solved scenario's payload under its fingerprint. An existing
    /// entry with bitwise-identical loads (necessarily in the same norm
    /// bucket) is replaced in place, keeping its insertion index *and its
    /// insertion stamp* so all tie-breaks and the eviction order are
    /// unchanged; otherwise the entry is appended. When the store's
    /// [`StoreConfig::max_entries`] cap is exceeded, the oldest-stamped
    /// entry store-wide is evicted.
    pub fn insert(&mut self, case_id: &str, fp: &ScenarioFingerprint, payload: P) -> InsertOutcome {
        let key = GroupKey {
            case_id: case_id.to_string(),
            structure: fp.structure,
            dim: fp.loads.len(),
        };
        let norm = fp.rms_norm();
        let bucket = bucket_of(norm, self.config.bucket_width);
        let group = self.groups.entry(key).or_insert_with(Group::new);
        if let Some(ids) = group.buckets.get(&bucket) {
            for &i in ids {
                if bitwise_eq(&group.entries[i].loads, &fp.loads) {
                    group.entries[i] = Arc::new(StoredEntry {
                        loads: fp.loads.clone(),
                        norm,
                        payload,
                    });
                    return InsertOutcome::Replaced(i);
                }
            }
        }
        let index = group.entries.len();
        group.entries.push(Arc::new(StoredEntry {
            loads: fp.loads.clone(),
            norm,
            payload,
        }));
        group.stamps.push(self.next_stamp);
        self.next_stamp += 1;
        group.buckets.entry(bucket).or_default().push(index);
        if self.config.max_entries > 0 {
            while self.len() > self.config.max_entries {
                self.evict_oldest();
            }
        }
        InsertOutcome::Inserted(index)
    }

    /// Evict the entry with the smallest insertion stamp store-wide.
    /// Stamps are unique, so the victim — and therefore the surviving key
    /// set — is deterministic regardless of hash-map iteration order. The
    /// victim's group is compacted (later entries shift down one insertion
    /// index, preserving their relative tie-break order) and dropped when
    /// it empties.
    fn evict_oldest(&mut self) {
        let victim = self
            .groups
            .iter()
            .filter_map(|(key, g)| {
                g.stamps
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &s)| s)
                    .map(|(i, &s)| (s, key.clone(), i))
            })
            .min_by_key(|&(s, _, _)| s);
        let Some((_, key, index)) = victim else {
            return;
        };
        let group = self.groups.get_mut(&key).expect("victim group exists");
        group.entries.remove(index);
        group.stamps.remove(index);
        if group.entries.is_empty() {
            self.groups.remove(&key);
        } else {
            group.rebuild_buckets(self.config.bucket_width);
        }
    }

    /// Nearest eligible stored neighbor of `fp` (see [`StoreView::nearest`]
    /// for the contract; this searches the live store directly).
    pub fn nearest(&self, case_id: &str, fp: &ScenarioFingerprint) -> Option<StoreHit<P>> {
        let key = GroupKey {
            case_id: case_id.to_string(),
            structure: fp.structure,
            dim: fp.loads.len(),
        };
        self.groups
            .get(&key)
            .and_then(|g| nearest_in_group(g, fp, self.config))
    }

    /// An immutable snapshot for lookups during a fleet run. Entries are
    /// shared (`Arc`), so the snapshot is cheap; inserts into the live
    /// store after the snapshot do not affect it.
    pub fn view(&self) -> StoreView<P> {
        StoreView {
            config: self.config,
            groups: self.groups.clone(),
        }
    }
}

/// A frozen snapshot of a [`SolutionStore`] — the lookup side of the
/// freeze-at-start determinism rule (see the [module docs](self)).
#[derive(Debug)]
pub struct StoreView<P> {
    config: StoreConfig,
    groups: HashMap<GroupKey, Group<P>>,
}

impl<P> Clone for StoreView<P> {
    fn clone(&self) -> StoreView<P> {
        StoreView {
            config: self.config,
            groups: self.groups.clone(),
        }
    }
}

impl<P> StoreView<P> {
    /// Total entries in the snapshot.
    pub fn len(&self) -> usize {
        self.groups.values().map(|g| g.entries.len()).sum()
    }

    /// True when the snapshot holds nothing (every lookup misses).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Nearest stored neighbor of `fp` within the eligibility radius, or
    /// `None` (a miss) when the group is absent or every entry is too far.
    /// Deterministic: the result is the `(distance, insertion index)`
    /// lexicographic minimum over eligible entries, identical to
    /// [`nearest_linear`](StoreView::nearest_linear).
    pub fn nearest(&self, case_id: &str, fp: &ScenarioFingerprint) -> Option<StoreHit<P>> {
        let key = GroupKey {
            case_id: case_id.to_string(),
            structure: fp.structure,
            dim: fp.loads.len(),
        };
        self.groups
            .get(&key)
            .and_then(|g| nearest_in_group(g, fp, self.config))
    }

    /// Brute-force reference lookup: a linear scan over the whole group
    /// with the same `(distance, index)` ordering. Exists so tests can pin
    /// `nearest ≡ nearest_linear`; the indexed path is the one to use.
    pub fn nearest_linear(&self, case_id: &str, fp: &ScenarioFingerprint) -> Option<StoreHit<P>> {
        let key = GroupKey {
            case_id: case_id.to_string(),
            structure: fp.structure,
            dim: fp.loads.len(),
        };
        let group = self.groups.get(&key)?;
        let threshold = self.config.max_relative_distance * fp.rms_norm();
        let mut best: Option<StoreHit<P>> = None;
        for (i, entry) in group.entries.iter().enumerate() {
            let d = rms_distance(&entry.loads, &fp.loads);
            if d > threshold {
                continue;
            }
            let better = match &best {
                None => true,
                Some(b) => d < b.distance || (d == b.distance && i < b.index),
            };
            if better {
                best = Some(StoreHit {
                    entry: Arc::clone(entry),
                    distance: d,
                    index: i,
                });
            }
        }
        best
    }
}

/// The entry's norm bucket. Norms are non-negative, so ids are ≥ 0; i64
/// keeps the arithmetic honest for huge norms.
fn bucket_of(norm: f64, width: f64) -> i64 {
    (norm / width).floor() as i64
}

fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Indexed nearest-neighbor search within one group: walk norm buckets
/// outward from the query's norm (two cursors over the `BTreeMap`, nearer
/// bound first), scan each surviving bucket exactly, and prune a bucket
/// only when its triangle-inequality lower bound strictly exceeds both the
/// eligibility threshold and the current best distance (with
/// [`PRUNE_SLACK`] guarding f64 rounding). The winner is the
/// `(distance, index)` lexicographic minimum, so the result is independent
/// of scan order and equal to the linear reference scan.
fn nearest_in_group<P>(
    group: &Group<P>,
    fp: &ScenarioFingerprint,
    config: StoreConfig,
) -> Option<StoreHit<P>> {
    let q = fp.rms_norm();
    let threshold = config.max_relative_distance * q;
    let width = config.bucket_width;
    let qb = bucket_of(q, width);

    let mut best: Option<StoreHit<P>> = None;

    // Distance lower bound of every entry in bucket `b`: entries there have
    // norms in [b·w, (b+1)·w), and |norm − q| ≤ rms_distance by the
    // triangle inequality around the zero vantage point.
    let bound = |b: i64| -> f64 {
        let lo = b as f64 * width;
        let hi = (b + 1) as f64 * width;
        if q < lo {
            lo - q
        } else if q > hi {
            q - hi
        } else {
            0.0
        }
    };
    // Strict pruning with relative slack: keep scanning on equality so an
    // equal-distance, lower-index entry in a farther bucket still wins.
    let prunable = |b: f64, best: &Option<StoreHit<P>>| -> bool {
        let cap = match best {
            Some(hit) => threshold.min(hit.distance),
            None => threshold,
        };
        b * (1.0 - PRUNE_SLACK) > cap
    };

    let scan_bucket = |ids: &[usize], best: &mut Option<StoreHit<P>>| {
        for &i in ids {
            let entry = &group.entries[i];
            let d = rms_distance(&entry.loads, &fp.loads);
            if d > threshold {
                continue;
            }
            let better = match &*best {
                None => true,
                Some(b) => d < b.distance || (d == b.distance && i < b.index),
            };
            if better {
                *best = Some(StoreHit {
                    entry: Arc::clone(entry),
                    distance: d,
                    index: i,
                });
            }
        }
    };

    // Two cursors over the occupied buckets: `down` walks ids ≤ qb in
    // descending order, `up` walks ids > qb ascending. Each step advances
    // whichever cursor has the smaller lower bound, so buckets are visited
    // in non-decreasing bound order and the first prunable bound on a side
    // retires that side for good.
    let mut down = group.buckets.range(..=qb).rev().peekable();
    let mut up = group.buckets.range(qb + 1..).peekable();
    loop {
        let d_bound = down.peek().map(|(&b, _)| bound(b));
        let u_bound = up.peek().map(|(&b, _)| bound(b));
        match (d_bound, u_bound) {
            (None, None) => break,
            (Some(db), None) => {
                if prunable(db, &best) {
                    break;
                }
                scan_bucket(down.next().unwrap().1, &mut best);
            }
            (None, Some(ub)) => {
                if prunable(ub, &best) {
                    break;
                }
                scan_bucket(up.next().unwrap().1, &mut best);
            }
            (Some(db), Some(ub)) => {
                if db <= ub {
                    if prunable(db, &best) {
                        // Bounds on each side are monotone in ring radius,
                        // and ub ≥ db, so nothing left survives.
                        break;
                    }
                    scan_bucket(down.next().unwrap().1, &mut best);
                } else {
                    if prunable(ub, &best) {
                        // ub < db would contradict the branch; both sides
                        // are prunable.
                        break;
                    }
                    scan_bucket(up.next().unwrap().1, &mut best);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(loads: &[f64]) -> ScenarioFingerprint {
        ScenarioFingerprint {
            loads: loads.to_vec(),
            structure: 42,
        }
    }

    #[test]
    fn empty_store_always_misses() {
        let store: SolutionStore<u32> = SolutionStore::new();
        assert!(store.is_empty());
        assert!(store.nearest("c", &fp(&[1.0, 1.0])).is_none());
        assert!(store.view().nearest("c", &fp(&[1.0, 1.0])).is_none());
    }

    #[test]
    fn exact_match_is_found_at_distance_zero() {
        let mut store = SolutionStore::new();
        let f = fp(&[0.4, 0.6, 0.1, 0.2]);
        assert_eq!(store.insert("c", &f, 7u32), InsertOutcome::Inserted(0));
        let hit = store.nearest("c", &f).expect("exact hit");
        assert_eq!(hit.distance, 0.0);
        assert_eq!(hit.index, 0);
        assert_eq!(hit.entry.payload, 7);
    }

    #[test]
    fn nearest_picks_the_closer_entry() {
        let mut store = SolutionStore::new();
        store.insert("c", &fp(&[1.0, 1.0]), 1u32);
        store.insert("c", &fp(&[1.01, 1.01]), 2u32);
        let hit = store.nearest("c", &fp(&[1.008, 1.008])).unwrap();
        assert_eq!(hit.entry.payload, 2);
    }

    #[test]
    fn ties_break_to_the_lower_insertion_index() {
        let mut store = SolutionStore::new();
        // Two entries equidistant from the query (±δ on one coordinate).
        store.insert("c", &fp(&[1.0 + 0.01, 1.0]), 10u32);
        store.insert("c", &fp(&[1.0 - 0.01, 1.0]), 20u32);
        let hit = store.nearest("c", &fp(&[1.0, 1.0])).unwrap();
        assert_eq!(hit.index, 0);
        assert_eq!(hit.entry.payload, 10);
    }

    #[test]
    fn far_entries_are_misses() {
        let mut store = SolutionStore::new();
        store.insert("c", &fp(&[2.0, 2.0]), 1u32);
        // Query at norm 1.0 with default radius 0.1: an entry at RMS
        // distance 1.0 is far outside the eligibility threshold.
        assert!(store.nearest("c", &fp(&[1.0, 1.0])).is_none());
    }

    #[test]
    fn structure_and_case_partition_the_store() {
        let mut store = SolutionStore::new();
        let f = fp(&[1.0, 1.0]);
        store.insert("c", &f, 1u32);
        // Different structure: invisible.
        let other = ScenarioFingerprint {
            loads: f.loads.clone(),
            structure: 43,
        };
        assert!(store.nearest("c", &other).is_none());
        // Different case id: invisible.
        assert!(store.nearest("d", &f).is_none());
        assert_eq!(store.group_count(), 1);
    }

    #[test]
    fn replacing_an_exact_duplicate_keeps_the_index() {
        let mut store = SolutionStore::new();
        let f = fp(&[1.0, 1.0]);
        assert_eq!(store.insert("c", &f, 1u32), InsertOutcome::Inserted(0));
        store.insert("c", &fp(&[1.02, 1.0]), 2u32);
        assert_eq!(store.insert("c", &f, 3u32), InsertOutcome::Replaced(0));
        assert_eq!(store.len(), 2);
        let hit = store.nearest("c", &f).unwrap();
        assert_eq!(hit.index, 0);
        assert_eq!(hit.entry.payload, 3);
    }

    #[test]
    fn view_is_frozen_against_later_inserts() {
        let mut store = SolutionStore::new();
        store.insert("c", &fp(&[1.0, 1.0]), 1u32);
        let view = store.view();
        store.insert("c", &fp(&[1.001, 1.0]), 2u32);
        // The live store sees the closer new entry; the snapshot does not.
        let q = fp(&[1.001, 1.0]);
        assert_eq!(store.nearest("c", &q).unwrap().entry.payload, 2);
        assert_eq!(view.nearest("c", &q).unwrap().entry.payload, 1);
        assert_eq!(view.len(), 1);
    }

    #[test]
    fn indexed_lookup_equals_linear_scan_on_a_norm_spread() {
        // Entries spread across many norm buckets, including exact ties.
        let mut store = SolutionStore::new();
        let mut i = 0u32;
        for a in [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4] {
            for b in [0.0, 0.03, -0.03, 0.06] {
                store.insert("c", &fp(&[a + b, a - b]), i);
                i += 1;
            }
        }
        let view = store.view();
        for a in [0.19, 0.41, 0.63, 0.77, 1.01, 1.26, 1.39, 2.0] {
            for b in [0.0, 0.01, -0.02] {
                let q = fp(&[a + b, a - b]);
                let fast = view.nearest("c", &q);
                let slow = view.nearest_linear("c", &q);
                match (fast, slow) {
                    (None, None) => {}
                    (Some(f), Some(s)) => {
                        assert_eq!(f.index, s.index, "query ({a}, {b})");
                        assert_eq!(f.distance.to_bits(), s.distance.to_bits());
                    }
                    (f, s) => panic!(
                        "index/linear disagree at ({a}, {b}): {:?} vs {:?}",
                        f.map(|h| h.index),
                        s.map(|h| h.index)
                    ),
                }
            }
        }
    }

    #[test]
    fn eviction_pins_which_keys_survive() {
        let mut store = SolutionStore::with_config(StoreConfig {
            max_entries: 3,
            ..Default::default()
        });
        // Five inserts across two structure groups; cap 3 evicts the two
        // oldest stamps (the first two inserts), wherever they live.
        let one = ScenarioFingerprint {
            loads: vec![1.0, 1.0],
            structure: 1,
        };
        let two = ScenarioFingerprint {
            loads: vec![1.5, 1.5],
            structure: 2,
        };
        store.insert("c", &one, 0u32); // stamp 0 — evicted
        store.insert("c", &two, 1u32); // stamp 1 — evicted
        let survivors = [fp(&[2.0, 2.0]), fp(&[3.0, 3.0]), fp(&[4.0, 4.0])];
        for (i, f) in survivors.iter().enumerate() {
            store.insert("c", f, 2 + i as u32);
        }
        assert_eq!(store.len(), 3);
        // The two oldest entries (in groups 1 and 2) are gone — group 2
        // emptied and was dropped entirely.
        assert!(store.nearest("c", &one).is_none());
        assert!(store.nearest("c", &two).is_none());
        assert_eq!(store.group_count(), 1);
        for (i, f) in survivors.iter().enumerate() {
            let hit = store.nearest("c", f).expect("survivor stays findable");
            assert_eq!(hit.distance, 0.0);
            assert_eq!(hit.entry.payload, 2 + i as u32);
        }
    }

    #[test]
    fn replacement_keeps_the_original_stamp() {
        let mut store = SolutionStore::with_config(StoreConfig {
            max_entries: 2,
            ..Default::default()
        });
        let a = fp(&[1.0, 1.0]);
        let b = fp(&[2.0, 2.0]);
        store.insert("c", &a, 1u32); // stamp 0
        store.insert("c", &b, 2u32); // stamp 1
                                     // Replacing `a` keeps stamp 0: it is still the oldest, so the next
                                     // insert evicts `a`, not `b`.
        assert_eq!(store.insert("c", &a, 3u32), InsertOutcome::Replaced(0));
        store.insert("c", &fp(&[3.0, 3.0]), 4u32); // stamp 2, evicts `a`
        assert_eq!(store.len(), 2);
        assert!(store.nearest("c", &a).is_none());
        assert_eq!(store.nearest("c", &b).unwrap().entry.payload, 2);
    }

    #[test]
    fn eviction_preserves_index_lookup_equivalence() {
        // After evictions compact a group, the vantage index must still
        // agree with the linear reference scan.
        let mut store = SolutionStore::with_config(StoreConfig {
            max_entries: 6,
            ..Default::default()
        });
        for i in 0..12 {
            let v = 0.5 + 0.11 * i as f64;
            store.insert("c", &fp(&[v, v + 0.01]), i as u32);
        }
        assert_eq!(store.len(), 6);
        let view = store.view();
        for i in 0..14 {
            let v = 0.45 + 0.1 * i as f64;
            let q = fp(&[v, v]);
            let fast = view
                .nearest("c", &q)
                .map(|h| (h.index, h.distance.to_bits()));
            let slow = view
                .nearest_linear("c", &q)
                .map(|h| (h.index, h.distance.to_bits()));
            assert_eq!(fast, slow, "query {v}");
        }
    }

    #[test]
    fn unbounded_store_never_evicts() {
        let mut store = SolutionStore::new();
        for i in 0..100 {
            store.insert("c", &fp(&[i as f64, 1.0]), i as u32);
        }
        assert_eq!(store.len(), 100);
    }

    #[test]
    fn stats_merge_and_hit_rate() {
        let mut a = StoreRunStats {
            hits: 3,
            misses: 1,
            inserts: 4,
        };
        let b = StoreRunStats {
            hits: 1,
            misses: 3,
            inserts: 2,
        };
        a.merge(&b);
        assert_eq!(a.hits, 4);
        assert_eq!(a.misses, 4);
        assert_eq!(a.inserts, 6);
        assert_eq!(a.hit_rate(), 0.5);
        assert_eq!(StoreRunStats::default().hit_rate(), 0.0);
    }
}
