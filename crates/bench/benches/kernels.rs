//! Ablation A: per-kernel cost split of one ADMM iteration.
//!
//! Section III-A argues that the closed-form component updates are trivially
//! parallel and that the only non-closed-form work is the batch of branch
//! TRON solves. This benchmark times a full cold-start solve on each launch
//! backend (the parallel one's thread-block scheduling stands in for the
//! GPU speed-up) — the per-kernel breakdown is printed by the
//! `transfer_audit` binary and, per backend, by the `backend_sweep` one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsim_admm::{AdmmParams, AdmmSolver};
use gridsim_batch::Device;
use gridsim_grid::cases;

fn bench_device_backends(c: &mut Criterion) {
    let case = cases::case30_like();
    let net = case.compile().expect("case compiles");
    // Bound the work per benchmark iteration.
    let params = AdmmParams {
        max_outer: 2,
        max_inner: 50,
        ..AdmmParams::default()
    };

    let mut group = c.benchmark_group("admm_device_backend");
    group.sample_size(10);
    for (name, device) in [
        ("parallel", Device::parallel()),
        ("sequential", Device::sequential()),
        ("vectorized", Device::vectorized()),
    ] {
        group.bench_with_input(BenchmarkId::new(name, net.nbranch), &net, |b, net| {
            let solver = AdmmSolver::with_device(params.clone(), device.clone());
            b.iter(|| std::hint::black_box(solver.solve(net)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_device_backends);
criterion_main!(benches);
