//! Batch TRON scaling: solve time of a batch of small bound-constrained
//! problems as the batch size grows (the ExaTron scaling argument — the
//! per-problem size is constant, only the number of thread blocks grows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsim_batch::Device;
use gridsim_tron::{solve_batch_from_host, QuadraticBox, TronSolver};

fn make_batch(n: usize) -> (Vec<QuadraticBox>, Vec<Vec<f64>>) {
    let mut problems = Vec::with_capacity(n);
    let mut starts = Vec::with_capacity(n);
    for k in 0..n {
        let shift = (k % 17) as f64 * 0.1 - 0.8;
        problems.push(QuadraticBox::diagonal(
            &[2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
            &[shift, 1.0, -2.0, 0.5, -0.25, 3.0],
            &[-1.0; 6],
            &[1.0; 6],
        ));
        starts.push(vec![0.0; 6]);
    }
    (problems, starts)
}

fn bench_tron_batch(c: &mut Criterion) {
    let solver = TronSolver::default();
    let mut group = c.benchmark_group("tron_batch");
    group.sample_size(10);
    for &batch_size in &[100usize, 1000, 5000] {
        let (problems, starts) = make_batch(batch_size);
        group.bench_with_input(
            BenchmarkId::new("parallel", batch_size),
            &batch_size,
            |b, _| {
                let device = Device::parallel();
                b.iter(|| {
                    std::hint::black_box(solve_batch_from_host(
                        &device, &solver, &problems, &starts,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tron_batch);
criterion_main!(benches);
