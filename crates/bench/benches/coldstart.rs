//! Criterion benchmark behind Table II: cold-start solve time of the ADMM
//! solver and of the interior-point baseline on the two smallest scaled
//! evaluation cases.
//!
//! Absolute numbers are substrate-dependent; the reproduced claim is the
//! *relative* behaviour (ADMM time grows slowly with case size, the
//! baseline's much faster).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsim_admm::AdmmSolver;
use gridsim_bench::BenchCase;
use gridsim_ipm::{AcopfNlp, IpmOptions, IpmSolver};

fn bench_coldstart(c: &mut Criterion) {
    let cases = BenchCase::criterion_subset();
    let mut group = c.benchmark_group("coldstart");
    group.sample_size(10);

    for bc in &cases {
        let net = bc.case.compile().expect("case compiles");
        group.bench_with_input(BenchmarkId::new("admm", &bc.name), &net, |b, net| {
            let solver = AdmmSolver::new(bc.params.clone());
            b.iter(|| std::hint::black_box(solver.solve(net)));
        });
        group.bench_with_input(
            BenchmarkId::new("ipm_baseline", &bc.name),
            &net,
            |b, net| {
                b.iter(|| {
                    let nlp = AcopfNlp::new(net);
                    let solver = IpmSolver::new(IpmOptions {
                        tol: 1e-6,
                        ..Default::default()
                    });
                    std::hint::black_box(solver.solve(&nlp))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_coldstart);
criterion_main!(benches);
