//! The case registry: which networks each experiment runs on.

use gridsim_admm::AdmmParams;
use gridsim_grid::network::Case;
use gridsim_grid::synthetic::TableICase;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Proportionally scaled synthetic cases of ~300 buses each. Fast enough
    /// for CI and for the centralized baseline on a laptop.
    Small,
    /// ~10 % of the paper's sizes (1354-bus case stays full size).
    Medium,
    /// The full Table I dimensions (up to 70,000 buses). The ADMM side is
    /// tractable; the interior-point baseline becomes very slow, which is
    /// itself the paper's point.
    Paper,
}

impl Scale {
    /// Parse from a command-line string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Parse the `--scale` argument out of `std::env::args`, defaulting to
    /// [`Scale::Small`].
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            if a == "--scale" {
                if let Some(v) = args.get(i + 1).and_then(|s| Scale::parse(s)) {
                    return v;
                }
            }
            if let Some(rest) = a.strip_prefix("--scale=") {
                if let Some(v) = Scale::parse(rest) {
                    return v;
                }
            }
        }
        Scale::Small
    }
}

/// Value of a `--name value` or `--name=value` command-line argument, shared
/// by the experiment binaries (the `--scale` flag has its own parser in
/// [`Scale::from_args`]).
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args.get(i + 1).cloned();
        }
        if let Some(rest) = a.strip_prefix(&format!("{name}=")) {
            return Some(rest.to_string());
        }
    }
    None
}

/// One evaluation case together with the ADMM parameters the paper's Table I
/// assigns to it.
#[derive(Debug, Clone)]
pub struct BenchCase {
    /// Display name (the Table I row).
    pub name: String,
    /// The (synthetic) network case.
    pub case: Case,
    /// ADMM parameters with the Table I penalties.
    pub params: AdmmParams,
    /// Which Table I row this stands in for.
    pub source: TableICase,
}

impl BenchCase {
    /// Build the six evaluation cases at the requested scale.
    pub fn all(scale: Scale) -> Vec<BenchCase> {
        TableICase::all()
            .into_iter()
            .map(|tc| {
                let case = match scale {
                    Scale::Small => tc.scaled(300),
                    Scale::Medium => {
                        let (_, _, nbus) = tc.dimensions();
                        tc.scaled((nbus / 10).max(1354).min(nbus))
                    }
                    Scale::Paper => tc.generate(),
                };
                // The Table I penalties were tuned for the full-size cases;
                // scaled-down stand-ins keep the same ratio but use the
                // small-case magnitudes.
                let params = match scale {
                    Scale::Paper => AdmmParams::for_table1_case(tc),
                    _ => AdmmParams::default(),
                };
                BenchCase {
                    name: format!("{}{}", tc.name(), scale_suffix(scale)),
                    case,
                    params,
                    source: tc,
                }
            })
            .collect()
    }

    /// A fast subset used by the Criterion benches: two proportional
    /// stand-ins of the smallest Table I case at 80 and 160 buses with a
    /// bounded ADMM iteration budget, so a full Criterion run (10 samples per
    /// benchmark, both solvers) finishes in minutes. The budget cap makes the
    /// benchmark measure time-per-fixed-work rather than time-to-convergence,
    /// which is the right quantity for a scaling micro-benchmark.
    pub fn criterion_subset() -> Vec<BenchCase> {
        [80usize, 160]
            .into_iter()
            .map(|nbus| {
                let tc = TableICase::Pegase1354;
                let params = AdmmParams {
                    max_outer: 3,
                    max_inner: 200,
                    ..AdmmParams::default()
                };
                BenchCase {
                    name: format!("{}_scaled{}", tc.name(), nbus),
                    case: tc.scaled(nbus),
                    params,
                    source: tc,
                }
            })
            .collect()
    }

    /// The embedded reference cases (WSCC 9-bus, IEEE-14-style, PJM 5-bus,
    /// and a deterministic 30-bus synthetic) with the default small-case
    /// penalties. These are the cases on which ADMM↔baseline agreement is
    /// verified by the test suite, and the set used for the recorded
    /// laptop-scale experiment runs.
    pub fn embedded() -> Vec<BenchCase> {
        use gridsim_grid::cases;
        [
            ("case5", cases::case5()),
            ("case9", cases::case9()),
            ("case14", cases::case14()),
            ("case30_synthetic", cases::case30_like()),
        ]
        .into_iter()
        .map(|(name, case)| BenchCase {
            name: name.to_string(),
            case,
            params: AdmmParams::default(),
            source: TableICase::Pegase1354,
        })
        .collect()
    }
}

fn scale_suffix(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => " (small)",
        Scale::Medium => " (medium)",
        Scale::Paper => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn small_scale_builds_six_compilable_cases() {
        let cases = BenchCase::all(Scale::Small);
        assert_eq!(cases.len(), 6);
        for bc in &cases {
            assert_eq!(bc.case.buses.len(), 300);
            assert!(bc.case.compile().is_ok(), "{} must compile", bc.name);
        }
    }

    #[test]
    fn paper_scale_matches_table1_dimensions() {
        // Only check the smallest case to keep the test fast.
        let tc = TableICase::Pegase1354;
        let bc = BenchCase {
            name: tc.name().into(),
            case: tc.generate(),
            params: AdmmParams::for_table1_case(tc),
            source: tc,
        };
        let (gens, branches, buses) = tc.dimensions();
        assert_eq!(bc.case.generators.len(), gens);
        assert_eq!(bc.case.branches.len(), branches);
        assert_eq!(bc.case.buses.len(), buses);
        assert_eq!(bc.params.rho_pq, 1e1);
        assert_eq!(bc.params.rho_va, 1e3);
    }

    #[test]
    fn criterion_subset_is_small() {
        let subset = BenchCase::criterion_subset();
        assert_eq!(subset.len(), 2);
    }
}
