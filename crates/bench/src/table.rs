//! Minimal fixed-width text-table formatting for experiment output.

/// A simple text table with a header row and aligned columns, rendered in the
/// same style as the paper's tables.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with blanks.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        while row.len() < self.header.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(ncols) {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate().take(widths.len()) {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Data", "Iterations", "Time"]);
        t.add_row(vec!["1354pegase", "823", "1.99"]);
        t.add_row(vec!["ACTIVSg70k", "2897", "69.81"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Iterations"));
        assert!(lines[2].contains("1354pegase"));
        // All data lines have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["1"]);
        assert_eq!(t.num_rows(), 1);
        assert!(t.render().lines().count() == 3);
    }
}
