//! Ablation C — audit of host↔device transfers during a solve.
//!
//! Section III-B of the paper emphasizes that the solver "operates entirely
//! on GPUs without requiring data transfers between the host and the device
//! during its operation". On the simulated device every transfer is counted,
//! so this binary verifies the property quantitatively: the number of
//! transfers is a small constant (setup + solution extraction) independent of
//! how many ADMM iterations ran, while kernel launches scale with iterations.
//!
//! ```text
//! cargo run -p gridsim-bench --release --bin transfer_audit [--scale small|medium|paper]
//! ```

use gridsim_admm::AdmmSolver;
use gridsim_bench::{BenchCase, Scale, TextTable};

fn main() {
    let scale = Scale::from_args();
    let cases = BenchCase::all(scale);

    let mut table = TextTable::new(vec![
        "Data",
        "Inner iterations",
        "Kernel launches",
        "H2D transfers",
        "D2H transfers",
        "H2D bytes",
        "D2H bytes",
    ]);
    for bc in cases.iter().take(3) {
        eprintln!("auditing {} ...", bc.name);
        let net = bc.case.compile().expect("case compiles");
        let solver = AdmmSolver::new(bc.params.clone());
        let before = solver.device.stats().snapshot();
        let result = solver.solve(&net);
        let delta = solver.device.stats().snapshot().since(&before);
        table.add_row(vec![
            bc.name.clone(),
            result.inner_iterations.to_string(),
            delta.total_launches().to_string(),
            delta.host_to_device_transfers.to_string(),
            delta.device_to_host_transfers.to_string(),
            delta.host_to_device_bytes.to_string(),
            delta.device_to_host_bytes.to_string(),
        ]);
        println!("{table}");

        println!("per-kernel breakdown for {}:", bc.name);
        let mut kernel_table = TextTable::new(vec!["Kernel", "Launches", "Blocks", "Time (ms)"]);
        let mut kernels: Vec<_> = delta.kernels.iter().collect();
        kernels.sort_by_key(|k| std::cmp::Reverse(k.1.elapsed));
        for (name, stats) in kernels {
            kernel_table.add_row(vec![
                name.clone(),
                stats.launches.to_string(),
                stats.blocks.to_string(),
                format!("{:.2}", stats.elapsed.as_secs_f64() * 1e3),
            ]);
        }
        println!("{kernel_table}");
    }
    println!(
        "Transfers stay constant per solve (setup + extraction) regardless of iteration count,\n\
         reproducing the paper's 'no host-device transfer during operation' design property."
    );
}
