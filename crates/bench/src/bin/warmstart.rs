//! Regenerates the paper's **Figures 1–3**: warm-start tracking of ACOPF
//! solutions over a 30-period (one minute each) horizon with load drifting by
//! up to 5 %.
//!
//! * Figure 1 — cumulative computation time per period, our solver vs the
//!   centralized baseline (both warm-started),
//! * Figure 2 — maximum constraint violation per period,
//! * Figure 3 — relative objective gap (%) per period.
//!
//! ```text
//! cargo run -p gridsim-bench --release --bin warmstart \
//!     [--scale small|medium|paper] [--periods N] [--cases K]
//! ```
//!
//! `--cases K` limits the run to the first `K` Table I cases (default 2 at
//! small scale, all six otherwise is expensive because the baseline is solved
//! 30 times per case).

use gridsim_bench::experiments::{run_tracking_comparison, to_json, TrackingRow};
use gridsim_bench::{arg_value, BenchCase, Scale, TextTable};
use gridsim_grid::load_profile::LoadProfile;

fn main() {
    let scale = Scale::from_args();
    let embedded = std::env::args().any(|a| a == "--embedded");
    let periods: usize = arg_value("--periods")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let case_limit: usize =
        arg_value("--cases")
            .and_then(|v| v.parse().ok())
            .unwrap_or(match scale {
                Scale::Small => 2,
                _ => 6,
            });
    // 30 one-minute periods with up to 5 % load drift, as in Section IV-C.
    let profile = LoadProfile::paper_window(0, periods, 0.05);
    println!(
        "Warm-start tracking: {periods} periods, max drift {:.1}% (scale {scale:?})",
        100.0 * profile.max_drift()
    );

    let cases = if embedded {
        BenchCase::embedded()
    } else {
        BenchCase::all(scale)
    };
    let mut all_results: Vec<(String, Vec<TrackingRow>)> = Vec::new();
    for bc in cases.iter().take(case_limit) {
        eprintln!("tracking {} ...", bc.name);
        let rows = run_tracking_comparison(&bc.case, &profile, &bc.params, 0.02);

        println!("\n=== {} ===", bc.name);
        let mut table = TextTable::new(vec![
            "Period",
            "Load",
            "ADMM t (s)",
            "ADMM cum (s)",
            "Base t (s)",
            "Base cum (s)",
            "||c||_inf",
            "gap (%)",
        ]);
        for r in &rows {
            table.add_row(vec![
                r.period.to_string(),
                format!("{:.4}", r.load_multiplier),
                format!("{:.3}", r.admm_time_s),
                format!("{:.3}", r.admm_cumulative_s),
                format!("{:.3}", r.ipm_time_s),
                format!("{:.3}", r.ipm_cumulative_s),
                format!("{:.2e}", r.admm_violation),
                format!("{:.3}", 100.0 * r.relative_gap),
            ]);
        }
        println!("{table}");

        // Figure 1 series: cumulative times.
        let admm_total = rows.last().map(|r| r.admm_cumulative_s).unwrap_or(0.0);
        let ipm_total = rows.last().map(|r| r.ipm_cumulative_s).unwrap_or(0.0);
        let warm_avg: f64 = if rows.len() > 1 {
            rows[1..].iter().map(|r| r.admm_time_s).sum::<f64>() / (rows.len() - 1) as f64
        } else {
            0.0
        };
        println!(
            "summary {}: ADMM cold {:.3}s, warm avg {:.3}s/period, horizon {:.2}s; baseline horizon {:.2}s",
            bc.name,
            rows[0].admm_time_s,
            warm_avg,
            admm_total,
            ipm_total
        );
        all_results.push((bc.name.clone(), rows));
    }

    println!("\nJSON results (Figures 1-3 series):");
    println!("{}", to_json(&all_results));
}
