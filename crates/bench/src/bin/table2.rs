//! Regenerates the paper's **Table II**: performance of solving ACOPF from
//! cold start — cumulative ADMM inner iterations, ADMM wall-clock time, the
//! centralized baseline's wall-clock time, the maximum constraint violation
//! `‖c(x)‖∞`, and the relative objective gap.
//!
//! ```text
//! cargo run -p gridsim-bench --release --bin table2 [--scale small|medium|paper]
//! ```
//!
//! The absolute times differ from the paper (our device is a simulated GPU on
//! CPU threads and the baseline is our own interior-point method rather than
//! Ipopt+MA57), but the *shape* — the ADMM solver staying competitive while
//! the baseline's time grows much faster with case size, and solution quality
//! in the 1e-4..1e-2 violation / sub-percent gap range — is the reproduced
//! claim.

use gridsim_bench::experiments::{run_cold_start, to_json};
use gridsim_bench::{BenchCase, Scale, TextTable};

fn main() {
    let scale = Scale::from_args();
    let embedded = std::env::args().any(|a| a == "--embedded");
    let cases = if embedded {
        BenchCase::embedded()
    } else {
        BenchCase::all(scale)
    };

    if embedded {
        println!(
            "TABLE II: PERFORMANCE OF SOLVING ACOPF FROM COLD-START (embedded reference cases)"
        );
    } else {
        println!("TABLE II: PERFORMANCE OF SOLVING ACOPF FROM COLD-START (scale: {scale:?})");
    }
    let mut table = TextTable::new(vec![
        "Data",
        "ADMM Iterations",
        "ADMM Time (s)",
        "Baseline Time (s)",
        "||c(x)||_inf",
        "|f-f*|/f* (%)",
    ]);
    let mut rows = Vec::new();
    for bc in &cases {
        eprintln!("solving {} ...", bc.name);
        let row = run_cold_start(&bc.name, &bc.case, &bc.params);
        table.add_row(vec![
            row.name.clone(),
            row.admm_iterations.to_string(),
            format!("{:.2}", row.admm_time_s),
            format!("{:.2}", row.ipm_time_s),
            format!("{:.2e}", row.max_violation),
            format!("{:.2}%", 100.0 * row.relative_gap),
        ]);
        rows.push(row);
        // Print incrementally so partial progress is visible on big runs.
        println!("{table}");
    }

    println!("JSON results:");
    println!("{}", to_json(&rows));

    println!("\nPaper reference (Table II, full-size cases on a Quadro GV100 vs Ipopt/MA57):");
    let reference = [
        ("1354pegase", 823, 1.99, 2.44, 1.23e-3, 0.05),
        ("2869pegase", 1230, 4.19, 6.09, 3.64e-4, 0.03),
        ("9241pegase", 1372, 7.95, 50.80, 1.12e-3, 0.08),
        ("13659pegase", 1529, 8.70, 131.12, 1.25e-3, 0.05),
        ("ACTIVSg25k", 3307, 36.05, 118.64, 1.21e-2, 0.09),
        ("ACTIVSg70k", 2897, 69.81, 469.03, 1.52e-2, 2.20),
    ];
    let mut ref_table = TextTable::new(vec![
        "Data",
        "ADMM Iterations",
        "ADMM Time (s)",
        "Ipopt Time (s)",
        "||c(x)||_inf",
        "|f-f*|/f* (%)",
    ]);
    for (name, iters, admm_t, ipopt_t, viol, gap) in reference {
        ref_table.add_row(vec![
            name.to_string(),
            iters.to_string(),
            format!("{admm_t:.2}"),
            format!("{ipopt_t:.2}"),
            format!("{viol:.2e}"),
            format!("{gap:.2}%"),
        ]);
    }
    println!("{ref_table}");
}
