//! Full-vs-condensed KKT comparison for the interior-point baseline.
//!
//! Solves every registry case twice — once through the full augmented KKT
//! system (fresh symbolic analysis per factorization, the paper's baseline
//! cost anatomy) and once through the condensed-space system (slack and
//! inequality-dual blocks eliminated, one symbolic analysis per NLP,
//! numeric-only refactorization on the batch device every Newton step) —
//! and records dimensions, factorization/analysis counts, wall-clock, and
//! the objective agreement — plus the scalar-vs-supernodal numeric-replay
//! micro-benchmark on each case's production condensed matrix (bitwise
//! identity asserted, speedup recorded).
//!
//! ```text
//! cargo run -p gridsim-bench --release --bin kkt_condensed [--scale small|medium|paper]
//! ```

use gridsim_bench::experiments::{run_kkt_comparison, to_json, KktStrategyRow};
use gridsim_bench::{BenchCase, Scale, TextTable};

fn main() {
    let scale = Scale::from_args();
    let cases = BenchCase::all(scale);

    let mut table = TextTable::new(vec![
        "Case",
        "full dim",
        "cond dim",
        "full t (s)",
        "cond t (s)",
        "full fact",
        "cond fact",
        "full symb",
        "cond symb",
        "obj gap",
        "optimal",
        "snodes",
        "max w",
        "refac speedup",
    ]);
    let mut rows: Vec<KktStrategyRow> = Vec::new();
    for bc in &cases {
        eprintln!("kkt comparison {} ...", bc.name);
        let row = run_kkt_comparison(&bc.name, &bc.case);
        table.add_row(vec![
            row.name.clone(),
            row.full_dim.to_string(),
            row.condensed_dim.to_string(),
            format!("{:.3}", row.full_time_s),
            format!("{:.3}", row.condensed_time_s),
            row.full_factorizations.to_string(),
            row.condensed_factorizations.to_string(),
            row.full_symbolic_analyses.to_string(),
            row.condensed_symbolic_analyses.to_string(),
            format!("{:.2e}", row.objective_rel_gap),
            if row.both_optimal { "yes" } else { "NO" }.to_string(),
            format!("{}/{}", row.condensed_supernodes, row.condensed_dim),
            row.condensed_max_supernode_width.to_string(),
            format!(
                "{:.2}x{}",
                row.refactor_speedup,
                if row.refactor_bitwise_identical {
                    ""
                } else {
                    " (BITS DIVERGED)"
                }
            ),
        ]);
        rows.push(row);
    }
    println!("FULL vs CONDENSED KKT (interior-point baseline, scale: {scale:?})");
    println!("{table}");
    println!(
        "A 'cond symb' of 1 with 'cond fact' equal to the iteration count is \
         the Świrydowicz-et-al. refactorization pattern: the symbolic \
         analysis is paid once per NLP and every Newton step reuses it. \
         'refac speedup' is the measured scalar-vs-supernodal numeric-replay \
         delta on the case's last condensed matrix, at asserted-bitwise-equal \
         factors; 'snodes' counts the supernodes of the frozen L against its \
         column count."
    );
    println!("\nJSON:\n{}", to_json(&rows));
}
