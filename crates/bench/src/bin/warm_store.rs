//! Warm-start solution store: similarity-keyed solve reuse across fleets.
//!
//! Primes a fresh `SolutionStore` with a seeded perturbation sweep around
//! each registry case, then solves a *different* seeded sweep of the same
//! case cold and warm out of the store — for both the interior-point fleet
//! (per-lane chains arbitrated against store neighbors) and the ADMM
//! scenario scheduler (slot re-seeds on admission). The headline columns
//! are the iteration drops: every evaluation scenario is new to the store,
//! so all reuse comes from nearest-neighbor similarity in per-bus load
//! space, not exact-key recall.
//!
//! ```text
//! cargo run -p gridsim-bench --release --bin warm_store \
//!     [--scale small|medium|paper] [--prime K] [--eval K] \
//!     [--sigma S] [--seed N] [--devices N] [--lanes L|none] \
//!     [--cases <substring>]
//! ```
//!
//! Defaults prime with 100 scenarios and evaluate 100 more at a 2% per-bus
//! load perturbation — the ≥100-scenario sweep the release guard in
//! `tests/solution_store.rs` re-measures. The ADMM side runs under a
//! bounded iteration budget like `fleet_throughput` (registry-scale
//! synthetic cases do not converge under the default penalties), so its
//! columns measure time per fixed work; the interior-point columns run to
//! optimality.

use gridsim_bench::experiments::{run_warm_store, to_json, WarmStoreRow};
use gridsim_bench::{arg_value, BenchCase, Scale, TextTable};

fn main() {
    let scale = Scale::from_args();
    let prime: usize = arg_value("--prime")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let eval: usize = arg_value("--eval")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let sigma: f64 = arg_value("--sigma")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);
    let seed: u64 = arg_value("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let devices: usize = arg_value("--devices")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| gridsim_batch::DevicePool::env_device_count().max(2));
    let lanes: Option<usize> = match arg_value("--lanes").as_deref() {
        None => Some(1),
        Some("none") => None,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("--lanes takes a positive integer or 'none' (no cap); got '{v}'");
                std::process::exit(2);
            }
        },
    };
    let case_filter = arg_value("--cases");
    let cases: Vec<_> = BenchCase::all(scale)
        .into_iter()
        .filter(|bc| {
            case_filter.as_deref().is_none_or(|f| {
                bc.name
                    .to_ascii_lowercase()
                    .contains(&f.to_ascii_lowercase())
            })
        })
        .collect();

    let mut table = TextTable::new(vec![
        "Case",
        "prime",
        "eval",
        "hit rate",
        "IPM cold it",
        "IPM warm it",
        "drop",
        "IPM cold t (s)",
        "IPM warm t (s)",
        "ADMM drop",
        "optimal",
    ]);
    let mut rows: Vec<WarmStoreRow> = Vec::new();
    for bc in &cases {
        eprintln!("warm store {} ...", bc.name);
        // Bounded ADMM budget: time per fixed work, converged or not.
        let params = gridsim_admm::AdmmParams {
            max_outer: 2,
            max_inner: 120,
            ..bc.params.clone()
        };
        let row = run_warm_store(
            &bc.name, &bc.case, &params, prime, eval, sigma, seed, devices, lanes,
        );
        table.add_row(vec![
            row.name.clone(),
            row.prime_scenarios.to_string(),
            row.eval_scenarios.to_string(),
            format!("{:.0}%", row.ipm_hit_rate * 100.0),
            row.ipm_cold_iterations.to_string(),
            row.ipm_warm_iterations.to_string(),
            format!("{:.1}%", row.ipm_iteration_drop * 100.0),
            format!("{:.3}", row.ipm_cold_time_s),
            format!("{:.3}", row.ipm_warm_time_s),
            format!("{:.1}%", row.admm_iteration_drop * 100.0),
            if row.ipm_all_optimal { "yes" } else { "NO" }.to_string(),
        ]);
        rows.push(row);
    }
    println!("WARM-START SOLUTION STORE (scale: {scale:?}, sigma: {sigma})");
    println!("{table}");
    println!(
        "'drop' is the interior-point iteration count the store-seeded \
         sweep sheds against the cold sweep of the same scenarios; every \
         evaluation scenario is new to the store, so the reuse is pure \
         nearest-neighbor similarity. 'hit rate' counts admissions whose \
         stored neighbor beat the lane's own warm-start chain."
    );
    println!("\nJSON:\n{}", to_json(&rows));
}
