//! Daemon-throughput experiment: push a multi-tenant job mix through
//! [`gridsim_serve::ServeDaemon`] at increasing worker-slot counts and
//! report end-to-end scenarios per second, then resubmit the identical mix
//! to a fresh daemon on the same state directory to measure how much the
//! persisted [`gridsim_store::SolutionStore`] warm-starts the second
//! generation.
//!
//! ```text
//! cargo run -p gridsim-bench --release --bin serve_throughput \
//!     [--jobs J] [--k K] [--slots S1,S2,...]
//! ```
//!
//! Each tenant submits one job; tenants alternate IPM and ADMM families
//! over `case9` load ramps at staggered priorities so every scheduling
//! round exercises the cross-job lane allocator. The durability machinery
//! (manifest flush per chunk, atomic rename) is on the measured path — the
//! point of the experiment is the cost of the daemon's crash-consistency
//! relative to the raw fleet solve.

use gridsim_bench::arg_value;
use gridsim_bench::TextTable;
use gridsim_serve::{CaseName, JobSpec, ScenarioSpec, ServeDaemon, SolverFamily};
use std::time::Instant;

fn job_mix(jobs: usize, k: usize) -> Vec<JobSpec> {
    (0..jobs)
        .map(|j| {
            let family = if j % 2 == 0 {
                SolverFamily::Ipm
            } else {
                SolverFamily::Admm
            };
            JobSpec::new(
                format!("tenant-{j}"),
                CaseName::Case9,
                ScenarioSpec::load_ramp(k, 0.95, 1.05),
                family,
            )
            .priority((jobs - j) as i64)
            .chunk_size(2)
        })
        .collect()
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gridsim-serve-bench-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Row {
    slots: usize,
    wall_s: f64,
    scen_per_s: f64,
    warm_wall_s: f64,
    warm_hits: usize,
}

fn main() {
    let jobs: usize = arg_value("--jobs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let k: usize = arg_value("--k").and_then(|v| v.parse().ok()).unwrap_or(6);
    let slots_list: Vec<usize> = arg_value("--slots")
        .map(|v| v.split(',').filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4]);
    let total = jobs * k;

    println!(
        "Serve throughput: {jobs} tenants x {k} scenarios (case9 load ramp, alternating IPM/ADMM)"
    );

    let mut rows = Vec::new();
    for &slots in &slots_list {
        let dir = fresh_dir(&format!("s{slots}"));
        let daemon = ServeDaemon::open(&dir, slots).expect("open daemon state dir");
        for spec in job_mix(jobs, k) {
            daemon.submit(spec).expect("submit job");
        }
        let t0 = Instant::now();
        daemon.run_until_idle().expect("drain job queue");
        let wall = t0.elapsed().as_secs_f64();
        for s in daemon.status_all() {
            assert!(s.complete && s.counts.failed == 0, "{s:?}");
        }
        drop(daemon);

        // Second generation on the same directory: the flushed stores are
        // reloaded, so identical scenario sets should warm-start.
        let daemon = ServeDaemon::open(&dir, slots).expect("reopen daemon state dir");
        for mut spec in job_mix(jobs, k) {
            spec.name = format!("{}-gen2", spec.name);
            daemon.submit(spec).expect("submit gen2 job");
        }
        let t0 = Instant::now();
        daemon.run_until_idle().expect("drain gen2 queue");
        let warm_wall = t0.elapsed().as_secs_f64();
        let warm_hits = daemon
            .status_all()
            .iter()
            .filter(|s| s.name.ends_with("-gen2"))
            .map(|s| s.store.hits)
            .sum();

        rows.push(Row {
            slots,
            wall_s: wall,
            scen_per_s: total as f64 / wall,
            warm_wall_s: warm_wall,
            warm_hits,
        });
    }

    let mut table = TextTable::new(vec![
        "Slots",
        "Cold t (s)",
        "Scen/s",
        "Warm t (s)",
        "Warm hits",
    ]);
    for r in &rows {
        table.add_row(vec![
            r.slots.to_string(),
            format!("{:.3}", r.wall_s),
            format!("{:.2}", r.scen_per_s),
            format!("{:.3}", r.warm_wall_s),
            format!("{}/{}", r.warm_hits, total),
        ]);
    }
    println!("{table}");
}
