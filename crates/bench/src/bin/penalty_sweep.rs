//! Ablation B — penalty sensitivity (Section V of the paper notes that the
//! ADMM penalty parameters "could significantly affect its computation time
//! until convergence"). Sweeps a common scaling factor over ρ_pq / ρ_va on
//! one mid-size case and reports iterations-to-convergence and solution
//! quality.
//!
//! ```text
//! cargo run -p gridsim-bench --release --bin penalty_sweep [--scale small|medium|paper]
//! ```

use gridsim_bench::experiments::run_cold_start;
use gridsim_bench::{BenchCase, Scale, TextTable};

fn main() {
    let scale = Scale::from_args();
    // The second Table I case (2869pegase stand-in) is the sweep target.
    let bc = BenchCase::all(scale)
        .into_iter()
        .nth(1)
        .expect("case exists");
    println!(
        "Penalty sweep on {} ({} buses)",
        bc.name,
        bc.case.buses.len()
    );

    let factors = [0.1, 0.3, 1.0, 3.0, 10.0, 30.0];
    let mut table = TextTable::new(vec![
        "rho factor",
        "rho_pq",
        "rho_va",
        "ADMM Iterations",
        "ADMM Time (s)",
        "||c(x)||_inf",
        "gap (%)",
    ]);
    for &factor in &factors {
        let params = bc.params.scaled_penalties(factor);
        eprintln!("factor {factor} ...");
        let row = run_cold_start(&format!("{} x{}", bc.name, factor), &bc.case, &params);
        table.add_row(vec![
            format!("{factor}"),
            format!("{:.1}", params.rho_pq),
            format!("{:.1}", params.rho_va),
            row.admm_iterations.to_string(),
            format!("{:.2}", row.admm_time_s),
            format!("{:.2e}", row.max_violation),
            format!("{:.2}", 100.0 * row.relative_gap),
        ]);
        println!("{table}");
    }
}
