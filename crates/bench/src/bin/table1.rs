//! Regenerates the paper's **Table I**: data and parameters for experiments
//! (component counts of every evaluation case and the ADMM penalty
//! parameters ρ_pq / ρ_va).
//!
//! ```text
//! cargo run -p gridsim-bench --release --bin table1 [--scale small|medium|paper]
//! ```
//!
//! At `--scale paper` the synthetic stand-in cases have exactly the
//! generator / branch / bus counts of the paper's MATPOWER cases; at smaller
//! scales the counts are proportionally reduced (and printed so the reader
//! can see what the other experiment binaries actually ran).

use gridsim_bench::{BenchCase, Scale, TextTable};

fn main() {
    let scale = Scale::from_args();
    let cases = BenchCase::all(scale);

    let mut table = TextTable::new(vec![
        "Data",
        "# Generators",
        "# Branches",
        "# Buses",
        "rho_pq",
        "rho_va",
    ]);
    for bc in &cases {
        table.add_row(vec![
            bc.name.clone(),
            bc.case.generators.len().to_string(),
            bc.case.branches.len().to_string(),
            bc.case.buses.len().to_string(),
            format!("{:.0e}", bc.params.rho_pq),
            format!("{:.0e}", bc.params.rho_va),
        ]);
    }
    println!("TABLE I: DATA AND PARAMETERS FOR EXPERIMENTS (scale: {scale:?})");
    println!("{table}");

    println!("Paper reference values (Table I):");
    let mut reference = TextTable::new(vec![
        "Data",
        "# Generators",
        "# Branches",
        "# Buses",
        "rho_pq",
        "rho_va",
    ]);
    for bc in &cases {
        let (g, l, b) = bc.source.dimensions();
        let (pq, va) = bc.source.penalties();
        reference.add_row(vec![
            bc.source.name().to_string(),
            g.to_string(),
            l.to_string(),
            b.to_string(),
            format!("{pq:.0e}"),
            format!("{va:.0e}"),
        ]);
    }
    println!("{reference}");
}
