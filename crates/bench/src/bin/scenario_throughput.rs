//! Scenario-throughput experiment: solve *K* load/contingency scenarios of
//! one case through the batched [`gridsim_admm::ScenarioBatch`] driver and
//! compare against `K` sequential `AdmmSolver::solve` calls — the batching
//! analogue of the paper's "thousands of subproblems per kernel launch"
//! throughput argument, in the multi-scenario style of Shin et al.
//! (arXiv:2307.16830).
//!
//! ```text
//! cargo run -p gridsim-bench --release --bin scenario_throughput \
//!     [--scale small|medium|paper] [--k K] [--nbus N] [--sigma S] [--seed U] \
//!     [--devices D1,D2,...] [--lanes L]
//! ```
//!
//! By default this runs a mixed scenario set (load ramp + per-bus
//! perturbations + N−1 outages) of K = 8 scenarios on a 300-bus proportional
//! stand-in of the 1354pegase case, for K in {1, 2, 4, 8} so the scaling of
//! the speedup is visible. Both drivers use the parallel backend and the
//! same parameters; the batched side additionally verifies bitwise
//! agreement with the sequential solves, so the speedup column is a
//! like-for-like wall-clock ratio at identical numerics.
//!
//! A second sweep schedules the largest set across 1/2/4 logical devices
//! (streaming admission) through [`gridsim_admm::ScenarioScheduler`] and
//! prints the per-device kernel breakdown — launches, blocks, and busy time
//! per logical device — from each device's own statistics stream.

use gridsim_admm::AdmmParams;
use gridsim_bench::experiments::{
    run_device_sweep_row, run_scenario_throughput, to_json, DeviceSweepRow, ScenarioThroughputRow,
};
use gridsim_bench::{arg_value, Scale, TextTable};
use gridsim_engine::FleetRequest;
use gridsim_grid::scenario::ScenarioSet;
use gridsim_grid::synthetic::TableICase;

/// A mixed K-scenario set: roughly half a load ramp, a quarter per-bus
/// perturbations, a quarter N−1 outages.
fn mixed_set(case: &gridsim_grid::Case, k: usize, sigma: f64, seed: u64) -> ScenarioSet {
    let n_ramp = (k / 2).max(1);
    let n_perturb = ((k - n_ramp) / 2).min(k - n_ramp);
    let n_outage = k - n_ramp - n_perturb;
    let mut set = ScenarioSet::load_ramp(case.clone(), n_ramp, 0.96, 1.04);
    if n_perturb > 0 {
        set.extend(ScenarioSet::perturbed_loads(
            case.clone(),
            n_perturb,
            sigma,
            seed,
        ));
    }
    if n_outage > 0 {
        set.extend(ScenarioSet::branch_outages(case.clone(), n_outage));
    }
    set.scenarios.truncate(k);
    set
}

fn main() {
    let scale = Scale::from_args();
    let k_max: usize = arg_value("--k").and_then(|v| v.parse().ok()).unwrap_or(8);
    let nbus: usize = arg_value("--nbus")
        .and_then(|v| v.parse().ok())
        .unwrap_or(match scale {
            Scale::Small => 300,
            Scale::Medium => 1354,
            Scale::Paper => 1354,
        });
    let sigma: f64 = arg_value("--sigma")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.03);
    let seed: u64 = arg_value("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let tc = TableICase::Pegase1354;
    let case = if scale == Scale::Paper {
        tc.generate()
    } else {
        tc.scaled(nbus)
    };
    // A bounded iteration budget so the comparison measures time per fixed
    // work (the right quantity for a throughput experiment) rather than
    // time-to-convergence of untuned penalties on synthetic cases.
    let params = AdmmParams {
        max_outer: 3,
        max_inner: 200,
        ..AdmmParams::default()
    };
    println!(
        "Scenario throughput on {} ({} buses), mixed ramp/perturbation/outage set, sigma {sigma}",
        case.name,
        case.buses.len()
    );

    let mut rows: Vec<ScenarioThroughputRow> = Vec::new();
    let mut k = 1;
    while k <= k_max {
        let set = mixed_set(&case, k, sigma, seed);
        eprintln!("K = {k} ...");
        rows.push(run_scenario_throughput(&case.name, &set, &params));
        k *= 2;
    }

    let mut table = TextTable::new(vec![
        "K",
        "Batch t (s)",
        "Seq t (s)",
        "Speedup",
        "Ticks",
        "Inner iters",
        "Launches (batch)",
        "Launches (seq)",
        "||c||_inf",
        "Bitwise",
    ]);
    for r in &rows {
        table.add_row(vec![
            r.scenarios.to_string(),
            format!("{:.3}", r.batch_time_s),
            format!("{:.3}", r.sequential_time_s),
            format!("{:.2}x", r.speedup),
            r.batch_ticks.to_string(),
            r.total_inner_iterations.to_string(),
            r.batch_launches.to_string(),
            r.sequential_launches.to_string(),
            format!("{:.2e}", r.worst_violation),
            r.bitwise_identical.to_string(),
        ]);
    }
    println!("{table}");
    if let Some(last) = rows.last() {
        println!(
            "summary: K={} batch {:.3}s vs sequential {:.3}s ({:.2}x), launch amortization {:.1}x",
            last.scenarios,
            last.batch_time_s,
            last.sequential_time_s,
            last.speedup,
            last.sequential_launches as f64 / last.batch_launches.max(1) as f64
        );
    }

    // ---- device sweep: shard the largest set across logical devices ----
    let device_counts: Vec<usize> = arg_value("--devices")
        .map(|v| v.split(',').filter_map(|d| d.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4]);
    let lanes: Option<usize> = arg_value("--lanes").and_then(|v| v.parse().ok());
    let set = mixed_set(&case, k_max, sigma, seed);
    // One shared reference solve at the sweep's own K (the throughput rows
    // above stop at the largest power of two ≤ k_max, so their last row is
    // not necessarily the same scenario count): every sweep row compares
    // bitwise and wall-clock against this single batch.
    eprintln!("reference batch at K = {k_max} ...");
    let reference = gridsim_admm::ScenarioBatch::new(params.clone()).run(FleetRequest::over(
        &set.networks().expect("scenario cases compile"),
    ));
    let batch_time = reference.solve_time.as_secs_f64();
    println!(
        "\nDevice sweep at K = {k_max} (streaming scheduler, {} lanes/device):",
        lanes.map_or("unbounded".to_string(), |l| l.to_string()),
    );
    let mut sweep: Vec<DeviceSweepRow> = Vec::new();
    let mut dev_table = TextTable::new(vec![
        "Devices",
        "Lanes",
        "Sched t (s)",
        "vs 1-dev batch",
        "Ticks",
        "Bitwise",
        "Per-device launches",
        "Per-device blocks",
        "Per-device busy (s)",
    ]);
    for &d in &device_counts {
        let d = d.clamp(1, k_max);
        eprintln!("devices = {d} ...");
        let row = run_device_sweep_row(&case.name, &set, &params, d, lanes, Some(&reference));
        dev_table.add_row(vec![
            row.devices.to_string(),
            row.lanes_per_device.to_string(),
            format!("{:.3}", row.sched_time_s),
            format!("{:.2}x", batch_time / row.sched_time_s),
            row.ticks.to_string(),
            row.bitwise_identical.to_string(),
            format!("{:?}", row.per_device_launches),
            format!("{:?}", row.per_device_blocks),
            format!(
                "{:?}",
                row.per_device_busy_s
                    .iter()
                    .map(|s| (s * 1e3).round() / 1e3)
                    .collect::<Vec<f64>>()
            ),
        ]);
        sweep.push(row);
    }
    println!("{dev_table}");

    println!("\nJSON results:");
    println!("{}", to_json(&(rows, sweep)));
}
