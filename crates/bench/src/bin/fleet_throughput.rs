//! Fleet throughput on the execution engine: ADMM vs interior-point fleets.
//!
//! Runs a load-ramp scenario set of every registry case through the
//! solver-agnostic engine twice — once with the ADMM scenario fleet, once
//! with the interior-point fleet (condensed KKT, one `KktCache` and one
//! warm-start chain per lane) — and against `K` sequential cold
//! interior-point solves. The headline columns are the symbolic-analysis
//! counts: the sequential baseline pays one analysis *per scenario*, the
//! fleet one *per lane* (lanes = devices × lane cap), independent of how
//! many scenarios stream through.
//!
//! ```text
//! cargo run -p gridsim-bench --release --bin fleet_throughput \
//!     [--scale small|medium|paper] [--scenarios K] [--devices N] \
//!     [--lanes L|none] [--cases <substring>]
//! ```
//!
//! `--cases` filters the registry by case-name substring (e.g. `--cases
//! 1354` runs only the 1354-bus stand-in). The ADMM fleet runs under a
//! bounded iteration budget (like the K=8 release guard): registry-scale
//! synthetic cases do not converge under the default penalties (a known
//! open quality item, see ROADMAP), so the column measures time per fixed
//! work; the interior-point columns run to their usual 300-iteration cap.

use gridsim_bench::experiments::{run_fleet_throughput, to_json, FleetThroughputRow};
use gridsim_bench::{arg_value, BenchCase, Scale, TextTable};
use gridsim_grid::scenario::ScenarioSet;

fn main() {
    let scale = Scale::from_args();
    let scenarios: usize = arg_value("--scenarios")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let devices: usize = arg_value("--devices")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| gridsim_batch::DevicePool::env_device_count().max(2));
    // Default: 1 lane per device (the streaming configuration the row's
    // economics are about); `--lanes none` lifts the cap entirely.
    let lanes: Option<usize> = match arg_value("--lanes").as_deref() {
        None => Some(1),
        Some("none") => None,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("--lanes takes a positive integer or 'none' (no cap); got '{v}'");
                std::process::exit(2);
            }
        },
    };
    let case_filter = arg_value("--cases");
    let cases: Vec<_> = BenchCase::all(scale)
        .into_iter()
        .filter(|bc| {
            case_filter.as_deref().is_none_or(|f| {
                bc.name
                    .to_ascii_lowercase()
                    .contains(&f.to_ascii_lowercase())
            })
        })
        .collect();

    let mut table = TextTable::new(vec![
        "Case",
        "K",
        "dev",
        "lanes",
        "ADMM t (s)",
        "IPM fleet t (s)",
        "IPM seq t (s)",
        "speedup",
        "fleet symb",
        "seq symb",
        "fleet iters",
        "seq iters",
        "optimal",
    ]);
    let mut rows: Vec<FleetThroughputRow> = Vec::new();
    for bc in &cases {
        eprintln!("fleet throughput {} ...", bc.name);
        let set = ScenarioSet::load_ramp(bc.case.clone(), scenarios, 0.98, 1.02);
        // Bounded ADMM budget: time per fixed work, converged or not.
        let params = gridsim_admm::AdmmParams {
            max_outer: 2,
            max_inner: 120,
            ..bc.params.clone()
        };
        let row = run_fleet_throughput(&bc.name, &set, &params, devices, lanes);
        table.add_row(vec![
            row.name.clone(),
            row.scenarios.to_string(),
            row.devices.to_string(),
            row.lanes.to_string(),
            format!("{:.3}", row.admm_time_s),
            format!("{:.3}", row.ipm_fleet_time_s),
            format!("{:.3}", row.ipm_sequential_time_s),
            format!("{:.2}x", row.ipm_speedup),
            row.ipm_fleet_symbolic_analyses.to_string(),
            row.ipm_sequential_symbolic_analyses.to_string(),
            row.ipm_fleet_iterations.to_string(),
            row.ipm_sequential_iterations.to_string(),
            if row.all_optimal { "yes" } else { "NO" }.to_string(),
        ]);
        rows.push(row);
    }
    println!("FLEET THROUGHPUT on the execution engine (scale: {scale:?})");
    println!("{table}");
    println!(
        "'fleet symb' equals the lane count (devices x lane cap): every \
         lane's admission stream shares one frozen symbolic analysis, while \
         the sequential baseline re-analyzes per scenario ('seq symb' = K). \
         'fleet iters' < 'seq iters' is the per-lane warm-start carry."
    );
    println!("\nJSON:\n{}", to_json(&rows));
}
