//! Hierarchical N−k contingency screening: the two-tier funnel against a
//! flat solve-everything sweep.
//!
//! Expands a spec-driven contingency set (load-level grid × seeded
//! perturbation draws × outage columns) sized to at least `--k` scenarios,
//! then solves it twice:
//!
//! * **flat** — every scenario at full tolerance, the baseline a sweep
//!   without screening would pay;
//! * **funnel** — every scenario through the cheap screening pass, with
//!   only `Violating ∪ Uncertain` graduating to the full tier seeded from
//!   their own screening solutions.
//!
//! The report shows the per-band attrition, the screening-vs-full cost
//! split, the wall-clock speedup, and a no-false-negative audit: every
//! scenario whose *full-tolerance* constraint margin exceeds the benign
//! threshold must have graduated (the release guard in
//! `tests/contingency_funnel.rs` re-checks this invariant).
//!
//! ```text
//! cargo run -p gridsim-bench --release --bin contingency_sweep \
//!     [--case case9|case14|case30_synthetic|case5] [--k 1000] \
//!     [--tier admm|ipm] [--levels 5] [--lo 0.95] [--hi 1.45] \
//!     [--sigma S] [--seed N] [--benign B] [--violating V] [--devices N]
//! ```

use gridsim_admm::scenario::ScenarioScheduler;
use gridsim_admm::{AdmmParams, AdmmStatus};
use gridsim_batch::DevicePool;
use gridsim_bench::{arg_value, TextTable};
use gridsim_engine::{Engine, FleetRequest};
use gridsim_grid::network::{Case, Network};
use gridsim_grid::ContingencySpec;
use gridsim_ipm::{IpmFleetSolver, IpmOptions, KktStrategy};
use gridsim_screen::{
    constraint_margin, Band, ContingencyFunnel, FullResults, FullTier, FunnelConfig,
};
use std::time::{Duration, Instant};

fn registry_case(name: &str) -> Option<(String, Case)> {
    use gridsim_grid::cases;
    let case = match name {
        "two_bus" => cases::two_bus(),
        "case5" => cases::case5(),
        "case9" => cases::case9(),
        "case14" => cases::case14(),
        "case30_synthetic" | "case30_like" => cases::case30_like(),
        _ => return None,
    };
    Some((name.to_string(), case))
}

/// Full-tolerance margins and convergence flags of the flat baseline.
struct FlatRun {
    margins: Vec<f64>,
    converged: Vec<bool>,
    time: Duration,
}

fn run_flat(tier: FullTier, case_id: &str, nets: &[Network], pool: &DevicePool) -> FlatRun {
    match tier {
        FullTier::Admm => {
            let t0 = Instant::now();
            let batch = ScenarioScheduler::with_pool(AdmmParams::test_profile(), pool.clone())
                .run(FleetRequest::over(nets).case(case_id));
            let time = t0.elapsed();
            FlatRun {
                margins: batch
                    .results
                    .iter()
                    .map(|r| constraint_margin(&r.quality))
                    .collect(),
                converged: batch
                    .results
                    .iter()
                    .map(|r| r.status == AdmmStatus::Converged)
                    .collect(),
                time,
            }
        }
        FullTier::Ipm => {
            let opts = IpmOptions {
                kkt_strategy: KktStrategy::Condensed,
                ..Default::default()
            };
            let solver = IpmFleetSolver::with_engine(opts, Engine::with_pool(pool.clone()));
            let t0 = Instant::now();
            let report = solver.run(FleetRequest::over(nets).case(case_id));
            let time = t0.elapsed();
            FlatRun {
                margins: report
                    .results
                    .iter()
                    .map(|r| constraint_margin(&r.quality))
                    .collect(),
                converged: report
                    .results
                    .iter()
                    .map(|r| r.report.is_optimal())
                    .collect(),
                time,
            }
        }
    }
}

fn main() {
    let case_name = arg_value("--case").unwrap_or_else(|| "case9".to_string());
    let Some((case_id, base)) = registry_case(&case_name) else {
        eprintln!("unknown --case '{case_name}' (two_bus, case5, case9, case14, case30_synthetic)");
        std::process::exit(2);
    };
    let k_target: usize = arg_value("--k")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let tier = match arg_value("--tier").as_deref() {
        None | Some("admm") => FullTier::Admm,
        Some("ipm") => FullTier::Ipm,
        Some(v) => {
            eprintln!("--tier takes 'admm' or 'ipm'; got '{v}'");
            std::process::exit(2);
        }
    };
    let levels: usize = arg_value("--levels")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let lo: f64 = arg_value("--lo")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.95);
    let hi: f64 = arg_value("--hi")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.45);
    let sigma: f64 = arg_value("--sigma")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);
    let seed: u64 = arg_value("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let benign: f64 = arg_value("--benign")
        .and_then(|v| v.parse().ok())
        .unwrap_or(gridsim_screen::DEFAULT_BENIGN_THRESHOLD);
    let violating: f64 = arg_value("--violating")
        .and_then(|v| v.parse().ok())
        .unwrap_or(gridsim_screen::DEFAULT_VIOLATING_THRESHOLD);
    let pool = match arg_value("--devices").and_then(|v| v.parse().ok()) {
        Some(n) => DevicePool::auto(n),
        None => DevicePool::from_env(),
    };

    // Size the perturbation draws so the expansion meets the K target:
    // total = levels × (1 + draws) × columns, with every outage family
    // capped only by the case's eligible lists.
    let recipe = ContingencySpec::load_grid(levels, lo, hi).outages(
        base.branches.len(),
        base.branches.len() * base.branches.len(),
        base.generators.len(),
    );
    let columns = recipe.count(&base) / levels;
    let draws = (k_target.div_ceil(levels * columns)).saturating_sub(1);
    let spec = if draws > 0 {
        recipe.perturbed(draws, sigma, seed)
    } else {
        recipe
    };
    let manifest = spec.manifest(&base);
    let nets = spec
        .expand(&base)
        .networks()
        .expect("registry contingency networks compile");
    let k = nets.len();
    eprintln!(
        "{case_id}: {k} scenarios = {} levels x {} draws x {columns} columns \
         ({} base, {} N-1, {} N-2, {} gen)",
        manifest.levels,
        manifest.draws_per_level,
        manifest.base_columns,
        manifest.n1_columns,
        manifest.n2_columns,
        manifest.gen_columns,
    );

    eprintln!("flat full-tolerance baseline ...");
    let flat = run_flat(tier, &case_id, &nets, &pool);

    eprintln!("screening funnel ...");
    let config = FunnelConfig {
        full: AdmmParams::test_profile(),
        tier,
        benign_threshold: benign,
        violating_threshold: violating,
        ..Default::default()
    };
    let funnel = ContingencyFunnel::with_pool(config, pool);
    let t0 = Instant::now();
    let report = funnel.run(&case_id, &nets);
    let funnel_time = t0.elapsed();

    // No-false-negative audit against the flat run's full-tolerance
    // margins: anything the flat solve finds stressed must have graduated.
    let missed: Vec<usize> = (0..k)
        .filter(|&i| flat.margins[i] > benign && report.full_index_of(i).is_none())
        .collect();
    let full_converged = (0..k)
        .filter(|&i| match report.full_index_of(i) {
            Some(g) => match &report.full {
                FullResults::Admm(b) => b.results[g].status == AdmmStatus::Converged,
                FullResults::Ipm(r) => r.results[g].report.is_optimal(),
                FullResults::None => false,
            },
            None => true, // benign: certified by the screen
        })
        .count();

    let screen_s = report.screen_time().as_secs_f64();
    let full_s = report.full_time().as_secs_f64();
    let funnel_s = funnel_time.as_secs_f64();
    let flat_s = flat.time.as_secs_f64();

    let mut table = TextTable::new(vec!["quantity", "value"]);
    let tier_name = match tier {
        FullTier::Admm => "admm",
        FullTier::Ipm => "ipm",
    };
    for (q, v) in [
        ("scenarios (K)", k.to_string()),
        ("benign", report.band_count(Band::Benign).to_string()),
        ("uncertain", report.band_count(Band::Uncertain).to_string()),
        ("violating", report.band_count(Band::Violating).to_string()),
        (
            "graduated",
            format!(
                "{} ({:.1}%)",
                report.graduated.len(),
                report.graduation_rate() * 100.0
            ),
        ),
        ("screen time (s)", format!("{screen_s:.3}")),
        ("full tier time (s)", format!("{full_s:.3} ({tier_name})")),
        ("funnel total (s)", format!("{funnel_s:.3}")),
        ("flat baseline (s)", format!("{flat_s:.3}")),
        ("speedup", format!("{:.2}x", flat_s / funnel_s)),
        (
            "screen cost share",
            format!("{:.1}%", 100.0 * screen_s / funnel_s),
        ),
        (
            "flat converged",
            format!("{}/{k}", flat.converged.iter().filter(|&&c| c).count()),
        ),
        ("funnel final converged", format!("{full_converged}/{k}")),
        ("false negatives", missed.len().to_string()),
    ] {
        table.add_row(vec![q.to_string(), v]);
    }
    println!(
        "CONTINGENCY SCREENING FUNNEL ({case_id}, tier: {tier_name}, \
         thresholds: {benign:.0e}/{violating:.0e})"
    );
    println!("{table}");
    if missed.is_empty() {
        println!(
            "superset guard: every scenario the flat full-tolerance sweep \
             finds stressed (margin > {benign:.0e}) graduated to the full tier."
        );
    } else {
        println!(
            "superset guard FAILED: {} stressed scenarios were certified \
             benign by the screen: {:?}",
            missed.len(),
            &missed[..missed.len().min(10)]
        );
    }
    println!(
        "\nJSON:\n{{\"case\":\"{case_id}\",\"tier\":\"{tier_name}\",\"k\":{k},\
         \"benign\":{},\"uncertain\":{},\"violating\":{},\"graduated\":{},\
         \"screen_s\":{screen_s:.4},\"full_s\":{full_s:.4},\
         \"funnel_s\":{funnel_s:.4},\"flat_s\":{flat_s:.4},\
         \"speedup\":{:.3},\"false_negatives\":{}}}",
        report.band_count(Band::Benign),
        report.band_count(Band::Uncertain),
        report.band_count(Band::Violating),
        report.graduated.len(),
        flat_s / funnel_s,
        missed.len(),
    );
    if !missed.is_empty() {
        std::process::exit(1);
    }
}
