//! Backend-sweep experiment: the same bounded K-scenario ADMM batch solved
//! once per launch backend (sequential / parallel / vectorized), with the
//! per-kernel wall-clock split from the device statistics. The conformance
//! suite guarantees the three backends are bitwise identical, so the only
//! thing allowed to differ between rows is time — this binary records how
//! much.
//!
//! ```text
//! cargo run -p gridsim-bench --release --bin backend_sweep \
//!     [--scale small|medium|paper] [--k K] [--nbus N]
//! ```
//!
//! By default this runs a K = 4 load-ramp set on a 300-bus proportional
//! stand-in of the 1354pegase case with a bounded iteration budget (time
//! per fixed work, not time-to-convergence). Note the machine shape decides
//! the ordering: the parallel backend needs cores to beat sequential, and
//! the vectorized backend needs wide SIMD units to show its margin — on a
//! single hardware thread expect parallel to trail under pool overhead.

use gridsim_admm::AdmmParams;
use gridsim_bench::experiments::{run_backend_sweep, to_json, BackendSweepRow};
use gridsim_bench::{arg_value, Scale, TextTable};
use gridsim_grid::scenario::ScenarioSet;
use gridsim_grid::synthetic::TableICase;

fn main() {
    let scale = Scale::from_args();
    let k: usize = arg_value("--k").and_then(|v| v.parse().ok()).unwrap_or(4);
    let nbus: usize = arg_value("--nbus")
        .and_then(|v| v.parse().ok())
        .unwrap_or(match scale {
            Scale::Small => 300,
            Scale::Medium => 1354,
            Scale::Paper => 1354,
        });

    let tc = TableICase::Pegase1354;
    let case = if scale == Scale::Paper {
        tc.generate()
    } else {
        tc.scaled(nbus)
    };
    let set = ScenarioSet::load_ramp(case.clone(), k, 0.97, 1.03);
    // Bounded budget: each backend runs the same fixed kernel schedule.
    let params = AdmmParams {
        max_outer: 2,
        max_inner: 120,
        ..AdmmParams::default()
    };

    println!(
        "Backend sweep on {} ({} buses), K = {k} load-ramp scenarios",
        case.name,
        case.buses.len()
    );
    let rows: Vec<BackendSweepRow> = run_backend_sweep(&case.name, &set, &params);

    let mut summary = TextTable::new(vec![
        "Backend",
        "Solve t (s)",
        "Busy t (s)",
        "Ticks",
        "Launches",
        "Blocks",
        "Bitwise",
    ]);
    for r in &rows {
        summary.add_row(vec![
            r.backend.clone(),
            format!("{:.3}", r.solve_time_s),
            format!("{:.3}", r.busy_s),
            r.ticks.to_string(),
            r.kernel_launches.iter().sum::<u64>().to_string(),
            r.kernel_blocks.iter().sum::<u64>().to_string(),
            r.bitwise_identical_to_sequential.to_string(),
        ]);
    }
    println!("{summary}");

    // Per-kernel wall-clock, one column per backend. Kernel sets are
    // identical across rows (same schedule, asserted bitwise), so the
    // sequential row's ordering — descending by its own elapsed — indexes
    // them all.
    println!("Per-kernel wall-clock (s):");
    let mut kernels = TextTable::new(vec![
        "Kernel".to_string(),
        format!("{} (s)", rows[0].backend),
        format!("{} (s)", rows[1].backend),
        format!("{} (s)", rows[2].backend),
    ]);
    for (i, name) in rows[0].kernel_names.iter().enumerate() {
        let col = |r: &BackendSweepRow| {
            let j = r.kernel_names.iter().position(|n| n == name).unwrap_or(i);
            format!("{:.4}", r.kernel_elapsed_s[j])
        };
        kernels.add_row(vec![
            name.clone(),
            col(&rows[0]),
            col(&rows[1]),
            col(&rows[2]),
        ]);
    }
    println!("{kernels}");
    println!("{}", to_json(&rows));
}
