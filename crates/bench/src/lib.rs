//! # gridsim-bench
//!
//! The experiment harness: everything needed to regenerate the paper's
//! Table I, Table II and Figures 1–3, plus the ablations called out in
//! DESIGN.md. The library part holds the shared machinery (case registry,
//! experiment runners, table formatting, JSON export); each experiment is a
//! binary in `src/bin/` and each micro-benchmark a Criterion bench in
//! `benches/`.
//!
//! | Paper artifact | Binary | Notes |
//! |---|---|---|
//! | Table I   | `table1`   | case dimensions + penalty parameters |
//! | Table II  | `table2`   | cold-start ADMM vs interior-point baseline |
//! | Figure 1  | `warmstart`| cumulative time over 30 one-minute periods |
//! | Figure 2  | `warmstart`| max constraint violation per period |
//! | Figure 3  | `warmstart`| relative objective gap per period |
//! | Ablation A| `cargo bench --bench kernels` | per-kernel cost split |
//! | Ablation B| `penalty_sweep` | ρ sensitivity |
//! | Ablation C| `transfer_audit` | host↔device transfer counts |
//! | Scale     | `scenario_throughput` | batched K-scenario solve vs K sequential solves |
//! | Fleets    | `fleet_throughput` | ADMM vs interior-point fleets on the execution engine; symbolic analyses per lane vs per scenario |
//! | Backends  | `backend_sweep` | per-kernel wall-clock under each launch backend (sequential / parallel / vectorized) at bitwise-identical numerics |
//! | Store     | `warm_store` | seeded perturbation sweep cold vs warm out of the similarity-keyed solution store; iteration drop + hit rate |
//!
//! The paper's full case sizes (up to 70,000 buses) are expensive for the
//! *baseline* on a CPU-only substrate, so every binary accepts
//! `--scale small|medium|paper` (default `small`) selecting proportionally
//! scaled synthetic cases with the same structure.

pub mod experiments;
pub mod registry;
pub mod table;

pub use experiments::{
    run_backend_sweep, run_cold_start, run_device_sweep_row, run_fleet_throughput,
    run_kkt_comparison, run_scenario_throughput, run_tracking_comparison, run_warm_store,
    BackendSweepRow, ColdStartRow, DeviceSweepRow, FleetThroughputRow, KktStrategyRow,
    ScenarioThroughputRow, TrackingRow, WarmStoreRow,
};
pub use registry::{arg_value, BenchCase, Scale};
pub use table::TextTable;
