//! Shared experiment runners used by the `table2` and `warmstart` binaries
//! and by the workspace integration tests.

use gridsim_acopf::start::ramp_limited_bounds;
use gridsim_acopf::violations::{relative_gap, SolutionQuality};
use gridsim_admm::{AdmmParams, AdmmSolver, ScenarioBatch, ScenarioScheduler, WarmState};
use gridsim_batch::{Device, DevicePool, ExecutionMode};
use gridsim_engine::{Engine, FleetRequest};
use gridsim_grid::load_profile::LoadProfile;
use gridsim_grid::network::Case;
use gridsim_grid::scenario::ScenarioSet;
use gridsim_ipm::{
    AcopfNlp, IpmFleetSolver, IpmOptions, IpmSolver, IpmWarmStart, KktCache, KktStrategy, Nlp,
};
use gridsim_store::SolutionStore;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One row of the cold-start comparison (the paper's Table II).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColdStartRow {
    /// Case name.
    pub name: String,
    /// Cumulative inner ADMM iterations.
    pub admm_iterations: usize,
    /// ADMM wall-clock time in seconds.
    pub admm_time_s: f64,
    /// Interior-point baseline wall-clock time in seconds.
    pub ipm_time_s: f64,
    /// `‖c(x)‖∞` of the ADMM solution.
    pub max_violation: f64,
    /// Relative objective gap `|f − f*| / f*` against the baseline.
    pub relative_gap: f64,
    /// ADMM objective ($/hr).
    pub admm_objective: f64,
    /// Baseline objective ($/hr).
    pub ipm_objective: f64,
    /// Whether the baseline reported optimality.
    pub ipm_optimal: bool,
}

/// Run the cold-start experiment (one Table II row) on a case.
pub fn run_cold_start(name: &str, case: &Case, params: &AdmmParams) -> ColdStartRow {
    let net = case.compile().expect("case must compile");

    let admm = AdmmSolver::new(params.clone()).solve(&net);

    let nlp = AcopfNlp::new(&net);
    let ipm = IpmSolver::new(IpmOptions {
        tol: 1e-6,
        max_iter: 300,
        ..Default::default()
    })
    .solve(&nlp);

    ColdStartRow {
        name: name.to_string(),
        admm_iterations: admm.inner_iterations,
        admm_time_s: admm.solve_time.as_secs_f64(),
        ipm_time_s: ipm.solve_time.as_secs_f64(),
        max_violation: admm.quality.max_violation(),
        relative_gap: relative_gap(admm.objective, ipm.objective),
        admm_objective: admm.objective,
        ipm_objective: ipm.objective,
        ipm_optimal: ipm.is_optimal(),
    }
}

/// One period of the warm-start tracking comparison (Figures 1–3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrackingRow {
    /// Period index (0 = cold start).
    pub period: usize,
    /// Load multiplier of the period.
    pub load_multiplier: f64,
    /// ADMM solve time of the period (seconds).
    pub admm_time_s: f64,
    /// Cumulative ADMM time (Figure 1, left panel).
    pub admm_cumulative_s: f64,
    /// Baseline solve time of the period (seconds).
    pub ipm_time_s: f64,
    /// Cumulative baseline time (Figure 1, right panel).
    pub ipm_cumulative_s: f64,
    /// Maximum constraint violation of the ADMM solution (Figure 2).
    pub admm_violation: f64,
    /// Relative objective gap of the ADMM solution vs the baseline of the
    /// same period (Figure 3).
    pub relative_gap: f64,
    /// Cumulative symbolic analyses the baseline has performed up to and
    /// including this period. The condensed strategy shares one frozen
    /// pattern across the whole horizon, so this stays flat after period 0
    /// even though every period keeps paying `ipm_factorizations` numeric
    /// refactorizations.
    pub ipm_symbolic_analyses: usize,
    /// KKT factorizations (numeric refactorizations) of this period's
    /// baseline solve alone (per period, not cumulative).
    pub ipm_factorizations: usize,
}

/// Run the 30-period tracking experiment on a case with both solvers,
/// warm-starting each from its own previous period (Section IV-C). The
/// interior-point baseline runs the condensed-space KKT strategy with a
/// horizon-wide [`KktCache`]: the pattern of every period's condensed system
/// is identical, so the whole reference trajectory costs one symbolic
/// analysis and every Newton step is a numeric-only refactorization.
pub fn run_tracking_comparison(
    case: &Case,
    profile: &LoadProfile,
    params: &AdmmParams,
    ramp_fraction: f64,
) -> Vec<TrackingRow> {
    let admm_solver = AdmmSolver::new(params.clone());
    let mut rows = Vec::with_capacity(profile.len());
    let mut admm_prev = None;
    let mut ipm_prev: Option<(Vec<f64>, Vec<f64>)> = None;
    let mut admm_cum = Duration::ZERO;
    let mut ipm_cum = Duration::ZERO;
    let mut kkt_cache = KktCache::new();

    for (t, &mult) in profile.multipliers.iter().enumerate() {
        let case_t = case.scale_load(mult);
        let net_t = case_t.compile().expect("scaled case compiles");

        // --- ADMM (warm started from the previous ADMM state) ---
        let admm_result = match &admm_prev {
            None => admm_solver.solve(&net_t),
            Some(prev_result) => {
                let prev: &gridsim_admm::AdmmResult = prev_result;
                let (lo, hi) =
                    ramp_limited_bounds(&net_t, prev.warm_state.previous_pg(), ramp_fraction);
                admm_solver.solve_warm(&net_t, &prev.warm_state, Some((lo, hi)))
            }
        };
        admm_cum += admm_result.solve_time;

        // --- baseline (warm started from its own previous solution) ---
        let nlp = match &ipm_prev {
            Some((_, prev_pg)) => {
                let (lo, hi) = ramp_limited_bounds(&net_t, prev_pg, ramp_fraction);
                AcopfNlp::new(&net_t).with_pg_bounds(lo, hi)
            }
            None => AcopfNlp::new(&net_t),
        };
        let ipm_result = IpmSolver::new(IpmOptions {
            tol: 1e-6,
            max_iter: 300,
            initial_point: ipm_prev.as_ref().map(|(x, _)| x.clone()),
            kkt_strategy: KktStrategy::Condensed,
            ..Default::default()
        })
        .solve_with_cache(&nlp, &mut kkt_cache);
        ipm_cum += ipm_result.solve_time;

        let ipm_sol = nlp.to_solution(&ipm_result.x);
        let admm_quality = SolutionQuality::evaluate(&net_t, &admm_result.solution);

        rows.push(TrackingRow {
            period: t,
            load_multiplier: mult,
            admm_time_s: admm_result.solve_time.as_secs_f64(),
            admm_cumulative_s: admm_cum.as_secs_f64(),
            ipm_time_s: ipm_result.solve_time.as_secs_f64(),
            ipm_cumulative_s: ipm_cum.as_secs_f64(),
            admm_violation: admm_quality.max_violation(),
            relative_gap: relative_gap(admm_result.objective, ipm_result.objective),
            ipm_symbolic_analyses: kkt_cache.symbolic_analyses(),
            ipm_factorizations: ipm_result.factorizations,
        });

        ipm_prev = Some((ipm_result.x.clone(), ipm_sol.pg.clone()));
        admm_prev = Some(admm_result);
    }
    rows
}

/// One row of the full-vs-condensed KKT comparison: the same ACOPF solved by
/// the interior-point baseline under both linear-algebra strategies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KktStrategyRow {
    /// Case name.
    pub name: String,
    /// Number of decision variables `nx`.
    pub variables: usize,
    /// Dimension of the full augmented KKT system (`nx + ns + m_eq +
    /// m_ineq`).
    pub full_dim: usize,
    /// Dimension of the condensed system (`nx + m_eq`).
    pub condensed_dim: usize,
    /// Wall-clock of the full-strategy solve (seconds).
    pub full_time_s: f64,
    /// Wall-clock of the condensed-strategy solve (seconds).
    pub condensed_time_s: f64,
    /// Iterations of the full-strategy solve.
    pub full_iterations: usize,
    /// Iterations of the condensed-strategy solve.
    pub condensed_iterations: usize,
    /// Factorizations (each with a fresh symbolic analysis) of the full
    /// strategy.
    pub full_factorizations: usize,
    /// Numeric-only refactorizations of the condensed strategy.
    pub condensed_factorizations: usize,
    /// Symbolic analyses of the full strategy (one per factorization).
    pub full_symbolic_analyses: usize,
    /// Symbolic analyses of the condensed strategy (one per NLP, plus rare
    /// structural-growth rebuilds).
    pub condensed_symbolic_analyses: usize,
    /// `|f_cond − f_full| / |f_full|`.
    pub objective_rel_gap: f64,
    /// Whether both strategies reported optimality.
    pub both_optimal: bool,
    /// Supernodes the condensed system's frozen `L` partitions into
    /// (`condensed_dim` when no adjacent columns share a pattern).
    pub condensed_supernodes: usize,
    /// Width of the widest supernode of the condensed factor.
    pub condensed_max_supernode_width: usize,
    /// Wall-clock of the scalar numeric replays in the refactorization
    /// micro-benchmark (seconds, summed over its repeats).
    pub refactor_scalar_s: f64,
    /// Wall-clock of the supernodal numeric replays over the same repeats.
    pub refactor_supernodal_s: f64,
    /// `refactor_scalar_s / refactor_supernodal_s` — the recorded supernodal
    /// refactorization speedup on this case's production condensed matrix.
    pub refactor_speedup: f64,
    /// Whether the scalar and supernodal replays produced bit-identical
    /// factors (the invariant the speedup is only valid under).
    pub refactor_bitwise_identical: bool,
}

/// Solve `case` with the interior-point baseline under both KKT strategies
/// and record the comparison (factorization counts, symbolic-analysis
/// counts, wall-clock, agreement). The condensed solve runs on the parallel
/// batch device — its numeric refactorization fans the per-row column
/// updates out as thread blocks, each replaying its row supernodally — and
/// the row records the scalar-vs-supernodal replay delta measured on the
/// last condensed matrix the solve actually factorized.
pub fn run_kkt_comparison(name: &str, case: &Case) -> KktStrategyRow {
    let net = case.compile().expect("case must compile");
    let nlp = AcopfNlp::new(&net);
    let base_opts = IpmOptions {
        tol: 1e-6,
        max_iter: 300,
        ..Default::default()
    };
    let full = IpmSolver::new(IpmOptions {
        kkt_strategy: KktStrategy::Full,
        ..base_opts.clone()
    })
    .solve(&nlp);
    let mut cache = KktCache::new();
    let condensed = IpmSolver::new(IpmOptions {
        kkt_strategy: KktStrategy::Condensed,
        ..base_opts
    })
    .solve_with_cache(&nlp, &mut cache);
    let micro = cache
        .refactor_microbench(20)
        .expect("condensed solve factorized at least once");

    let nx = nlp.num_vars();
    let m_eq = nlp.num_eq();
    let m_ineq = nlp.num_ineq();
    KktStrategyRow {
        name: name.to_string(),
        variables: nx,
        full_dim: nx + 2 * m_ineq + m_eq,
        condensed_dim: nx + m_eq,
        full_time_s: full.solve_time.as_secs_f64(),
        condensed_time_s: condensed.solve_time.as_secs_f64(),
        full_iterations: full.iterations,
        condensed_iterations: condensed.iterations,
        full_factorizations: full.factorizations,
        condensed_factorizations: condensed.factorizations,
        full_symbolic_analyses: full.symbolic_analyses,
        condensed_symbolic_analyses: condensed.symbolic_analyses,
        objective_rel_gap: relative_gap(condensed.objective, full.objective),
        both_optimal: full.is_optimal() && condensed.is_optimal(),
        condensed_supernodes: micro.supernodes,
        condensed_max_supernode_width: micro.max_supernode_width,
        refactor_scalar_s: micro.scalar_time_s,
        refactor_supernodal_s: micro.supernodal_time_s,
        refactor_speedup: micro.speedup(),
        refactor_bitwise_identical: micro.bitwise_identical,
    }
}

/// One row of the scenario-throughput experiment: `K` scenarios of one case
/// solved as a single batch vs `K` sequential single-case solves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioThroughputRow {
    /// Case / scenario-set name.
    pub name: String,
    /// Number of scenarios `K`.
    pub scenarios: usize,
    /// Wall-clock of the batched solve (seconds).
    pub batch_time_s: f64,
    /// Wall-clock of `K` sequential `AdmmSolver::solve` calls (seconds).
    pub sequential_time_s: f64,
    /// `sequential_time_s / batch_time_s`.
    pub speedup: f64,
    /// Batched inner-iteration ticks (= max per-scenario inner iterations).
    pub batch_ticks: usize,
    /// Sum of per-scenario inner iterations (the sequential kernel rounds).
    pub total_inner_iterations: usize,
    /// Total kernel launches recorded during the batched solve.
    pub batch_launches: u64,
    /// Total kernel launches recorded across the sequential solves.
    pub sequential_launches: u64,
    /// Worst max-violation across scenarios (batched solve).
    pub worst_violation: f64,
    /// Whether every scenario's batched dispatch and voltages are bitwise
    /// identical to its sequential solve.
    pub bitwise_identical: bool,
}

/// Run the scenario-throughput comparison on a scenario set: once through
/// the batched driver, once as sequential per-scenario solves, with kernel
/// launch counts from the device statistics. Both sides use the parallel
/// backend and identical parameters, so the row isolates the effect of
/// batching alone.
pub fn run_scenario_throughput(
    name: &str,
    set: &ScenarioSet,
    params: &AdmmParams,
) -> ScenarioThroughputRow {
    let nets = set.networks().expect("scenario cases must compile");

    let batcher = ScenarioBatch::new(params.clone());
    let before = batcher.device.stats().snapshot();
    let batch = batcher.run(FleetRequest::over(&nets));
    let batch_launches = batcher
        .device
        .stats()
        .snapshot()
        .since(&before)
        .total_launches();

    let solver = AdmmSolver::new(params.clone());
    let seq_before = solver.device.stats().snapshot();
    let mut sequential_time = Duration::ZERO;
    let mut bitwise = true;
    for (net, batched) in nets.iter().zip(&batch.results) {
        let single = solver.solve(net);
        sequential_time += single.solve_time;
        bitwise &= single.solution.pg == batched.solution.pg
            && single.solution.qg == batched.solution.qg
            && single.solution.vm == batched.solution.vm
            && single.solution.va == batched.solution.va;
    }
    let sequential_launches = solver
        .device
        .stats()
        .snapshot()
        .since(&seq_before)
        .total_launches();

    let batch_time_s = batch.solve_time.as_secs_f64();
    let sequential_time_s = sequential_time.as_secs_f64();
    ScenarioThroughputRow {
        name: name.to_string(),
        scenarios: nets.len(),
        batch_time_s,
        sequential_time_s,
        speedup: sequential_time_s / batch_time_s.max(1e-12),
        batch_ticks: batch.ticks,
        total_inner_iterations: batch.total_inner_iterations(),
        batch_launches,
        sequential_launches,
        worst_violation: batch.worst_violation(),
        bitwise_identical: bitwise,
    }
}

/// One row of the device-sweep experiment: the same scenario set scheduled
/// across `devices` logical devices with streaming admission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSweepRow {
    /// Case / scenario-set name.
    pub name: String,
    /// Number of logical devices scenarios were sharded across.
    pub devices: usize,
    /// Concurrent scenario slots per device (streaming admission below
    /// `ceil(K / devices)`).
    pub lanes_per_device: usize,
    /// Number of scenarios `K`.
    pub scenarios: usize,
    /// Wall-clock of the scheduled solve (seconds).
    pub sched_time_s: f64,
    /// Ticks of the longest device (shards run concurrently).
    pub ticks: usize,
    /// Whether every scenario's result is bitwise identical to the
    /// single-device `ScenarioBatch` reference solve.
    pub bitwise_identical: bool,
    /// Kernel launches recorded per device, in device order.
    pub per_device_launches: Vec<u64>,
    /// Thread blocks executed per device, in device order.
    pub per_device_blocks: Vec<u64>,
    /// Busy time (summed kernel wall-clock) per device, in seconds.
    pub per_device_busy_s: Vec<f64>,
}

/// Schedule `set` across `devices` logical devices (streaming admission when
/// `lanes` caps the per-device slots) and compare against a single-device
/// `ScenarioBatch` reference for bitwise identity. Returns the row plus the
/// scheduler's per-device statistics breakdown. Pass a precomputed
/// `reference` (a `ScenarioBatch` solve of the same set and params) when
/// sweeping several device counts, so the ~identical reference solve runs
/// once instead of once per row; `None` solves it internally.
pub fn run_device_sweep_row(
    name: &str,
    set: &ScenarioSet,
    params: &AdmmParams,
    devices: usize,
    lanes: Option<usize>,
    reference: Option<&gridsim_admm::ScenarioBatchResult>,
) -> DeviceSweepRow {
    let nets = set.networks().expect("scenario cases must compile");
    let pool = DevicePool::parallel(devices);
    let mut scheduler = ScenarioScheduler::with_pool(params.clone(), pool);
    if let Some(l) = lanes {
        scheduler = scheduler.with_lanes(l);
    }
    let before = scheduler.pool.snapshots();
    let sched = scheduler.run(FleetRequest::over(&nets));
    let deltas = scheduler.pool.snapshots_since(&before);

    let own_reference;
    let reference = match reference {
        Some(r) => r,
        None => {
            own_reference = ScenarioBatch::new(params.clone()).run(FleetRequest::over(&nets));
            &own_reference
        }
    };
    let bitwise = sched.results.iter().zip(&reference.results).all(|(a, b)| {
        a.solution.pg == b.solution.pg
            && a.solution.qg == b.solution.qg
            && a.solution.vm == b.solution.vm
            && a.solution.va == b.solution.va
            && a.inner_iterations == b.inner_iterations
    });

    DeviceSweepRow {
        name: name.to_string(),
        devices,
        lanes_per_device: lanes.unwrap_or_else(|| nets.len().div_ceil(devices)),
        scenarios: nets.len(),
        sched_time_s: sched.solve_time.as_secs_f64(),
        ticks: sched.ticks,
        bitwise_identical: bitwise,
        per_device_launches: deltas.iter().map(|d| d.total_launches()).collect(),
        per_device_blocks: deltas.iter().map(|d| d.total_blocks()).collect(),
        per_device_busy_s: deltas
            .iter()
            .map(|d| d.kernel_elapsed().as_secs_f64())
            .collect(),
    }
}

/// One row of the backend-sweep experiment: the same bounded K-scenario
/// ADMM batch solved with one launch backend pinned, with the per-kernel
/// wall-clock split from the device statistics. Kernel columns are parallel
/// vectors sorted by descending elapsed time (ties by name), so the rows
/// stay flat for the JSON export.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackendSweepRow {
    /// Case / scenario-set name.
    pub name: String,
    /// Launch-backend label (`sequential` | `parallel` | `vectorized`).
    pub backend: String,
    /// Number of scenarios `K`.
    pub scenarios: usize,
    /// Wall-clock of the batched solve (seconds).
    pub solve_time_s: f64,
    /// Batched inner-iteration ticks.
    pub ticks: usize,
    /// Summed kernel wall-clock (the device's busy time, seconds).
    pub busy_s: f64,
    /// Kernel names, descending by elapsed time.
    pub kernel_names: Vec<String>,
    /// Launches per kernel, aligned with `kernel_names`.
    pub kernel_launches: Vec<u64>,
    /// Thread blocks per kernel, aligned with `kernel_names`.
    pub kernel_blocks: Vec<u64>,
    /// Wall-clock per kernel in seconds, aligned with `kernel_names`.
    pub kernel_elapsed_s: Vec<f64>,
    /// Whether this backend's results are bitwise identical to the
    /// sequential-backend run of the same set (trivially `true` for the
    /// sequential row itself).
    pub bitwise_identical_to_sequential: bool,
}

/// Solve the same scenario set once per shipped launch backend and record
/// per-kernel wall-clock for each — the experiment behind the
/// `backend_sweep` binary. The sequential backend runs first and serves as
/// the bitwise reference for the other rows; identical numerics are the
/// conformance contract, so the only thing allowed to differ between rows
/// is time.
pub fn run_backend_sweep(
    name: &str,
    set: &ScenarioSet,
    params: &AdmmParams,
) -> Vec<BackendSweepRow> {
    let nets = set.networks().expect("scenario cases must compile");
    let mut rows: Vec<BackendSweepRow> = Vec::new();
    let mut reference: Option<gridsim_admm::ScenarioBatchResult> = None;
    for mode in [
        ExecutionMode::Sequential,
        ExecutionMode::Parallel,
        ExecutionMode::Vectorized,
    ] {
        let device = Device::new(gridsim_batch::DeviceConfig::with_mode(mode));
        let batcher = ScenarioBatch::with_device(params.clone(), device);
        let before = batcher.device.stats().snapshot();
        let batch = batcher.run(FleetRequest::over(&nets));
        let delta = batcher.device.stats().snapshot().since(&before);

        let bitwise = reference.as_ref().is_none_or(|seq| {
            batch.results.iter().zip(&seq.results).all(|(a, b)| {
                a.solution.pg == b.solution.pg
                    && a.solution.qg == b.solution.qg
                    && a.solution.vm == b.solution.vm
                    && a.solution.va == b.solution.va
                    && a.inner_iterations == b.inner_iterations
            })
        });

        let mut kernels: Vec<_> = delta.kernels.iter().collect();
        kernels.sort_by(|a, b| b.1.elapsed.cmp(&a.1.elapsed).then_with(|| a.0.cmp(b.0)));
        rows.push(BackendSweepRow {
            name: name.to_string(),
            backend: mode.to_string(),
            scenarios: nets.len(),
            solve_time_s: batch.solve_time.as_secs_f64(),
            ticks: batch.ticks,
            busy_s: delta.kernel_elapsed().as_secs_f64(),
            kernel_names: kernels.iter().map(|(n, _)| n.to_string()).collect(),
            kernel_launches: kernels.iter().map(|(_, k)| k.launches).collect(),
            kernel_blocks: kernels.iter().map(|(_, k)| k.blocks).collect(),
            kernel_elapsed_s: kernels
                .iter()
                .map(|(_, k)| k.elapsed.as_secs_f64())
                .collect(),
            bitwise_identical_to_sequential: bitwise,
        });
        if reference.is_none() {
            reference = Some(batch);
        }
    }
    rows
}

/// One row of the fleet-throughput experiment: the same scenario set run
/// through the execution engine by both solver families, plus the
/// interior-point sequential baseline the fleet's symbolic-reuse economics
/// are measured against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetThroughputRow {
    /// Case / scenario-set name.
    pub name: String,
    /// Number of scenarios `K`.
    pub scenarios: usize,
    /// Logical devices scenarios were sharded across.
    pub devices: usize,
    /// Total lanes the engine opened (warm-start chains / `KktCache`s for
    /// the interior-point fleet).
    pub lanes: usize,
    /// Wall-clock of the ADMM fleet through the engine (seconds).
    pub admm_time_s: f64,
    /// Engine ticks of the ADMM fleet (batched inner-iteration rounds of
    /// the longest device).
    pub admm_ticks: usize,
    /// Worst max-violation across the ADMM fleet's scenarios.
    pub admm_worst_violation: f64,
    /// Wall-clock of the interior-point fleet through the engine (seconds).
    pub ipm_fleet_time_s: f64,
    /// Wall-clock of `K` sequential cold interior-point solves (seconds).
    pub ipm_sequential_time_s: f64,
    /// `ipm_sequential_time_s / ipm_fleet_time_s`.
    pub ipm_speedup: f64,
    /// Symbolic analyses of the fleet (one per lane under the condensed
    /// strategy with structurally identical scenarios).
    pub ipm_fleet_symbolic_analyses: usize,
    /// Symbolic analyses of the sequential baseline (one per scenario —
    /// each cold solve re-analyzes its own pattern).
    pub ipm_sequential_symbolic_analyses: usize,
    /// Numeric refactorizations of the fleet.
    pub ipm_fleet_factorizations: usize,
    /// Interior-point iterations summed across the fleet (warm-start carry
    /// within lanes shrinks this against the sequential baseline).
    pub ipm_fleet_iterations: usize,
    /// Interior-point iterations summed across the sequential solves.
    pub ipm_sequential_iterations: usize,
    /// Whether every interior-point solve (fleet and sequential) reached
    /// optimality.
    pub all_optimal: bool,
    /// Worst relative objective gap between the fleet's and the sequential
    /// baseline's solution of the same scenario.
    pub max_objective_gap: f64,
}

/// Run the fleet-throughput comparison on a scenario set: the ADMM fleet
/// and the interior-point fleet both ride the execution engine (`devices`
/// logical devices, optional `lane_cap` per device, condensed KKT with one
/// cache per lane on the interior-point side), against `K` sequential cold
/// interior-point solves. The interesting columns are the
/// symbolic-analysis counts — lanes for the fleet, scenarios for the
/// sequential loop — and the iteration totals the per-lane warm-start
/// chains save.
pub fn run_fleet_throughput(
    name: &str,
    set: &ScenarioSet,
    params: &AdmmParams,
    devices: usize,
    lane_cap: Option<usize>,
) -> FleetThroughputRow {
    let nets = set.networks().expect("scenario cases must compile");

    let mut scheduler = ScenarioScheduler::with_pool(params.clone(), DevicePool::parallel(devices));
    if let Some(l) = lane_cap {
        scheduler = scheduler.with_lanes(l);
    }
    let admm = scheduler.run(FleetRequest::over(&nets));

    let ipm_options = IpmOptions {
        tol: 1e-6,
        max_iter: 300,
        kkt_strategy: KktStrategy::Condensed,
        ..Default::default()
    };
    let mut engine = Engine::with_pool(DevicePool::parallel(devices));
    if let Some(l) = lane_cap {
        engine = engine.with_lanes(l);
    }
    let fleet_solver = IpmFleetSolver::with_engine(ipm_options.clone(), engine);
    let fleet = fleet_solver.run(FleetRequest::over(&nets));

    // Sequential baseline: cold condensed solves, one fresh cache (hence
    // one symbolic analysis) per scenario.
    let sequential_solver = IpmSolver::new(ipm_options);
    let mut sequential_time = Duration::ZERO;
    let mut sequential_symbolic = 0usize;
    let mut sequential_iterations = 0usize;
    let mut all_optimal = fleet.all_optimal();
    let mut max_gap = 0.0f64;
    for (net, fleet_result) in nets.iter().zip(&fleet.results) {
        let nlp = AcopfNlp::new(net);
        let report = sequential_solver.solve(&nlp);
        sequential_time += report.solve_time;
        sequential_symbolic += report.symbolic_analyses;
        sequential_iterations += report.iterations;
        all_optimal &= report.is_optimal();
        max_gap = max_gap.max(relative_gap(
            fleet_result.report.objective,
            report.objective,
        ));
    }

    let ipm_fleet_time_s = fleet.solve_time.as_secs_f64();
    let ipm_sequential_time_s = sequential_time.as_secs_f64();
    FleetThroughputRow {
        name: name.to_string(),
        scenarios: nets.len(),
        devices,
        lanes: fleet.lanes,
        admm_time_s: admm.solve_time.as_secs_f64(),
        admm_ticks: admm.ticks,
        admm_worst_violation: admm.worst_violation(),
        ipm_fleet_time_s,
        ipm_sequential_time_s,
        ipm_speedup: ipm_sequential_time_s / ipm_fleet_time_s.max(1e-12),
        ipm_fleet_symbolic_analyses: fleet.symbolic_analyses(),
        ipm_sequential_symbolic_analyses: sequential_symbolic,
        ipm_fleet_factorizations: fleet.factorizations(),
        ipm_fleet_iterations: fleet.total_iterations(),
        ipm_sequential_iterations: sequential_iterations,
        all_optimal,
        max_objective_gap: max_gap,
    }
}

/// One row of the warm-store experiment: a seeded perturbation sweep around
/// one registry case solved cold and then warm out of a [`SolutionStore`]
/// primed with a *different* seeded sweep of the same case — the reuse
/// economics of the similarity-keyed store, measured for both solver
/// families.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WarmStoreRow {
    /// Case name (also the store's `case_id`).
    pub name: String,
    /// Scenarios in the priming sweep (inserted into the store).
    pub prime_scenarios: usize,
    /// Scenarios in the evaluation sweep (solved cold, then warm).
    pub eval_scenarios: usize,
    /// Per-bus uniform load-perturbation half-width of both sweeps.
    pub sigma: f64,
    /// Logical devices of the engine/scheduler runs.
    pub devices: usize,
    /// Total lanes the interior-point fleet opened.
    pub lanes: usize,
    /// Interior-point iterations summed over the cold evaluation sweep.
    pub ipm_cold_iterations: usize,
    /// Interior-point iterations summed over the warm (store-seeded)
    /// evaluation sweep.
    pub ipm_warm_iterations: usize,
    /// `1 − warm/cold` interior-point iteration drop (the headline number).
    pub ipm_iteration_drop: f64,
    /// Wall-clock of the cold interior-point sweep (seconds).
    pub ipm_cold_time_s: f64,
    /// Wall-clock of the warm interior-point sweep (seconds).
    pub ipm_warm_time_s: f64,
    /// Store lookups that seeded a lane during the warm sweep.
    pub ipm_store_hits: usize,
    /// Store lookups that found nothing better than the lane chain.
    pub ipm_store_misses: usize,
    /// Converged solves the priming sweep committed into the store.
    pub ipm_store_inserts: usize,
    /// `hits / (hits + misses)` of the warm interior-point sweep.
    pub ipm_hit_rate: f64,
    /// Whether every interior-point solve (cold and warm) reached
    /// optimality.
    pub ipm_all_optimal: bool,
    /// Worst relative objective gap between a scenario's warm and cold
    /// solves (warm starts must not change the answer).
    pub ipm_max_objective_gap: f64,
    /// ADMM inner iterations summed over the cold evaluation sweep.
    pub admm_cold_iterations: usize,
    /// ADMM inner iterations summed over the warm evaluation sweep.
    pub admm_warm_iterations: usize,
    /// `1 − warm/cold` ADMM iteration drop.
    pub admm_iteration_drop: f64,
    /// Wall-clock of the cold ADMM sweep (seconds).
    pub admm_cold_time_s: f64,
    /// Wall-clock of the warm ADMM sweep (seconds).
    pub admm_warm_time_s: f64,
    /// Store hits of the warm ADMM sweep (slot re-seeds on admission).
    pub admm_store_hits: usize,
    /// `hits / (hits + misses)` of the warm ADMM sweep.
    pub admm_hit_rate: f64,
    /// Worst max-violation across the cold ADMM sweep.
    pub admm_cold_worst_violation: f64,
    /// Worst max-violation across the warm ADMM sweep.
    pub admm_warm_worst_violation: f64,
}

/// Fraction of `cold` iterations the `warm` run saved (`0` when it saved
/// nothing or `cold` is empty; negative when warm starts cost iterations).
fn iteration_drop(cold: usize, warm: usize) -> f64 {
    if cold == 0 {
        0.0
    } else {
        1.0 - warm as f64 / cold as f64
    }
}

/// Run the warm-store experiment on a case: prime a fresh [`SolutionStore`]
/// with a seeded `prime_k`-scenario perturbation sweep, then solve a
/// *different* seeded `eval_k`-scenario sweep (seed + 1) of the same case
/// cold and warm, for both the interior-point fleet and the ADMM scenario
/// scheduler. The headline columns are the iteration drops — every warm
/// evaluation scenario is new to the store, so all reuse comes from
/// nearest-neighbor similarity, not exact-key recall.
#[allow(clippy::too_many_arguments)]
pub fn run_warm_store(
    name: &str,
    case: &Case,
    params: &AdmmParams,
    prime_k: usize,
    eval_k: usize,
    sigma: f64,
    seed: u64,
    devices: usize,
    lane_cap: Option<usize>,
) -> WarmStoreRow {
    let prime_nets = ScenarioSet::perturbed_loads(case.clone(), prime_k, sigma, seed)
        .networks()
        .expect("prime scenarios compile");
    let eval_nets = ScenarioSet::perturbed_loads(case.clone(), eval_k, sigma, seed + 1)
        .networks()
        .expect("eval scenarios compile");

    // --- interior-point fleet: cold, prime, warm ---
    let ipm_options = IpmOptions {
        tol: 1e-6,
        max_iter: 300,
        kkt_strategy: KktStrategy::Condensed,
        ..Default::default()
    };
    let mut engine = Engine::with_pool(DevicePool::parallel(devices));
    if let Some(l) = lane_cap {
        engine = engine.with_lanes(l);
    }
    let ipm_solver = IpmFleetSolver::with_engine(ipm_options, engine);

    let ipm_cold = ipm_solver.run(FleetRequest::over(&eval_nets));
    let mut ipm_store: SolutionStore<IpmWarmStart> = SolutionStore::new();
    let ipm_prime = ipm_solver.run(
        FleetRequest::over(&prime_nets)
            .case(name)
            .store(&mut ipm_store),
    );
    let ipm_warm = ipm_solver.run(
        FleetRequest::over(&eval_nets)
            .case(name)
            .store(&mut ipm_store),
    );

    let ipm_max_objective_gap = ipm_warm
        .results
        .iter()
        .zip(&ipm_cold.results)
        .map(|(w, c)| relative_gap(w.report.objective, c.report.objective))
        .fold(0.0, f64::max);

    // --- ADMM scenario scheduler: cold, prime, warm ---
    let mut scheduler = ScenarioScheduler::with_pool(params.clone(), DevicePool::parallel(devices));
    if let Some(l) = lane_cap {
        scheduler = scheduler.with_lanes(l);
    }
    let admm_cold = scheduler.run(FleetRequest::over(&eval_nets));
    let mut admm_store: SolutionStore<WarmState> = SolutionStore::new();
    let _admm_prime = scheduler.run(
        FleetRequest::over(&prime_nets)
            .case(name)
            .store(&mut admm_store),
    );
    let admm_warm = scheduler.run(
        FleetRequest::over(&eval_nets)
            .case(name)
            .store(&mut admm_store),
    );

    WarmStoreRow {
        name: name.to_string(),
        prime_scenarios: prime_nets.len(),
        eval_scenarios: eval_nets.len(),
        sigma,
        devices,
        lanes: ipm_cold.lanes,
        ipm_cold_iterations: ipm_cold.total_iterations(),
        ipm_warm_iterations: ipm_warm.total_iterations(),
        ipm_iteration_drop: iteration_drop(
            ipm_cold.total_iterations(),
            ipm_warm.total_iterations(),
        ),
        ipm_cold_time_s: ipm_cold.solve_time.as_secs_f64(),
        ipm_warm_time_s: ipm_warm.solve_time.as_secs_f64(),
        ipm_store_hits: ipm_warm.store.hits,
        ipm_store_misses: ipm_warm.store.misses,
        ipm_store_inserts: ipm_prime.store.inserts,
        ipm_hit_rate: ipm_warm.store.hit_rate(),
        ipm_all_optimal: ipm_cold.all_optimal()
            && ipm_prime.all_optimal()
            && ipm_warm.all_optimal(),
        ipm_max_objective_gap,
        admm_cold_iterations: admm_cold.total_inner_iterations(),
        admm_warm_iterations: admm_warm.total_inner_iterations(),
        admm_iteration_drop: iteration_drop(
            admm_cold.total_inner_iterations(),
            admm_warm.total_inner_iterations(),
        ),
        admm_cold_time_s: admm_cold.solve_time.as_secs_f64(),
        admm_warm_time_s: admm_warm.solve_time.as_secs_f64(),
        admm_store_hits: admm_warm.store.hits,
        admm_hit_rate: admm_warm.store.hit_rate(),
        admm_cold_worst_violation: admm_cold.worst_violation(),
        admm_warm_worst_violation: admm_warm.worst_violation(),
    }
}

/// Serialize experiment results to pretty JSON (written next to the text
/// tables so plots can be regenerated without re-running the experiment).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("results serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_grid::cases;

    #[test]
    fn cold_start_row_on_case9_reproduces_paper_quality() {
        let row = run_cold_start("case9", &cases::case9(), &AdmmParams::default());
        assert!(row.ipm_optimal);
        assert!(row.max_violation < 1e-2, "violation {}", row.max_violation);
        assert!(row.relative_gap < 0.01, "gap {}", row.relative_gap);
        assert!(row.admm_iterations > 100);
    }

    #[test]
    fn tracking_comparison_three_periods_case9() {
        let profile = LoadProfile {
            multipliers: vec![1.0, 1.005, 1.01],
            period_minutes: 1.0,
        };
        let rows = run_tracking_comparison(&cases::case9(), &profile, &AdmmParams::default(), 0.02);
        assert_eq!(rows.len(), 3);
        // Warm-started periods are faster than the cold start for ADMM.
        assert!(rows[1].admm_time_s <= rows[0].admm_time_s);
        assert!(rows[2].admm_time_s <= rows[0].admm_time_s);
        // Quality holds over the horizon.
        for r in &rows {
            assert!(
                r.admm_violation < 1e-2,
                "period {} violation {}",
                r.period,
                r.admm_violation
            );
            assert!(
                r.relative_gap < 0.02,
                "period {} gap {}",
                r.period,
                r.relative_gap
            );
        }
        // Cumulative times are nondecreasing.
        assert!(rows[2].admm_cumulative_s >= rows[1].admm_cumulative_s);
        assert!(rows[2].ipm_cumulative_s >= rows[1].ipm_cumulative_s);
    }

    #[test]
    fn kkt_comparison_row_agrees_and_reuses_symbolic_on_case9() {
        let row = run_kkt_comparison("case9", &cases::case9());
        assert!(row.both_optimal, "one strategy failed to converge");
        assert!(
            row.objective_rel_gap < 1e-5,
            "strategies disagree: gap {}",
            row.objective_rel_gap
        );
        assert!(row.condensed_dim < row.full_dim);
        // Full pays one symbolic analysis per factorization; condensed pays
        // O(1) per NLP while refactorizing every iteration.
        assert_eq!(row.full_symbolic_analyses, row.full_factorizations);
        assert!(
            row.condensed_symbolic_analyses <= 2,
            "condensed analyses {}",
            row.condensed_symbolic_analyses
        );
        assert!(row.condensed_factorizations > row.condensed_symbolic_analyses);
        // The supernodal micro-benchmark ran on the production matrix and its
        // replay agreed with the scalar one bit for bit.
        assert!(row.refactor_bitwise_identical);
        assert!(row.condensed_supernodes >= 1);
        assert!(row.condensed_supernodes <= row.condensed_dim);
        assert!(row.condensed_max_supernode_width >= 1);
        assert!(row.refactor_scalar_s > 0.0 && row.refactor_supernodal_s > 0.0);
    }

    #[test]
    fn scenario_throughput_row_is_consistent_on_case9() {
        let set = ScenarioSet::load_ramp(cases::case9(), 3, 0.99, 1.01);
        let row = run_scenario_throughput("case9", &set, &AdmmParams::test_profile());
        assert_eq!(row.scenarios, 3);
        assert!(row.bitwise_identical, "batch diverged from single solves");
        assert!(
            row.worst_violation < 2e-2,
            "violation {}",
            row.worst_violation
        );
        // Batching amortizes launches: one batched round serves K scenarios.
        assert!(
            row.batch_launches < row.sequential_launches,
            "batch {} vs sequential {} launches",
            row.batch_launches,
            row.sequential_launches
        );
        assert!(row.batch_ticks <= row.total_inner_iterations);
        assert!(row.speedup.is_finite() && row.speedup > 0.0);
    }

    #[test]
    fn fleet_throughput_row_counts_analyses_per_lane_on_case9() {
        let set = ScenarioSet::load_ramp(cases::case9(), 3, 0.99, 1.01);
        let row = run_fleet_throughput("case9", &set, &AdmmParams::test_profile(), 2, Some(1));
        assert_eq!(row.scenarios, 3);
        assert_eq!(row.devices, 2);
        assert_eq!(row.lanes, 2, "2 devices x 1 lane");
        assert!(row.all_optimal, "an interior-point solve failed");
        // The economics the row exists to record: analyses scale with lanes
        // for the fleet, with scenarios for the sequential baseline.
        assert_eq!(row.ipm_fleet_symbolic_analyses, row.lanes);
        assert_eq!(row.ipm_sequential_symbolic_analyses, row.scenarios);
        assert!(row.ipm_fleet_factorizations > row.ipm_fleet_symbolic_analyses);
        // Warm-start carry within lanes never costs iterations overall.
        assert!(row.ipm_fleet_iterations <= row.ipm_sequential_iterations);
        assert!(
            row.max_objective_gap < 1e-5,
            "gap {}",
            row.max_objective_gap
        );
        assert!(row.admm_worst_violation < 2e-2);
        // Round-trips through the JSON export like the other rows.
        let back: FleetThroughputRow = serde_json::from_str(&to_json(&row)).unwrap();
        assert_eq!(back.lanes, row.lanes);
        assert_eq!(
            back.ipm_fleet_symbolic_analyses,
            row.ipm_fleet_symbolic_analyses
        );
    }

    #[test]
    fn warm_store_row_drops_iterations_on_case9() {
        let row = run_warm_store(
            "case9",
            &cases::case9(),
            &AdmmParams::test_profile(),
            6,
            4,
            0.02,
            7,
            2,
            Some(1),
        );
        assert_eq!(row.prime_scenarios, 6);
        assert_eq!(row.eval_scenarios, 4);
        assert!(row.ipm_all_optimal, "an interior-point solve failed");
        // Every eval scenario finds a primed neighbor within the default
        // 10% relative-distance threshold at sigma = 2%.
        assert_eq!(row.ipm_store_hits + row.ipm_store_misses, 4);
        assert!(row.ipm_store_hits > 0, "no store hits at sigma 2%");
        assert_eq!(row.ipm_store_inserts, 6, "a priming solve failed");
        assert!(row.admm_store_hits > 0, "ADMM sweep never hit the store");
        // The economics the row exists to record: warm starts shed
        // interior-point iterations and never change the answer.
        assert!(
            row.ipm_warm_iterations < row.ipm_cold_iterations,
            "warm {} vs cold {}",
            row.ipm_warm_iterations,
            row.ipm_cold_iterations
        );
        assert!(row.ipm_iteration_drop > 0.0);
        assert!(
            row.ipm_max_objective_gap < 1e-5,
            "gap {}",
            row.ipm_max_objective_gap
        );
        // Round-trips through the JSON export like the other rows.
        let back: WarmStoreRow = serde_json::from_str(&to_json(&row)).unwrap();
        assert_eq!(back.ipm_store_hits, row.ipm_store_hits);
        assert_eq!(back.ipm_warm_iterations, row.ipm_warm_iterations);
    }

    #[test]
    fn json_serialization_roundtrip() {
        let row = ColdStartRow {
            name: "x".into(),
            admm_iterations: 10,
            admm_time_s: 1.0,
            ipm_time_s: 2.0,
            max_violation: 1e-3,
            relative_gap: 1e-4,
            admm_objective: 100.0,
            ipm_objective: 100.01,
            ipm_optimal: true,
        };
        let json = to_json(&row);
        let back: ColdStartRow = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, "x");
        assert_eq!(back.admm_iterations, 10);
    }

    #[test]
    fn backend_sweep_rows_are_bitwise_and_bill_every_kernel() {
        let set = ScenarioSet::load_ramp(cases::case9(), 3, 0.99, 1.01);
        let rows = run_backend_sweep("case9", &set, &AdmmParams::test_profile());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].backend, "sequential");
        assert_eq!(rows[1].backend, "parallel");
        assert_eq!(rows[2].backend, "vectorized");
        let seq = &rows[0];
        for row in &rows {
            assert!(
                row.bitwise_identical_to_sequential,
                "{} diverged from sequential",
                row.backend
            );
            // Identical numerics mean identical work: same ticks, same
            // kernels, same launch and block counts — only time may differ
            // (and with it the elapsed-sorted row order, so compare by
            // kernel name, not by position).
            assert_eq!(row.ticks, seq.ticks, "{}", row.backend);
            assert!(!row.kernel_names.is_empty());
            assert_eq!(row.kernel_names.len(), seq.kernel_names.len());
            for (i, kernel) in row.kernel_names.iter().enumerate() {
                let j = seq
                    .kernel_names
                    .iter()
                    .position(|n| n == kernel)
                    .unwrap_or_else(|| panic!("{}: unknown kernel {kernel}", row.backend));
                assert_eq!(row.kernel_launches[i], seq.kernel_launches[j], "{kernel}");
                assert_eq!(row.kernel_blocks[i], seq.kernel_blocks[j], "{kernel}");
                assert!(row.kernel_launches[i] > 0);
            }
        }
        // Round-trips through the JSON export like the other rows.
        let back: BackendSweepRow = serde_json::from_str(&to_json(seq)).unwrap();
        assert_eq!(back.backend, "sequential");
        assert_eq!(back.kernel_names, seq.kernel_names);
    }

    #[test]
    fn device_sweep_row_is_bitwise_and_bills_every_device() {
        let set = ScenarioSet::load_ramp(cases::case9(), 4, 0.99, 1.01);
        let row =
            run_device_sweep_row("case9", &set, &AdmmParams::test_profile(), 2, Some(1), None);
        assert_eq!(row.devices, 2);
        assert_eq!(row.lanes_per_device, 1);
        assert_eq!(row.scenarios, 4);
        assert!(row.bitwise_identical, "scheduler diverged from batch");
        assert_eq!(row.per_device_launches.len(), 2);
        assert!(row.per_device_launches.iter().all(|&l| l > 0));
        assert!(row.per_device_blocks.iter().all(|&b| b > 0));
        // Round-trips through the JSON export like the other rows.
        let back: DeviceSweepRow = serde_json::from_str(&to_json(&row)).unwrap();
        assert_eq!(back.devices, 2);
        assert_eq!(back.per_device_blocks, row.per_device_blocks);
    }
}
