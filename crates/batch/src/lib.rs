//! # gridsim-batch
//!
//! A simulated GPU batch-execution device.
//!
//! The paper runs every step of its ADMM algorithm as CUDA kernels on a
//! Quadro GV100: closed-form component updates map one *thread* per variable,
//! and branch subproblems map one *thread block* per branch (solved by the
//! batch TRON solver ExaTron), with **no host–device data transfer during the
//! solve**. No GPU is available in this environment, so this crate provides a
//! faithful stand-in for the *execution model*:
//!
//! * [`Device`] — a batch device with a configurable backend
//!   ([`Backend::Parallel`] uses a Rayon thread pool as the stand-in for the
//!   GPU's block scheduler, [`Backend::Sequential`] is a deterministic
//!   single-threaded reference),
//! * [`DeviceBuffer`] — device-resident arrays whose host↔device movements
//!   are explicit and *counted*, so the paper's "no transfers during the
//!   solve" claim becomes a checkable property (see the `transfer_audit`
//!   experiment binary),
//! * kernel-launch APIs (`launch_map`, `launch_blocks`, reductions) that
//!   record per-kernel launch counts, block counts and elapsed time in
//!   [`DeviceStats`].
//!
//! The algorithmic structure — what is a kernel, what runs per thread, what
//! runs per block, what never leaves the device — is therefore identical to
//! the paper's implementation; only the physical execution substrate differs.

pub mod buffer;
pub mod device;
pub mod kernel;
pub mod pool;
pub mod stats;

pub use buffer::DeviceBuffer;
pub use device::{Backend, Device, DeviceConfig};
pub use pool::{DevicePool, DEVICE_COUNT_ENV};
pub use stats::{DeviceStats, KernelStats, StatsSnapshot};
