//! # gridsim-batch
//!
//! A simulated GPU batch-execution device.
//!
//! The paper runs every step of its ADMM algorithm as CUDA kernels on a
//! Quadro GV100: closed-form component updates map one *thread* per variable,
//! and branch subproblems map one *thread block* per branch (solved by the
//! batch TRON solver ExaTron), with **no host–device data transfer during the
//! solve**. No GPU is available in this environment, so this crate provides a
//! faithful stand-in for the *execution model*:
//!
//! * [`Device`] — a batch device that executes kernels through a
//!   [`LaunchBackend`], the dispatch trait over iteration schemes. Three
//!   backends ship: [`ParallelBackend`] (Rayon thread pool as the stand-in
//!   for the GPU's block scheduler), [`SequentialBackend`] (the
//!   deterministic single-threaded reference), and [`VectorizedBackend`]
//!   (chunked, branch-free loops shaped for compiler auto-vectorization).
//!   [`ExecutionMode`] selects among them; `Auto` (the default) resolves
//!   via the `GRIDSIM_BACKEND` env override, then worker count — see
//!   [`ExecutionMode::resolve_with`] for the pinned precedence.
//! * [`DeviceBuffer`] — device-resident arrays whose host↔device movements
//!   are explicit and *counted*, so the paper's "no transfers during the
//!   solve" claim becomes a checkable property (see the `transfer_audit`
//!   experiment binary),
//! * kernel-launch APIs (`launch_map`, `launch_blocks`, segmented/masked
//!   variants, reductions) that record per-kernel launch counts, block
//!   counts and elapsed time in [`DeviceStats`],
//! * [`conformance`] — the executable determinism contract: every backend
//!   must be bitwise identical to [`SequentialBackend`] on every launch
//!   geometry before [`ExecutionMode::Auto`] may select it.
//!
//! The algorithmic structure — what is a kernel, what runs per thread, what
//! runs per block, what never leaves the device — is therefore identical to
//! the paper's implementation; only the physical execution substrate differs,
//! and the substrate is swappable behind the trait (a GPU-shaped backend is
//! a plug-in, not a rewrite — see the guide in [`backend`]).

pub mod backend;
pub mod buffer;
pub mod conformance;
pub mod device;
pub mod kernel;
pub mod pool;
pub mod stats;

pub use backend::{
    AnyBackend, ExecutionMode, LaunchBackend, ParallelBackend, SequentialBackend,
    VectorizedBackend, BACKEND_ENV,
};
pub use buffer::DeviceBuffer;
pub use device::{Device, DeviceConfig};
pub use pool::{DevicePool, DEVICE_COUNT_ENV};
pub use stats::{DeviceStats, KernelStats, StatsSnapshot};
