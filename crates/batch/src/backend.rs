//! Execution backends: the [`LaunchBackend`] dispatch trait, its three
//! implementors, and the [`ExecutionMode`] selector.
//!
//! The paper's thesis is that ACOPF kernels expressed as data-parallel
//! element operations port across execution substrates. This module is
//! where that portability lives: a kernel body is written once (a closure
//! over an element index), and the backend chooses the iteration scheme —
//! a work-stealing thread pool, a plain sequential loop, or a chunked
//! loop shaped for compiler auto-vectorization.
//!
//! # The dispatch trait
//!
//! [`LaunchBackend`] carries the five launch/reduce geometries the solvers
//! use (whole-buffer map, zip, segmented map, whole-buffer reductions,
//! segmented reduction) plus stats billing. [`Device`](crate::Device)
//! holds an [`AnyBackend`] — a closed enum over the implementors — so the
//! kernel layer in `kernel.rs` contains **no** backend matching at all:
//! every launch and reduction goes through trait dispatch. The trait's
//! methods are generic over the element type and kernel closure, which is
//! why dispatch is an enum rather than a `dyn` object (generic methods
//! are not object-safe).
//!
//! # The determinism contract
//!
//! Every backend MUST produce bitwise-identical buffers and reduction
//! values to [`SequentialBackend`] for the same launch sequence:
//!
//! * map/zip/segmented launches touch disjoint elements, so any schedule
//!   that applies the closure exactly once per (active) element conforms;
//! * reductions may *evaluate* per-element scores in any order but MUST
//!   *combine* them in index order, because floating-point `max` is
//!   scheduling-sensitive through NaN and signed-zero handling and
//!   addition is non-associative;
//! * inactive segments of a masked launch must not be touched at all
//!   (convergence masking relies on converged scenarios' state freezing).
//!
//! The contract is executable: [`crate::conformance`] checks each clause
//! against [`SequentialBackend`] on chunk-boundary-hostile sizes, and
//! only backends that pass may be selected by [`ExecutionMode::Auto`].
//!
//! # Writing a new backend
//!
//! A new backend is a plug-in, not a rewrite:
//!
//! 1. define a unit struct and implement [`LaunchBackend`] for it (the
//!    reductions must fold in index order — see the contract above);
//! 2. add an [`AnyBackend`] variant delegating to it, a constructor on
//!    [`Device`](crate::Device), and an [`ExecutionMode`] variant;
//! 3. run it through [`crate::conformance::assert_backend_conformance`]
//!    in a test; only then may [`ExecutionMode::resolve_with`] return it.
//!
//! Everything outside this module and `device.rs` is untouched: the
//! kernel layer, the pools, and every solver dispatch through the trait.

use crate::stats::DeviceStats;
use rayon::prelude::*;
use std::time::Instant;

/// Environment variable overriding [`ExecutionMode::Auto`] resolution
/// (`sequential`, `parallel`, or `vectorized`; invalid values fall through
/// to the core-count rule). Sits alongside `GRIDSIM_DEVICES` (pool width)
/// and `GRIDSIM_POOL_THREADS` (worker count of the parallel backend).
pub const BACKEND_ENV: &str = "GRIDSIM_BACKEND";

/// How a [`Device`](crate::Device) executes kernel launches.
///
/// `Auto` resolves to a concrete backend at device construction with a
/// deterministic precedence, pinned by a unit test below:
///
/// 1. a valid [`BACKEND_ENV`] value (case-insensitive; `auto` and invalid
///    values fall through),
/// 2. the worker count of the parallel runtime: ≥ 2 workers selects
///    `Parallel`,
/// 3. otherwise `Vectorized` — on a single core the thread pool cannot
///    help, but the chunked kernels still can.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// Resolve at device construction: env override → core count → fallback.
    #[default]
    Auto,
    /// One element at a time on the calling thread. The reference backend
    /// every other implementor must match bitwise.
    Sequential,
    /// Thread blocks on the Rayon work-stealing pool (GPU block-scheduler
    /// stand-in). Bitwise identical to `Sequential` because blocks never
    /// share mutable state and reductions combine in index order.
    Parallel,
    /// Chunked, branch-free element loops shaped for compiler
    /// auto-vectorization over the structure-of-arrays buffers.
    Vectorized,
}

impl ExecutionMode {
    /// Parse an environment-variable value. Case-insensitive; accepts the
    /// short forms `seq`, `par`, `vec` and `simd`. Returns `None` for
    /// anything unrecognized so invalid overrides fall through to the
    /// core-count rule instead of panicking inside solver construction.
    pub fn parse(value: &str) -> Option<ExecutionMode> {
        match value.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(ExecutionMode::Auto),
            "sequential" | "seq" => Some(ExecutionMode::Sequential),
            "parallel" | "par" => Some(ExecutionMode::Parallel),
            "vectorized" | "vec" | "simd" => Some(ExecutionMode::Vectorized),
            _ => None,
        }
    }

    /// Resolve `Auto` against the real environment: [`BACKEND_ENV`] and
    /// the parallel runtime's worker count. Concrete modes return
    /// themselves; the result is never `Auto`.
    pub fn resolve(self) -> ExecutionMode {
        self.resolve_with(
            std::env::var(BACKEND_ENV).ok().as_deref(),
            rayon::current_num_threads(),
        )
    }

    /// Pure resolution rule, factored out so tests can pin the full table
    /// without touching process environment. Precedence for `Auto`: a
    /// valid non-`auto` env override wins; otherwise ≥ 2 workers selects
    /// `Parallel`; otherwise `Vectorized`.
    pub fn resolve_with(self, env: Option<&str>, workers: usize) -> ExecutionMode {
        match self {
            ExecutionMode::Auto => match env.and_then(ExecutionMode::parse) {
                Some(mode) if mode != ExecutionMode::Auto => mode,
                _ if workers >= 2 => ExecutionMode::Parallel,
                _ => ExecutionMode::Vectorized,
            },
            concrete => concrete,
        }
    }

    /// Lower-case label (`auto` / `sequential` / `parallel` / `vectorized`),
    /// the same vocabulary [`BACKEND_ENV`] accepts.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::Auto => "auto",
            ExecutionMode::Sequential => "sequential",
            ExecutionMode::Parallel => "parallel",
            ExecutionMode::Vectorized => "vectorized",
        }
    }
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The kernel-execution dispatch trait: one launch/reduce surface, many
/// iteration schemes. See the module docs for the determinism contract
/// every implementor must satisfy and the guide for adding one.
///
/// Methods operate on raw slices; the [`Device`](crate::Device) wrappers
/// own buffer bookkeeping (length assertions, live-element accounting,
/// empty-reduction conventions) so backends stay pure iteration schemes.
pub trait LaunchBackend {
    /// The concrete mode this backend implements (never
    /// [`ExecutionMode::Auto`]); names the backend in stats and benches.
    fn mode(&self) -> ExecutionMode;

    /// Apply `f` exactly once to every element. `min_len` is the parallel
    /// scheduling granularity (`usize::MAX` keeps the default cheap-kernel
    /// threshold, `1` fans out block-per-subproblem work); backends
    /// without a scheduler ignore it.
    fn launch<T, F>(&self, buf: &mut [T], min_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync;

    /// Apply `f` exactly once to every index of two equal-length slices.
    fn launch_zip<A, B, F>(&self, a: &mut [A], b: &mut [B], f: F)
    where
        A: Send,
        B: Send,
        F: Fn(usize, &mut A, &mut B) + Sync;

    /// Apply `f` to every element of the segments whose mask entry is
    /// `true`; elements of inactive segments must not be touched. `buf`
    /// holds `active.len()` segments of `seg_len` elements; `f` receives
    /// the *global* element index.
    fn launch_segments<T, F>(
        &self,
        buf: &mut [T],
        seg_len: usize,
        active: &[bool],
        min_len: usize,
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut T) + Sync;

    /// Fold per-element scores with `f64::max` from `NEG_INFINITY` in
    /// index order (empty slice → `NEG_INFINITY`; the device maps that to
    /// `0.0`). Scores may be *evaluated* in any order.
    fn reduce_max<T, F>(&self, buf: &[T], f: F) -> f64
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync;

    /// Sum per-element scores in index order (non-associativity makes the
    /// order part of the bitwise contract).
    fn reduce_sum<T, F>(&self, buf: &[T], f: F) -> f64
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync;

    /// Per-segment max-reduction: one value per segment, `f64::NAN` for
    /// inactive segments (whose elements are not even visited), and the
    /// empty-max convention `NEG_INFINITY → 0.0` applied per segment.
    /// Each segment folds in index order.
    fn reduce_max_segments<T, F>(
        &self,
        buf: &[T],
        seg_len: usize,
        active: &[bool],
        f: F,
    ) -> Vec<f64>
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync;

    /// Bill a completed launch to the device's statistics stream. Part of
    /// the trait so a future backend with its own timing source (device
    /// events rather than host clocks) can override how elapsed time is
    /// measured; the default uses the host monotonic clock.
    fn bill(&self, stats: &DeviceStats, name: &str, elements: u64, start: Instant) {
        stats.record_launch(name, elements, start.elapsed());
    }
}

/// Fold one segment with the max-reduction conventions shared by the
/// sequential and parallel backends (the vectorized backend reproduces
/// the same fold chunk-wise, bit for bit).
fn fold_segment_max<T, F>(data: &[T], seg_len: usize, active: &[bool], s: usize, f: &F) -> f64
where
    F: Fn(usize, &T) -> f64,
{
    if !active[s] {
        return f64::NAN;
    }
    let base = s * seg_len;
    let m = data[base..base + seg_len]
        .iter()
        .enumerate()
        .map(|(j, x)| f(base + j, x))
        .fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        0.0
    } else {
        m
    }
}

/// One element at a time on the calling thread: the reference
/// implementation of the determinism contract, and the backend of choice
/// for debugging and deterministic micro-benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequentialBackend;

impl LaunchBackend for SequentialBackend {
    fn mode(&self) -> ExecutionMode {
        ExecutionMode::Sequential
    }

    fn launch<T, F>(&self, buf: &mut [T], _min_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        for (i, x) in buf.iter_mut().enumerate() {
            f(i, x);
        }
    }

    fn launch_zip<A, B, F>(&self, a: &mut [A], b: &mut [B], f: F)
    where
        A: Send,
        B: Send,
        F: Fn(usize, &mut A, &mut B) + Sync,
    {
        for (i, (x, y)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
            f(i, x, y);
        }
    }

    fn launch_segments<T, F>(
        &self,
        buf: &mut [T],
        seg_len: usize,
        active: &[bool],
        _min_len: usize,
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        for (s, chunk) in buf.chunks_mut(seg_len).enumerate() {
            if !active[s] {
                continue;
            }
            for (j, x) in chunk.iter_mut().enumerate() {
                f(s * seg_len + j, x);
            }
        }
    }

    fn reduce_max<T, F>(&self, buf: &[T], f: F) -> f64
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        buf.iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    fn reduce_sum<T, F>(&self, buf: &[T], f: F) -> f64
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        buf.iter().enumerate().map(|(i, x)| f(i, x)).sum()
    }

    fn reduce_max_segments<T, F>(
        &self,
        buf: &[T],
        seg_len: usize,
        active: &[bool],
        f: F,
    ) -> Vec<f64>
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        (0..active.len())
            .map(|s| fold_segment_max(buf, seg_len, active, s, &f))
            .collect()
    }
}

/// Thread blocks on the Rayon work-stealing pool — the GPU block-scheduler
/// stand-in. Launches write disjoint elements into index-ordered storage
/// and reductions evaluate scores in parallel but combine them in index
/// order, so results are bitwise identical to [`SequentialBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelBackend;

impl LaunchBackend for ParallelBackend {
    fn mode(&self) -> ExecutionMode {
        ExecutionMode::Parallel
    }

    fn launch<T, F>(&self, buf: &mut [T], min_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let it = buf.par_iter_mut();
        let it = if min_len == usize::MAX {
            it
        } else {
            it.with_min_len(min_len)
        };
        it.enumerate().for_each(|(i, x)| f(i, x));
    }

    fn launch_zip<A, B, F>(&self, a: &mut [A], b: &mut [B], f: F)
    where
        A: Send,
        B: Send,
        F: Fn(usize, &mut A, &mut B) + Sync,
    {
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .for_each(|(i, (x, y))| f(i, x, y));
    }

    fn launch_segments<T, F>(
        &self,
        buf: &mut [T],
        seg_len: usize,
        active: &[bool],
        min_len: usize,
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let live_segments = active.iter().filter(|&&a| a).count();
        let it = buf.par_iter_mut();
        let it = if min_len == usize::MAX {
            it
        } else {
            it.with_min_len(min_len)
        };
        if live_segments == active.len() {
            // Fast path for the common all-active case: no per-element
            // mask check. (Skipping whole inactive chunks in parallel
            // would need chunked parallel iteration the rayon shim does
            // not provide; the masked path below pays one cheap check per
            // element instead.)
            it.enumerate().for_each(|(i, x)| f(i, x));
        } else {
            it.enumerate().for_each(|(i, x)| {
                if active[i / seg_len] {
                    f(i, x)
                }
            });
        }
    }

    fn reduce_max<T, F>(&self, buf: &[T], f: F) -> f64
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        // Evaluate scores in parallel, combine in index order: reduction
        // order must not depend on thread scheduling, or Parallel and
        // Sequential runs of the same solve diverge bitwise (max is
        // scheduling-sensitive through NaN and signed-zero handling).
        buf.par_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect::<Vec<f64>>()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    fn reduce_sum<T, F>(&self, buf: &[T], f: F) -> f64
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        // Same contract: parallel evaluation, index-ordered summation
        // (floating-point addition is non-associative).
        buf.par_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect::<Vec<f64>>()
            .iter()
            .sum()
    }

    fn reduce_max_segments<T, F>(
        &self,
        buf: &[T],
        seg_len: usize,
        active: &[bool],
        f: F,
    ) -> Vec<f64>
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        // Segments are independent, so fanning the per-segment folds
        // across the pool preserves each segment's index-ordered fold.
        active
            .par_iter()
            .enumerate()
            .map(|(s, _)| fold_segment_max(buf, seg_len, active, s, &f))
            .collect::<Vec<f64>>()
    }
}

/// Fixed trip count of the vectorized backend's inner loops. Chunks of a
/// known compile-time length let LLVM unroll and auto-vectorize the
/// kernel body when it inlines to straight-line arithmetic (the ADMM
/// element updates are written as clamp/select arithmetic for exactly
/// this reason); 64 f64 lanes spans 8–32 SIMD registers depending on
/// vector width, wide enough to amortize the loop-carried bookkeeping.
pub const VECTOR_CHUNK: usize = 64;

/// Chunked, branch-free element loops shaped for compiler
/// auto-vectorization over the structure-of-arrays buffers.
///
/// The scheme differs from [`SequentialBackend`] in loop *shape* only:
///
/// * maps run `chunks_exact_mut(VECTOR_CHUNK)` inner loops with a fixed
///   trip count (plus a scalar remainder), applying the closure in index
///   order — trivially bitwise identical;
/// * reductions score one chunk at a time into a stack buffer (the
///   vectorizable part) and then fold that buffer *in index order* into
///   the accumulator, so the sequence of `max`/`+` operations is exactly
///   the sequential backend's — bitwise identical by construction;
/// * segmented launches hoist the convergence mask out of the element
///   loop entirely: inactive segments are skipped at segment granularity
///   and the per-element loop body carries **no** mask branch (compare
///   the parallel backend, which pays a per-element `active[i / seg_len]`
///   check on masked launches). Masking inside element bodies stays
///   arithmetic (clamps and selects), never control flow.
///
/// Blocked launches (`min_len == 1`, the TRON branch solves) take the
/// same chunked path; their per-element bodies are iterative solvers that
/// do not auto-vectorize, but the schedule is element-ordered so they
/// remain bitwise identical — the conformance suite holds this backend to
/// the full bitwise contract on every geometry, with no report-identical
/// carve-out needed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VectorizedBackend;

/// Apply `f` over `buf` in fixed-size chunks; `base` is the global index
/// of `buf[0]`.
fn map_chunked<T, F>(buf: &mut [T], base: usize, f: &F)
where
    F: Fn(usize, &mut T),
{
    let mut offset = base;
    let mut chunks = buf.chunks_exact_mut(VECTOR_CHUNK);
    for chunk in &mut chunks {
        for (j, x) in chunk.iter_mut().enumerate() {
            f(offset + j, x);
        }
        offset += VECTOR_CHUNK;
    }
    for (j, x) in chunks.into_remainder().iter_mut().enumerate() {
        f(offset + j, x);
    }
}

/// Chunk-scored, index-order-folded reduction core: scores land in a
/// stack buffer (vectorizable), the fold consumes them in index order
/// (bitwise identical to the sequential fold). `combine` is `f64::max`
/// or addition; `init` the matching identity.
fn fold_chunked<T, F, C>(buf: &[T], init: f64, f: &F, combine: C) -> f64
where
    F: Fn(usize, &T) -> f64,
    C: Fn(f64, f64) -> f64,
{
    let mut acc = init;
    let mut offset = 0;
    let mut scores = [0.0f64; VECTOR_CHUNK];
    let mut chunks = buf.chunks_exact(VECTOR_CHUNK);
    for chunk in &mut chunks {
        for (j, x) in chunk.iter().enumerate() {
            scores[j] = f(offset + j, x);
        }
        for &s in &scores {
            acc = combine(acc, s);
        }
        offset += VECTOR_CHUNK;
    }
    for (j, x) in chunks.remainder().iter().enumerate() {
        acc = combine(acc, f(offset + j, x));
    }
    acc
}

impl LaunchBackend for VectorizedBackend {
    fn mode(&self) -> ExecutionMode {
        ExecutionMode::Vectorized
    }

    fn launch<T, F>(&self, buf: &mut [T], _min_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        map_chunked(buf, 0, &f);
    }

    fn launch_zip<A, B, F>(&self, a: &mut [A], b: &mut [B], f: F)
    where
        A: Send,
        B: Send,
        F: Fn(usize, &mut A, &mut B) + Sync,
    {
        let mut offset = 0;
        let mut ca = a.chunks_exact_mut(VECTOR_CHUNK);
        let mut cb = b.chunks_exact_mut(VECTOR_CHUNK);
        for (chunk_a, chunk_b) in (&mut ca).zip(&mut cb) {
            for (j, (x, y)) in chunk_a.iter_mut().zip(chunk_b.iter_mut()).enumerate() {
                f(offset + j, x, y);
            }
            offset += VECTOR_CHUNK;
        }
        for (j, (x, y)) in ca
            .into_remainder()
            .iter_mut()
            .zip(cb.into_remainder().iter_mut())
            .enumerate()
        {
            f(offset + j, x, y);
        }
    }

    fn launch_segments<T, F>(
        &self,
        buf: &mut [T],
        seg_len: usize,
        active: &[bool],
        _min_len: usize,
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        // The convergence mask is hoisted to segment granularity: the
        // element loop below is branch-free, and inactive segments cost
        // nothing at all.
        for (s, chunk) in buf.chunks_mut(seg_len).enumerate() {
            if !active[s] {
                continue;
            }
            map_chunked(chunk, s * seg_len, &f);
        }
    }

    fn reduce_max<T, F>(&self, buf: &[T], f: F) -> f64
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        fold_chunked(buf, f64::NEG_INFINITY, &f, f64::max)
    }

    fn reduce_sum<T, F>(&self, buf: &[T], f: F) -> f64
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        // -0.0 is `Iterator::sum`'s fold identity (it preserves the sign
        // of an all-negative-zero stream), and the reference backend sums
        // through `Iterator::sum` — matching it keeps the empty and
        // signed-zero cases bitwise identical.
        fold_chunked(buf, -0.0, &f, |a, b| a + b)
    }

    fn reduce_max_segments<T, F>(
        &self,
        buf: &[T],
        seg_len: usize,
        active: &[bool],
        f: F,
    ) -> Vec<f64>
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        (0..active.len())
            .map(|s| {
                if !active[s] {
                    return f64::NAN;
                }
                let base = s * seg_len;
                let m = fold_chunked(
                    &buf[base..base + seg_len],
                    f64::NEG_INFINITY,
                    &|j, x| f(base + j, x),
                    f64::max,
                );
                if m == f64::NEG_INFINITY {
                    0.0
                } else {
                    m
                }
            })
            .collect()
    }
}

/// Closed dispatch over the built-in backends. [`Device`](crate::Device)
/// stores one of these, resolved from the configured [`ExecutionMode`] at
/// construction; the kernel layer calls trait methods on it and never
/// matches on modes itself. (An enum rather than `dyn Trait` because the
/// trait's generic methods are not object-safe; adding a backend means
/// adding a variant here — see the module docs.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyBackend {
    /// Dispatch to [`SequentialBackend`].
    Sequential(SequentialBackend),
    /// Dispatch to [`ParallelBackend`].
    Parallel(ParallelBackend),
    /// Dispatch to [`VectorizedBackend`].
    Vectorized(VectorizedBackend),
}

impl AnyBackend {
    /// Resolve a (possibly `Auto`) mode into a concrete dispatcher.
    pub fn from_mode(mode: ExecutionMode) -> AnyBackend {
        match mode.resolve() {
            ExecutionMode::Sequential => AnyBackend::Sequential(SequentialBackend),
            ExecutionMode::Parallel => AnyBackend::Parallel(ParallelBackend),
            ExecutionMode::Vectorized => AnyBackend::Vectorized(VectorizedBackend),
            ExecutionMode::Auto => unreachable!("resolve() never returns Auto"),
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $b:ident => $call:expr) => {
        match $self {
            AnyBackend::Sequential($b) => $call,
            AnyBackend::Parallel($b) => $call,
            AnyBackend::Vectorized($b) => $call,
        }
    };
}

impl LaunchBackend for AnyBackend {
    fn mode(&self) -> ExecutionMode {
        dispatch!(self, b => b.mode())
    }

    fn launch<T, F>(&self, buf: &mut [T], min_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        dispatch!(self, b => b.launch(buf, min_len, f))
    }

    fn launch_zip<A, B, F>(&self, a: &mut [A], b: &mut [B], f: F)
    where
        A: Send,
        B: Send,
        F: Fn(usize, &mut A, &mut B) + Sync,
    {
        dispatch!(self, back => back.launch_zip(a, b, f))
    }

    fn launch_segments<T, F>(
        &self,
        buf: &mut [T],
        seg_len: usize,
        active: &[bool],
        min_len: usize,
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        dispatch!(self, b => b.launch_segments(buf, seg_len, active, min_len, f))
    }

    fn reduce_max<T, F>(&self, buf: &[T], f: F) -> f64
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        dispatch!(self, b => b.reduce_max(buf, f))
    }

    fn reduce_sum<T, F>(&self, buf: &[T], f: F) -> f64
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        dispatch!(self, b => b.reduce_sum(buf, f))
    }

    fn reduce_max_segments<T, F>(
        &self,
        buf: &[T],
        seg_len: usize,
        active: &[bool],
        f: F,
    ) -> Vec<f64>
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        dispatch!(self, b => b.reduce_max_segments(buf, seg_len, active, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ExecutionMode::*;

    /// The full `Auto` resolution table: env override → worker count →
    /// fallback, plus the identity on concrete modes. This is the
    /// documented precedence, pinned.
    #[test]
    fn auto_resolution_table() {
        let table: &[(Option<&str>, usize, ExecutionMode)] = &[
            // No override: the worker count decides.
            (None, 1, Vectorized),
            (None, 2, Parallel),
            (None, 16, Parallel),
            // Valid overrides win regardless of workers.
            (Some("sequential"), 8, Sequential),
            (Some("seq"), 1, Sequential),
            (Some("parallel"), 1, Parallel),
            (Some("par"), 1, Parallel),
            (Some("vectorized"), 8, Vectorized),
            (Some("vec"), 8, Vectorized),
            (Some("simd"), 8, Vectorized),
            (Some("  Parallel \n"), 1, Parallel),
            (Some("VECTORIZED"), 8, Vectorized),
            // `auto` and invalid values fall through to the worker rule.
            (Some("auto"), 1, Vectorized),
            (Some("auto"), 4, Parallel),
            (Some("gpu"), 1, Vectorized),
            (Some(""), 4, Parallel),
            (Some("3"), 1, Vectorized),
        ];
        for &(env, workers, want) in table {
            assert_eq!(
                Auto.resolve_with(env, workers),
                want,
                "Auto with env={env:?} workers={workers}"
            );
        }
        // Concrete modes ignore both inputs entirely.
        for mode in [Sequential, Parallel, Vectorized] {
            for env in [None, Some("parallel"), Some("garbage")] {
                for workers in [1, 8] {
                    assert_eq!(mode.resolve_with(env, workers), mode);
                }
            }
        }
    }

    #[test]
    fn resolve_never_returns_auto() {
        for mode in [Auto, Sequential, Parallel, Vectorized] {
            assert_ne!(mode.resolve(), Auto);
        }
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for mode in [Auto, Sequential, Parallel, Vectorized] {
            assert_eq!(ExecutionMode::parse(mode.label()), Some(mode));
            assert_eq!(mode.to_string(), mode.label());
        }
        assert_eq!(ExecutionMode::parse("cuda"), None);
    }

    #[test]
    fn any_backend_reports_its_mode() {
        assert_eq!(AnyBackend::from_mode(Sequential).mode(), Sequential);
        assert_eq!(AnyBackend::from_mode(Parallel).mode(), Parallel);
        assert_eq!(AnyBackend::from_mode(Vectorized).mode(), Vectorized);
        assert_ne!(AnyBackend::from_mode(Auto).mode(), Auto);
    }

    /// The chunked fold applies `max`/`+` in exactly the sequential order,
    /// including on chunk-boundary-hostile lengths.
    #[test]
    fn chunked_folds_match_sequential_bitwise() {
        for n in [0, 1, VECTOR_CHUNK - 1, VECTOR_CHUNK, VECTOR_CHUNK + 1, 1000] {
            let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 1e-3).collect();
            let score = |i: usize, x: &f64| x * 1.000_001 + i as f64 * 1e-9;
            let seq = SequentialBackend;
            let vec = VectorizedBackend;
            assert_eq!(
                seq.reduce_sum(&data, score).to_bits(),
                vec.reduce_sum(&data, score).to_bits(),
                "sum at n={n}"
            );
            assert_eq!(
                seq.reduce_max(&data, score).to_bits(),
                vec.reduce_max(&data, score).to_bits(),
                "max at n={n}"
            );
        }
    }
}
