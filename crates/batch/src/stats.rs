//! Device statistics: kernel launches, block counts, transfer accounting.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Aggregated statistics for a single named kernel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Number of launches.
    pub launches: u64,
    /// Total number of thread blocks executed across all launches.
    pub blocks: u64,
    /// Total wall-clock time spent inside the kernel body.
    pub elapsed: Duration,
}

/// Statistics collected by a [`crate::Device`]. Cheap to share across
/// threads; kernel bodies only touch atomics.
#[derive(Debug, Default)]
pub struct DeviceStats {
    host_to_device_transfers: AtomicU64,
    device_to_host_transfers: AtomicU64,
    host_to_device_bytes: AtomicU64,
    device_to_host_bytes: AtomicU64,
    kernels: Mutex<HashMap<String, KernelStats>>,
}

/// An immutable snapshot of [`DeviceStats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Number of host-to-device copies.
    pub host_to_device_transfers: u64,
    /// Number of device-to-host copies.
    pub device_to_host_transfers: u64,
    /// Bytes copied host-to-device.
    pub host_to_device_bytes: u64,
    /// Bytes copied device-to-host.
    pub device_to_host_bytes: u64,
    /// Per-kernel statistics keyed by kernel name.
    pub kernels: HashMap<String, KernelStats>,
}

impl DeviceStats {
    /// Record a host-to-device transfer of `bytes`.
    pub fn record_h2d(&self, bytes: usize) {
        self.host_to_device_transfers
            .fetch_add(1, Ordering::Relaxed);
        self.host_to_device_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record a device-to-host transfer of `bytes`.
    pub fn record_d2h(&self, bytes: usize) {
        self.device_to_host_transfers
            .fetch_add(1, Ordering::Relaxed);
        self.device_to_host_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record a kernel launch over `blocks` thread blocks taking `elapsed`.
    pub fn record_launch(&self, name: &str, blocks: u64, elapsed: Duration) {
        let mut map = self.kernels.lock();
        let entry = map.entry(name.to_string()).or_default();
        entry.launches += 1;
        entry.blocks += blocks;
        entry.elapsed += elapsed;
    }

    /// Take an immutable snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            host_to_device_transfers: self.host_to_device_transfers.load(Ordering::Relaxed),
            device_to_host_transfers: self.device_to_host_transfers.load(Ordering::Relaxed),
            host_to_device_bytes: self.host_to_device_bytes.load(Ordering::Relaxed),
            device_to_host_bytes: self.device_to_host_bytes.load(Ordering::Relaxed),
            kernels: self.kernels.lock().clone(),
        }
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.host_to_device_transfers.store(0, Ordering::Relaxed);
        self.device_to_host_transfers.store(0, Ordering::Relaxed);
        self.host_to_device_bytes.store(0, Ordering::Relaxed);
        self.device_to_host_bytes.store(0, Ordering::Relaxed);
        self.kernels.lock().clear();
    }
}

impl StatsSnapshot {
    /// Total number of kernel launches across all kernels.
    pub fn total_launches(&self) -> u64 {
        self.kernels.values().map(|k| k.launches).sum()
    }

    /// Total number of thread blocks across all kernels.
    pub fn total_blocks(&self) -> u64 {
        self.kernels.values().map(|k| k.blocks).sum()
    }

    /// Total wall-clock time spent inside kernel bodies, summed across all
    /// kernels (a device's "busy time").
    pub fn kernel_elapsed(&self) -> Duration {
        self.kernels.values().map(|k| k.elapsed).sum()
    }

    /// Fold another snapshot's counters into this one (per-kernel timings
    /// are summed by kernel name). Used to aggregate the per-device streams
    /// of a [`crate::DevicePool`] into one pool-wide view.
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.host_to_device_transfers += other.host_to_device_transfers;
        self.device_to_host_transfers += other.device_to_host_transfers;
        self.host_to_device_bytes += other.host_to_device_bytes;
        self.device_to_host_bytes += other.device_to_host_bytes;
        for (name, k) in &other.kernels {
            let entry = self.kernels.entry(name.clone()).or_default();
            entry.launches += k.launches;
            entry.blocks += k.blocks;
            entry.elapsed += k.elapsed;
        }
    }

    /// Total transfers in either direction.
    pub fn total_transfers(&self) -> u64 {
        self.host_to_device_transfers + self.device_to_host_transfers
    }

    /// Difference of two snapshots (`self` taken after `earlier`): counts of
    /// activity that happened strictly between the two snapshots.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let mut kernels = HashMap::new();
        for (name, now) in &self.kernels {
            let before = earlier.kernels.get(name).cloned().unwrap_or_default();
            kernels.insert(
                name.clone(),
                KernelStats {
                    launches: now.launches - before.launches,
                    blocks: now.blocks - before.blocks,
                    elapsed: now.elapsed.saturating_sub(before.elapsed),
                },
            );
        }
        StatsSnapshot {
            host_to_device_transfers: self.host_to_device_transfers
                - earlier.host_to_device_transfers,
            device_to_host_transfers: self.device_to_host_transfers
                - earlier.device_to_host_transfers,
            host_to_device_bytes: self.host_to_device_bytes - earlier.host_to_device_bytes,
            device_to_host_bytes: self.device_to_host_bytes - earlier.device_to_host_bytes,
            kernels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_are_counted() {
        let s = DeviceStats::default();
        s.record_h2d(1024);
        s.record_h2d(512);
        s.record_d2h(2048);
        let snap = s.snapshot();
        assert_eq!(snap.host_to_device_transfers, 2);
        assert_eq!(snap.host_to_device_bytes, 1536);
        assert_eq!(snap.device_to_host_transfers, 1);
        assert_eq!(snap.device_to_host_bytes, 2048);
        assert_eq!(snap.total_transfers(), 3);
    }

    #[test]
    fn kernel_launches_accumulate() {
        let s = DeviceStats::default();
        s.record_launch("generator_update", 100, Duration::from_micros(5));
        s.record_launch("generator_update", 100, Duration::from_micros(7));
        s.record_launch("branch_tron", 2000, Duration::from_millis(1));
        let snap = s.snapshot();
        assert_eq!(snap.kernels["generator_update"].launches, 2);
        assert_eq!(snap.kernels["generator_update"].blocks, 200);
        assert_eq!(snap.kernels["branch_tron"].launches, 1);
        assert_eq!(snap.total_launches(), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let s = DeviceStats::default();
        s.record_h2d(10);
        s.record_launch("k", 1, Duration::ZERO);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.total_transfers(), 0);
        assert_eq!(snap.total_launches(), 0);
    }

    #[test]
    fn since_computes_deltas() {
        let s = DeviceStats::default();
        s.record_h2d(100);
        s.record_launch("k", 5, Duration::from_micros(10));
        let first = s.snapshot();
        s.record_launch("k", 5, Duration::from_micros(10));
        s.record_launch("j", 1, Duration::ZERO);
        s.record_d2h(50);
        let second = s.snapshot();
        let delta = second.since(&first);
        assert_eq!(delta.host_to_device_transfers, 0);
        assert_eq!(delta.device_to_host_transfers, 1);
        assert_eq!(delta.kernels["k"].launches, 1);
        assert_eq!(delta.kernels["j"].launches, 1);
    }
}
