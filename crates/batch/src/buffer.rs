//! Device-resident buffers with explicit, counted host↔device transfers.

use crate::stats::DeviceStats;
use std::sync::Arc;

/// An array that lives in "device memory". Creating one from host data or
/// copying it back are the only operations that count as transfers; kernels
/// access the contents in place for free — exactly the cost model the paper's
/// "entirely on GPUs, without any data transfer" design targets.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    stats: Arc<DeviceStats>,
}

impl<T: Clone> DeviceBuffer<T> {
    /// Allocate a device buffer by copying host data (counts one
    /// host-to-device transfer).
    pub fn from_host(stats: Arc<DeviceStats>, host: &[T]) -> Self {
        stats.record_h2d(std::mem::size_of_val(host));
        DeviceBuffer {
            data: host.to_vec(),
            stats,
        }
    }

    /// Copy the contents back to the host (counts one device-to-host
    /// transfer).
    pub fn to_host(&self) -> Vec<T> {
        self.stats
            .record_d2h(self.data.len() * std::mem::size_of::<T>());
        self.data.clone()
    }

    /// Copy new host data into the existing buffer (counts one transfer).
    /// Lengths must match.
    pub fn upload(&mut self, host: &[T]) {
        assert_eq!(host.len(), self.data.len(), "upload length mismatch");
        self.stats.record_h2d(std::mem::size_of_val(host));
        self.data.clone_from_slice(host);
    }

    /// Copy host data into the sub-range starting at `offset` (counts one
    /// transfer of the range's bytes). The streaming scheduler uses this to
    /// re-seed one scenario slot without re-uploading the whole batch.
    pub fn upload_range(&mut self, offset: usize, host: &[T]) {
        assert!(
            offset + host.len() <= self.data.len(),
            "upload_range [{}, {}) out of bounds for buffer of length {}",
            offset,
            offset + host.len(),
            self.data.len()
        );
        self.stats.record_h2d(std::mem::size_of_val(host));
        self.data[offset..offset + host.len()].clone_from_slice(host);
    }

    /// Copy the sub-range `[offset, offset + len)` back to the host (counts
    /// one transfer of the range's bytes). The streaming scheduler uses this
    /// to extract one finished scenario without draining the whole batch.
    pub fn to_host_range(&self, offset: usize, len: usize) -> Vec<T> {
        assert!(
            offset + len <= self.data.len(),
            "to_host_range [{}, {}) out of bounds for buffer of length {}",
            offset,
            offset + len,
            self.data.len()
        );
        self.stats.record_d2h(len * std::mem::size_of::<T>());
        self.data[offset..offset + len].to_vec()
    }
}

impl<T: Default + Clone> DeviceBuffer<T> {
    /// Allocate a zero-initialized buffer directly on the device (no
    /// transfer: `cudaMalloc` + in-kernel initialization).
    pub fn zeroed(stats: Arc<DeviceStats>, len: usize) -> Self {
        DeviceBuffer {
            data: vec![T::default(); len],
            stats,
        }
    }
}

impl<T> DeviceBuffer<T> {
    /// Length of the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Device-side view (free; used by kernel launches).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable device-side view (free; used by kernel launches).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// The stats collector this buffer reports transfers to.
    pub fn stats(&self) -> &Arc<DeviceStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_host_counts_one_h2d() {
        let stats = Arc::new(DeviceStats::default());
        let buf = DeviceBuffer::from_host(stats.clone(), &[1.0f64, 2.0, 3.0]);
        assert_eq!(buf.len(), 3);
        let snap = stats.snapshot();
        assert_eq!(snap.host_to_device_transfers, 1);
        assert_eq!(snap.host_to_device_bytes, 24);
        assert_eq!(snap.device_to_host_transfers, 0);
    }

    #[test]
    fn to_host_counts_one_d2h() {
        let stats = Arc::new(DeviceStats::default());
        let buf = DeviceBuffer::from_host(stats.clone(), &[5u32; 10]);
        let back = buf.to_host();
        assert_eq!(back, vec![5u32; 10]);
        let snap = stats.snapshot();
        assert_eq!(snap.device_to_host_transfers, 1);
        assert_eq!(snap.device_to_host_bytes, 40);
    }

    #[test]
    fn zeroed_allocation_is_transfer_free() {
        let stats = Arc::new(DeviceStats::default());
        let buf: DeviceBuffer<f64> = DeviceBuffer::zeroed(stats.clone(), 100);
        assert_eq!(buf.len(), 100);
        assert!(buf.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(stats.snapshot().total_transfers(), 0);
    }

    #[test]
    fn device_side_mutation_is_free() {
        let stats = Arc::new(DeviceStats::default());
        let mut buf = DeviceBuffer::from_host(stats.clone(), &[0.0f64; 4]);
        let before = stats.snapshot();
        for x in buf.as_mut_slice() {
            *x += 1.0;
        }
        let after = stats.snapshot();
        assert_eq!(after.since(&before).total_transfers(), 0);
        assert!(buf.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn upload_requires_matching_length_and_counts() {
        let stats = Arc::new(DeviceStats::default());
        let mut buf = DeviceBuffer::from_host(stats.clone(), &[0.0f64; 4]);
        buf.upload(&[9.0; 4]);
        assert_eq!(stats.snapshot().host_to_device_transfers, 2);
        assert_eq!(buf.as_slice()[2], 9.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn upload_length_mismatch_panics() {
        let stats = Arc::new(DeviceStats::default());
        let mut buf = DeviceBuffer::from_host(stats, &[0.0f64; 4]);
        buf.upload(&[1.0; 5]);
    }
}
