//! Backend conformance: the executable form of the determinism contract.
//!
//! Historically the bitwise Parallel≡Sequential checks were scattered
//! across the kernel, solver, and scheduler test suites, each pinning one
//! backend pair to one geometry. This module hoists them into one harness
//! parameterized over [`LaunchBackend`] implementors, so a new backend is
//! held to the *entire* contract — every launch geometry, every reduction,
//! masked and unmasked, on chunk-boundary-hostile sizes — before it may be
//! selected by [`ExecutionMode::Auto`](crate::ExecutionMode::Auto).
//!
//! Two entry points:
//!
//! * [`assert_backend_conformance`] drives a bare [`LaunchBackend`] over
//!   raw slices against [`SequentialBackend`] — use this for a backend
//!   under development (step 3 of the guide in [`crate::backend`]);
//! * [`assert_device_conformance`] drives a [`Device`] through the public
//!   launch API against `Device::sequential()`, additionally checking the
//!   billing stream (launch counts, live-element block accounting, no
//!   phantom transfers).
//!
//! The data is deterministic (a fixed multiplicative generator), so a
//! conformance failure reproduces exactly; sizes are chosen to straddle
//! the vectorized backend's chunk boundary and to exercise empty buffers,
//! single elements, and ragged remainders.

use crate::backend::{LaunchBackend, SequentialBackend};
use crate::buffer::DeviceBuffer;
use crate::device::Device;
use std::sync::Arc;

/// Buffer lengths the harness sweeps: empty, single, chunk-straddling
/// (the vectorized backend chunks by 64), and large enough that the
/// parallel backend genuinely fans out.
const LENGTHS: &[usize] = &[0, 1, 7, 63, 64, 65, 129, 1000, 4096];

/// Segment geometries `(seg_len, mask)` the masked paths sweep; segment
/// lengths are chunk-hostile on purpose.
fn segment_cases() -> Vec<(usize, Vec<bool>)> {
    vec![
        (1, vec![true; 5]),
        (7, vec![true, false, true, false]),
        (63, vec![false, true, true]),
        (64, vec![true, false, true]),
        (65, vec![true, true, false, true]),
        (100, vec![false, false, false]),
        (257, vec![true; 3]),
    ]
}

/// Deterministic pseudo-random doubles: fixed recurrence, no RNG crate,
/// includes signed zeros and denormal-adjacent magnitudes so `max` folds
/// see order-sensitive values.
fn data(n: usize, salt: u64) -> Vec<f64> {
    let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let v = (u - 0.5) * 2.0e3;
            // Sprinkle exact signed zeros through the stream.
            if i % 97 == 13 {
                0.0
            } else if i % 97 == 29 {
                -0.0
            } else {
                v
            }
        })
        .collect()
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} diverged ({g} vs {w})"
        );
    }
}

/// A map kernel with inlineable straight-line arithmetic (the shape the
/// vectorized backend targets) that still depends on the global index, so
/// index plumbing errors change bits.
fn map_kernel(i: usize, x: &mut f64) {
    *x = (*x * 1.000_000_11 + i as f64 * 1e-9).sin() * 1.7 - 0.3;
}

/// A "blocked" kernel: iterative per-element work standing in for the
/// TRON subproblem solves (`min_len == 1` launches).
fn block_kernel(i: usize, x: &mut f64) {
    let mut acc = *x;
    for k in 0..16 {
        acc = (acc + (i + k) as f64 * 1e-6).cos() * 0.9 + 0.1;
    }
    *x = acc;
}

/// Max-reduction score whose stream contains NaN and signed-zero entries:
/// `f64::max` is scheduling-sensitive through exactly those, so any
/// combine-order violation changes bits.
fn score(i: usize, x: &f64) -> f64 {
    if i % 251 == 17 {
        f64::NAN
    } else {
        x * 1.000_001 + i as f64 * 1e-12
    }
}

/// Sum-reduction score: NaN-free on purpose (a NaN absorbs the whole sum
/// and would *mask* combine-order violations); mixed magnitudes make the
/// non-associativity of addition visible instead.
fn sum_score(i: usize, x: &f64) -> f64 {
    x * 1.000_001 + (i % 13) as f64 * 1e-9
}

/// Assert that `backend` is bitwise identical to [`SequentialBackend`] on
/// every launch geometry and reduction of the [`LaunchBackend`] contract.
/// Panics with the offending geometry and element on divergence.
pub fn assert_backend_conformance<B: LaunchBackend>(backend: &B) {
    let reference = SequentialBackend;
    let label = backend.mode().label();

    for &n in LENGTHS {
        // Whole-buffer map (default granularity) and blocked (min_len 1).
        for (min_len, kernel) in [
            (usize::MAX, map_kernel as fn(usize, &mut f64)),
            (1, block_kernel as fn(usize, &mut f64)),
        ] {
            let mut got = data(n, 1);
            let mut want = got.clone();
            backend.launch(&mut got, min_len, kernel);
            reference.launch(&mut want, min_len, kernel);
            assert_bits_eq(
                &got,
                &want,
                &format!("{label}: launch n={n} min_len={min_len}"),
            );
        }

        // Zip over two buffers.
        let (mut ga, mut gb) = (data(n, 2), data(n, 3));
        let (mut wa, mut wb) = (ga.clone(), gb.clone());
        let zip = |i: usize, x: &mut f64, y: &mut f64| {
            let t = *x;
            *x = *y * 1.25 + i as f64 * 1e-9;
            *y = (t + *y).sin();
        };
        backend.launch_zip(&mut ga, &mut gb, zip);
        reference.launch_zip(&mut wa, &mut wb, zip);
        assert_bits_eq(&ga, &wa, &format!("{label}: zip a n={n}"));
        assert_bits_eq(&gb, &wb, &format!("{label}: zip b n={n}"));

        // Whole-buffer reductions (raw folds; NEG_INFINITY for empty).
        let buf = data(n, 4);
        let (gmax, wmax) = (
            backend.reduce_max(&buf, score),
            reference.reduce_max(&buf, score),
        );
        assert_eq!(
            gmax.to_bits(),
            wmax.to_bits(),
            "{label}: reduce_max n={n} ({gmax} vs {wmax})"
        );
        let (gsum, wsum) = (
            backend.reduce_sum(&buf, sum_score),
            reference.reduce_sum(&buf, sum_score),
        );
        assert_eq!(
            gsum.to_bits(),
            wsum.to_bits(),
            "{label}: reduce_sum n={n} ({gsum} vs {wsum})"
        );
    }

    for (seg_len, active) in segment_cases() {
        let n = seg_len * active.len();
        // Masked map and masked blocked launches: bitwise identity AND
        // inactive segments untouched (frozen-state contract).
        for (min_len, kernel) in [
            (usize::MAX, map_kernel as fn(usize, &mut f64)),
            (1, block_kernel as fn(usize, &mut f64)),
        ] {
            let original = data(n, 5);
            let mut got = original.clone();
            let mut want = original.clone();
            backend.launch_segments(&mut got, seg_len, &active, min_len, kernel);
            reference.launch_segments(&mut want, seg_len, &active, min_len, kernel);
            assert_bits_eq(
                &got,
                &want,
                &format!("{label}: launch_segments seg_len={seg_len} min_len={min_len}"),
            );
            for (i, (g, o)) in got.iter().zip(&original).enumerate() {
                if !active[i / seg_len] {
                    assert_eq!(
                        g.to_bits(),
                        o.to_bits(),
                        "{label}: inactive element {i} was touched (seg_len={seg_len})"
                    );
                }
            }
        }

        // Masked per-segment reduction: NaN for inactive segments, bitwise
        // identity for active ones.
        let buf = data(n, 6);
        let got = backend.reduce_max_segments(&buf, seg_len, &active, score);
        let want = reference.reduce_max_segments(&buf, seg_len, &active, score);
        assert_eq!(got.len(), active.len());
        for (s, (g, w)) in got.iter().zip(&want).enumerate() {
            if active[s] {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "{label}: reduce_max_segments seg {s} (seg_len={seg_len})"
                );
            } else {
                assert!(
                    g.is_nan() && w.is_nan(),
                    "{label}: inactive seg {s} must reduce to NaN"
                );
            }
        }
    }

    // Determinism with itself: a second identical run reproduces the
    // first bit for bit (no hidden scheduling dependence).
    let buf = data(10_000, 7);
    let first = backend.reduce_sum(&buf, sum_score);
    let second = backend.reduce_sum(&buf, sum_score);
    assert_eq!(
        first.to_bits(),
        second.to_bits(),
        "{label}: reduce_sum is not self-deterministic"
    );
}

/// Assert that `device` conforms through the public [`Device`] launch API:
/// bitwise-identical results to `Device::sequential()` *and* an identical
/// billing stream — same launch counts, same live-element block counts,
/// and no transfers recorded during kernels.
pub fn assert_device_conformance(device: &Device) {
    let reference = Device::sequential();
    let label = device.backend().label();

    for &n in LENGTHS {
        let host = data(n, 11);
        let mut got = DeviceBuffer::from_host(Arc::clone(device.stats()), &host);
        let mut want = DeviceBuffer::from_host(Arc::clone(reference.stats()), &host);
        let before = (device.stats().snapshot(), reference.stats().snapshot());

        device.launch_map("conf_map", &mut got, map_kernel);
        reference.launch_map("conf_map", &mut want, map_kernel);
        device.launch_blocks("conf_blocks", &mut got, block_kernel);
        reference.launch_blocks("conf_blocks", &mut want, block_kernel);
        assert_bits_eq(
            got.as_slice(),
            want.as_slice(),
            &format!("{label}: device maps n={n}"),
        );

        let gmax = device.reduce_max("conf_max", &got, score);
        let wmax = reference.reduce_max("conf_max", &want, score);
        assert_eq!(gmax.to_bits(), wmax.to_bits(), "{label}: device max n={n}");
        let gsum = device.reduce_sum("conf_sum", &got, sum_score);
        let wsum = reference.reduce_sum("conf_sum", &want, sum_score);
        assert_eq!(gsum.to_bits(), wsum.to_bits(), "{label}: device sum n={n}");

        let dg = device.stats().snapshot().since(&before.0);
        let dw = reference.stats().snapshot().since(&before.1);
        assert_eq!(
            dg.total_transfers(),
            0,
            "{label}: kernels must not transfer"
        );
        for name in ["conf_map", "conf_blocks", "conf_max", "conf_sum"] {
            assert_eq!(
                dg.kernels[name].launches, dw.kernels[name].launches,
                "{label}: {name} launch count n={n}"
            );
            assert_eq!(
                dg.kernels[name].blocks, dw.kernels[name].blocks,
                "{label}: {name} block billing n={n}"
            );
        }
    }

    for (seg_len, active) in segment_cases() {
        let host = data(seg_len * active.len(), 12);
        let mut got = DeviceBuffer::from_host(Arc::clone(device.stats()), &host);
        let mut want = DeviceBuffer::from_host(Arc::clone(reference.stats()), &host);
        let before = (device.stats().snapshot(), reference.stats().snapshot());

        device.launch_map_segments("conf_seg", &mut got, seg_len, &active, map_kernel);
        reference.launch_map_segments("conf_seg", &mut want, seg_len, &active, map_kernel);
        device.launch_blocks_segments("conf_seg_blocks", &mut got, seg_len, &active, block_kernel);
        reference.launch_blocks_segments(
            "conf_seg_blocks",
            &mut want,
            seg_len,
            &active,
            block_kernel,
        );
        assert_bits_eq(
            got.as_slice(),
            want.as_slice(),
            &format!("{label}: device segments seg_len={seg_len}"),
        );

        let gm = device.reduce_max_segments("conf_seg_max", &got, seg_len, &active, score);
        let wm = reference.reduce_max_segments("conf_seg_max", &want, seg_len, &active, score);
        for (s, (g, w)) in gm.iter().zip(&wm).enumerate() {
            assert!(
                g.to_bits() == w.to_bits() || (g.is_nan() && w.is_nan()),
                "{label}: device seg reduce seg {s} (seg_len={seg_len})"
            );
        }

        // Masked launches bill only live elements, identically on every
        // backend.
        let live = active.iter().filter(|&&a| a).count() as u64 * seg_len as u64;
        let dg = device.stats().snapshot().since(&before.0);
        let dw = reference.stats().snapshot().since(&before.1);
        for name in ["conf_seg", "conf_seg_blocks", "conf_seg_max"] {
            assert_eq!(
                dg.kernels[name].blocks, live,
                "{label}: {name} must bill live elements only (seg_len={seg_len})"
            );
            assert_eq!(dg.kernels[name].blocks, dw.kernels[name].blocks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ParallelBackend, SequentialBackend, VectorizedBackend};

    /// The reference trivially conforms to itself — guards the harness
    /// against asserting something no backend can satisfy.
    #[test]
    fn sequential_backend_conforms() {
        assert_backend_conformance(&SequentialBackend);
        assert_device_conformance(&Device::sequential());
    }

    #[test]
    fn parallel_backend_conforms() {
        assert_backend_conformance(&ParallelBackend);
        assert_device_conformance(&Device::parallel());
    }

    #[test]
    fn vectorized_backend_conforms() {
        assert_backend_conformance(&VectorizedBackend);
        assert_device_conformance(&Device::vectorized());
    }

    /// Whatever `Auto` resolves to in this environment also conforms —
    /// the gate that keeps `Auto` from ever selecting an unproven scheme.
    #[test]
    fn auto_resolved_device_conforms() {
        assert_device_conformance(&Device::auto());
    }

    /// A deliberately broken backend (out-of-order sum) must be rejected —
    /// the harness has teeth.
    #[test]
    #[should_panic(expected = "reduce_sum")]
    fn reversed_fold_fails_conformance() {
        use crate::backend::{ExecutionMode, LaunchBackend};

        struct ReversedSum;
        impl LaunchBackend for ReversedSum {
            fn mode(&self) -> ExecutionMode {
                ExecutionMode::Sequential
            }
            fn launch<T: Send, F: Fn(usize, &mut T) + Sync>(&self, buf: &mut [T], m: usize, f: F) {
                SequentialBackend.launch(buf, m, f)
            }
            fn launch_zip<A: Send, B: Send, F: Fn(usize, &mut A, &mut B) + Sync>(
                &self,
                a: &mut [A],
                b: &mut [B],
                f: F,
            ) {
                SequentialBackend.launch_zip(a, b, f)
            }
            fn launch_segments<T: Send, F: Fn(usize, &mut T) + Sync>(
                &self,
                buf: &mut [T],
                s: usize,
                a: &[bool],
                m: usize,
                f: F,
            ) {
                SequentialBackend.launch_segments(buf, s, a, m, f)
            }
            fn reduce_max<T: Sync, F: Fn(usize, &T) -> f64 + Sync>(&self, buf: &[T], f: F) -> f64 {
                SequentialBackend.reduce_max(buf, f)
            }
            fn reduce_sum<T: Sync, F: Fn(usize, &T) -> f64 + Sync>(&self, buf: &[T], f: F) -> f64 {
                // Violates the contract: folds in reverse index order.
                (0..buf.len()).rev().map(|i| f(i, &buf[i])).sum()
            }
            fn reduce_max_segments<T: Sync, F: Fn(usize, &T) -> f64 + Sync>(
                &self,
                buf: &[T],
                s: usize,
                a: &[bool],
                f: F,
            ) -> Vec<f64> {
                SequentialBackend.reduce_max_segments(buf, s, a, f)
            }
        }
        assert_backend_conformance(&ReversedSum);
    }
}
